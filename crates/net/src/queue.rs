//! Bounded packet queues with drop-tail overflow and optional QCI priority.
//!
//! Congestion-induced charging gaps in the paper come from exactly this
//! mechanism: the gateway counts a downlink packet on ingress, then the
//! bottleneck queue towards the radio overflows and the packet never
//! reaches the device.

use crate::packet::Packet;
use std::collections::VecDeque;

/// Queue service discipline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Discipline {
    /// Single FIFO; all packets share fate.
    Fifo,
    /// Strict priority by QCI (lower QCI priority value served first),
    /// FIFO within a class. Models the LTE MAC scheduler that lets the
    /// paper's QCI=7 gaming traffic bypass QCI=9 background congestion.
    QciPriority,
}

/// Statistics maintained by a queue.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct QueueStats {
    /// Packets accepted.
    pub enqueued_pkts: u64,
    /// Bytes accepted.
    pub enqueued_bytes: u64,
    /// Packets dropped on overflow.
    pub dropped_pkts: u64,
    /// Bytes dropped on overflow.
    pub dropped_bytes: u64,
    /// Packets dequeued for service.
    pub dequeued_pkts: u64,
}

/// A byte-bounded queue.
#[derive(Debug)]
pub struct PacketQueue {
    discipline: Discipline,
    capacity_bytes: u64,
    used_bytes: u64,
    /// One band per priority level (FIFO mode uses band 0 only).
    bands: Vec<VecDeque<Packet>>,
    stats: QueueStats,
}

/// Number of distinct QCI priority bands we distinguish (QCI 0–15).
const BANDS: usize = 16;

impl PacketQueue {
    /// Creates a queue bounded to `capacity_bytes`.
    pub fn new(discipline: Discipline, capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "queue capacity must be positive");
        let nbands = match discipline {
            Discipline::Fifo => 1,
            Discipline::QciPriority => BANDS,
        };
        PacketQueue {
            discipline,
            capacity_bytes,
            used_bytes: 0,
            bands: (0..nbands).map(|_| VecDeque::new()).collect(),
            stats: QueueStats::default(),
        }
    }

    fn band_for(&self, pkt: &Packet) -> usize {
        match self.discipline {
            Discipline::Fifo => 0,
            Discipline::QciPriority => (pkt.qci.priority() as usize).min(BANDS - 1),
        }
    }

    /// Offers a packet; returns `false` (and counts a drop) on overflow.
    ///
    /// Under `QciPriority`, an arriving higher-priority packet may push out
    /// queued lowest-priority traffic instead of being dropped itself.
    pub fn enqueue(&mut self, pkt: Packet) -> bool {
        let size = pkt.size as u64;
        if self.used_bytes + size > self.capacity_bytes {
            if self.discipline == Discipline::QciPriority && self.evict_lower_priority_for(&pkt) {
                // fall through: room was made
            } else {
                self.stats.dropped_pkts += 1;
                self.stats.dropped_bytes += size;
                return false;
            }
        }
        let band = self.band_for(&pkt);
        self.used_bytes += size;
        self.stats.enqueued_pkts += 1;
        self.stats.enqueued_bytes += size;
        self.bands[band].push_back(pkt);
        true
    }

    /// Tries to evict queued packets with strictly lower priority than
    /// `pkt` until it fits. Returns true if space was made.
    fn evict_lower_priority_for(&mut self, pkt: &Packet) -> bool {
        let incoming_band = self.band_for(pkt);
        let need = pkt.size as u64;
        // Scan from the lowest-priority band down.
        for band in (incoming_band + 1..self.bands.len()).rev() {
            while let Some(victim) = self.bands[band].pop_back() {
                self.used_bytes -= victim.size as u64;
                self.stats.dropped_pkts += 1;
                self.stats.dropped_bytes += victim.size as u64;
                if self.used_bytes + need <= self.capacity_bytes {
                    return true;
                }
            }
        }
        self.used_bytes + need <= self.capacity_bytes
    }

    /// Removes and returns the next packet to serve.
    pub fn dequeue(&mut self) -> Option<Packet> {
        for band in self.bands.iter_mut() {
            if let Some(pkt) = band.pop_front() {
                self.used_bytes -= pkt.size as u64;
                self.stats.dequeued_pkts += 1;
                return Some(pkt);
            }
        }
        None
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.bands.iter().all(|b| b.is_empty())
    }

    /// Queued packet count.
    pub fn len(&self) -> usize {
        self.bands.iter().map(|b| b.len()).sum()
    }

    /// Bytes currently queued.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Drops everything queued (e.g. on radio-link-failure detach),
    /// returning the dropped packets so callers can account for them.
    pub fn flush(&mut self) -> Vec<Packet> {
        let mut out = Vec::with_capacity(self.len());
        for band in self.bands.iter_mut() {
            out.extend(band.drain(..));
        }
        for p in &out {
            self.used_bytes -= p.size as u64;
            self.stats.dropped_pkts += 1;
            self.stats.dropped_bytes += p.size as u64;
        }
        debug_assert_eq!(self.used_bytes, 0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Direction, FlowId, Qci};
    use crate::time::SimTime;

    fn pkt(id: u64, size: u32, qci: Qci) -> Packet {
        Packet::new(id, FlowId(0), Direction::Downlink, size, qci, SimTime::ZERO)
    }

    #[test]
    fn fifo_preserves_order() {
        let mut q = PacketQueue::new(Discipline::Fifo, 10_000);
        for i in 0..5 {
            assert!(q.enqueue(pkt(i, 100, Qci::DEFAULT)));
        }
        let order: Vec<_> = std::iter::from_fn(|| q.dequeue()).map(|p| p.id).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overflow_drops_tail() {
        let mut q = PacketQueue::new(Discipline::Fifo, 250);
        assert!(q.enqueue(pkt(0, 100, Qci::DEFAULT)));
        assert!(q.enqueue(pkt(1, 100, Qci::DEFAULT)));
        assert!(!q.enqueue(pkt(2, 100, Qci::DEFAULT))); // 300 > 250
        assert_eq!(q.stats().dropped_pkts, 1);
        assert_eq!(q.stats().dropped_bytes, 100);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn priority_bands_serve_low_qci_first() {
        let mut q = PacketQueue::new(Discipline::QciPriority, 10_000);
        q.enqueue(pkt(0, 100, Qci::DEFAULT)); // QCI 9
        q.enqueue(pkt(1, 100, Qci::INTERACTIVE)); // QCI 7
        q.enqueue(pkt(2, 100, Qci::GAMING_GBR)); // QCI 3
        let order: Vec<_> = std::iter::from_fn(|| q.dequeue()).map(|p| p.id).collect();
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn high_priority_evicts_background_on_overflow() {
        let mut q = PacketQueue::new(Discipline::QciPriority, 200);
        assert!(q.enqueue(pkt(0, 100, Qci::DEFAULT)));
        assert!(q.enqueue(pkt(1, 100, Qci::DEFAULT)));
        // Full of QCI 9; arriving QCI 7 evicts instead of dropping itself.
        assert!(q.enqueue(pkt(2, 100, Qci::INTERACTIVE)));
        assert_eq!(q.stats().dropped_pkts, 1);
        assert_eq!(q.dequeue().unwrap().id, 2);
    }

    #[test]
    fn low_priority_cannot_evict_high() {
        let mut q = PacketQueue::new(Discipline::QciPriority, 200);
        assert!(q.enqueue(pkt(0, 100, Qci::INTERACTIVE)));
        assert!(q.enqueue(pkt(1, 100, Qci::INTERACTIVE)));
        assert!(!q.enqueue(pkt(2, 100, Qci::DEFAULT)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn byte_accounting_is_exact() {
        let mut q = PacketQueue::new(Discipline::Fifo, 1000);
        q.enqueue(pkt(0, 300, Qci::DEFAULT));
        q.enqueue(pkt(1, 200, Qci::DEFAULT));
        assert_eq!(q.used_bytes(), 500);
        q.dequeue();
        assert_eq!(q.used_bytes(), 200);
        q.dequeue();
        assert_eq!(q.used_bytes(), 0);
        assert!(q.dequeue().is_none());
    }

    #[test]
    fn flush_drops_and_returns_everything() {
        let mut q = PacketQueue::new(Discipline::QciPriority, 10_000);
        q.enqueue(pkt(0, 100, Qci::DEFAULT));
        q.enqueue(pkt(1, 100, Qci::GAMING_GBR));
        let flushed = q.flush();
        assert_eq!(flushed.len(), 2);
        assert!(q.is_empty());
        assert_eq!(q.used_bytes(), 0);
        assert_eq!(q.stats().dropped_pkts, 2);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        PacketQueue::new(Discipline::Fifo, 0);
    }
}
