//! Packets and flows.
//!
//! The simulator is charging-oriented: packets carry sizes, flow identity,
//! and QoS class, not payload bytes. (Counting bytes is the whole game —
//! the charging gap is a disagreement between byte counters at different
//! vantage points.)

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Uplink (device → server) or downlink (server → device).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Direction {
    /// Device → base station → gateway → server.
    Uplink,
    /// Server → gateway → base station → device.
    Downlink,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Uplink => Direction::Downlink,
            Direction::Downlink => Direction::Uplink,
        }
    }
}

/// LTE QoS Class Identifier. The paper's gaming scenario uses QCI 7
/// (interactive gaming, 100 ms budget) against QCI 9 background traffic.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Qci(pub u8);

impl Qci {
    /// QCI 3: real-time gaming, GBR, 50 ms packet delay budget.
    pub const GAMING_GBR: Qci = Qci(3);
    /// QCI 7: voice/video/interactive gaming, non-GBR, 100 ms budget.
    pub const INTERACTIVE: Qci = Qci(7);
    /// QCI 9: default best-effort bearer (lowest priority).
    pub const DEFAULT: Qci = Qci(9);

    /// Scheduling priority: lower value = served first.
    ///
    /// Follows 3GPP TS 23.203 Table 6.1.7: QCI 3 -> 3, QCI 7 -> 7, QCI 9 -> 9.
    pub fn priority(&self) -> u8 {
        self.0
    }

    /// Packet delay budget per TS 23.203 (used for SLA-driven frame drops).
    pub fn delay_budget_ms(&self) -> u64 {
        match self.0 {
            1 => 100,
            2 => 150,
            3 => 50,
            4 => 300,
            5 => 100,
            6 => 300,
            7 => 100,
            8 | 9 => 300,
            _ => 300,
        }
    }
}

/// Identifies an application flow (one edge app on one device).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowId(pub u32);

/// A simulated packet.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Packet {
    /// Unique per-simulation sequence number.
    pub id: u64,
    /// Owning application flow.
    pub flow: FlowId,
    /// Travel direction.
    pub direction: Direction,
    /// Size on the wire in bytes (IP layer).
    pub size: u32,
    /// QoS class of the bearer carrying this packet.
    pub qci: Qci,
    /// When the sending application emitted it.
    pub sent_at: SimTime,
    /// Application frame this packet belongs to (e.g. one H.264 frame can
    /// span several packets); used for frame-level SLA drops.
    pub frame: u64,
}

impl Packet {
    /// Convenience constructor.
    pub fn new(
        id: u64,
        flow: FlowId,
        direction: Direction,
        size: u32,
        qci: Qci,
        sent_at: SimTime,
    ) -> Self {
        Packet {
            id,
            flow,
            direction,
            size,
            qci,
            sent_at,
            frame: 0,
        }
    }

    /// Same packet tagged with an application frame number.
    pub fn with_frame(mut self, frame: u64) -> Self {
        self.frame = frame;
        self
    }
}

/// Monotonically increasing packet id allocator shared by all sources.
#[derive(Default, Debug)]
pub struct PacketIdAlloc {
    next: u64,
}

impl PacketIdAlloc {
    /// Fresh allocator starting at id 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the next unused id.
    pub fn next_id(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_reverse() {
        assert_eq!(Direction::Uplink.reverse(), Direction::Downlink);
        assert_eq!(Direction::Downlink.reverse(), Direction::Uplink);
    }

    #[test]
    fn qci_priorities_ordered() {
        assert!(Qci::GAMING_GBR.priority() < Qci::INTERACTIVE.priority());
        assert!(Qci::INTERACTIVE.priority() < Qci::DEFAULT.priority());
    }

    #[test]
    fn qci_delay_budgets() {
        assert_eq!(Qci::GAMING_GBR.delay_budget_ms(), 50);
        assert_eq!(Qci::INTERACTIVE.delay_budget_ms(), 100);
        assert_eq!(Qci::DEFAULT.delay_budget_ms(), 300);
        assert_eq!(Qci(200).delay_budget_ms(), 300); // unknown QCI defaults
    }

    #[test]
    fn id_alloc_is_sequential() {
        let mut alloc = PacketIdAlloc::new();
        assert_eq!(alloc.next_id(), 0);
        assert_eq!(alloc.next_id(), 1);
        assert_eq!(alloc.next_id(), 2);
    }

    #[test]
    fn frame_tagging() {
        let p = Packet::new(
            1,
            FlowId(2),
            Direction::Uplink,
            1400,
            Qci::DEFAULT,
            SimTime::ZERO,
        )
        .with_frame(7);
        assert_eq!(p.frame, 7);
    }
}
