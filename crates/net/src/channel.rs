//! A lossy, reordering, duplicating datagram channel for control-plane
//! messages.
//!
//! The paper's negotiation (Fig. 7) is evaluated over a perfect in-memory
//! exchange; this module supplies the adversarial counterpart: a
//! unidirectional [`FaultyChannel`] that subjects each frame to the same
//! impairments the data plane suffers on the cellular edge (§3.1) —
//! stochastic loss (any [`LossModel`], so uniform and Gilbert–Elliott
//! bursts plug in), duplication, reordering, byte corruption, and hard
//! partition windows. Deliveries are scheduled on the virtual clock and
//! drained by polling, keeping the sans-IO, deterministic-replay idiom:
//! the same seed always yields the same fault schedule.

use crate::loss::LossModel;
use crate::packet::{Direction, FlowId, Packet, Qci};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Fault probabilities and delay parameters for a [`FaultyChannel`].
#[derive(Clone, Debug)]
pub struct FaultSpec {
    /// Probability a delivered frame is delivered twice.
    pub duplicate: f64,
    /// Probability a delivered frame is held back long enough to land
    /// after frames sent later (reordering).
    pub reorder: f64,
    /// Probability a delivered frame has one byte flipped in flight.
    pub corrupt: f64,
    /// One-way propagation delay applied to every frame.
    pub base_delay: SimDuration,
    /// Uniform random extra delay in `[0, jitter]` per frame.
    pub jitter: SimDuration,
    /// Extra delay applied to reordered frames (should exceed
    /// `base_delay + jitter` to actually invert arrival order).
    pub reorder_delay: SimDuration,
    /// Hard outage windows: frames sent while `start <= now < end` are
    /// silently dropped (radio partition / RLF detach).
    pub partitions: Vec<(SimTime, SimTime)>,
}

impl Default for FaultSpec {
    /// A clean channel: 10 ms propagation, no stochastic faults.
    fn default() -> Self {
        FaultSpec {
            duplicate: 0.0,
            reorder: 0.0,
            corrupt: 0.0,
            base_delay: SimDuration::from_millis(10),
            jitter: SimDuration::from_millis(2),
            reorder_delay: SimDuration::from_millis(80),
            partitions: Vec::new(),
        }
    }
}

impl FaultSpec {
    /// Clean channel with only propagation delay.
    pub fn clean() -> Self {
        Self::default()
    }

    /// Convenience: duplicate / reorder / corrupt probabilities on top of
    /// the default delays.
    pub fn with_faults(duplicate: f64, reorder: f64, corrupt: f64) -> Self {
        for p in [duplicate, reorder, corrupt] {
            assert!((0.0..=1.0).contains(&p), "probability out of range");
        }
        FaultSpec {
            duplicate,
            reorder,
            corrupt,
            ..Self::default()
        }
    }
}

/// Counters of everything the channel did to traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Frames offered by the sender.
    pub sent: u64,
    /// Frames handed to the receiver (includes duplicates).
    pub delivered: u64,
    /// Frames dropped by the loss model.
    pub dropped: u64,
    /// Frames dropped inside a partition window.
    pub partitioned: u64,
    /// Extra deliveries created by duplication.
    pub duplicated: u64,
    /// Frames delivered with a flipped byte.
    pub corrupted: u64,
    /// Frames delayed past later traffic.
    pub reordered: u64,
}

/// Scheduled delivery; ordered by (time, tie-break id) for determinism.
type Delivery = Reverse<(u64, u64, Vec<u8>)>;

/// A unidirectional faulty datagram channel driven by the virtual clock.
///
/// `send` schedules zero or more future deliveries for a frame after
/// running it through the fault pipeline; `poll` drains the deliveries
/// that are due. All randomness comes from the labelled [`SimRng`]
/// stream handed to [`FaultyChannel::new`], so runs are reproducible.
pub struct FaultyChannel {
    spec: FaultSpec,
    loss: Box<dyn LossModel>,
    rng: SimRng,
    in_flight: BinaryHeap<Delivery>,
    next_tiebreak: u64,
    stats: ChannelStats,
}

impl FaultyChannel {
    /// Creates a channel with the given fault spec and loss process.
    pub fn new(spec: FaultSpec, loss: Box<dyn LossModel>, rng: SimRng) -> Self {
        FaultyChannel {
            spec,
            loss,
            rng,
            in_flight: BinaryHeap::new(),
            next_tiebreak: 0,
            stats: ChannelStats::default(),
        }
    }

    /// Offers one frame to the channel at virtual time `now`.
    pub fn send(&mut self, now: SimTime, frame: Vec<u8>) {
        self.stats.sent += 1;

        if self.partitioned_at(now) {
            self.stats.partitioned += 1;
            return;
        }

        // The loss model sees a synthesized control-plane packet so the
        // RSS/Gilbert–Elliott processes can key off time and size.
        let pkt = Packet::new(
            self.next_tiebreak,
            FlowId(0),
            Direction::Uplink,
            frame.len() as u32,
            Qci(5), // IMS-signaling class: what control traffic rides on
            now,
        );
        if self.loss.should_drop(now, &pkt, &mut self.rng) {
            self.stats.dropped += 1;
            return;
        }

        let mut delay = self.spec.base_delay + self.jitter_sample();
        if self.spec.reorder > 0.0 && self.rng.chance(self.spec.reorder) {
            delay = delay + self.spec.reorder_delay;
            self.stats.reordered += 1;
        }

        let payload = if self.spec.corrupt > 0.0 && self.rng.chance(self.spec.corrupt) {
            self.stats.corrupted += 1;
            corrupt_one_byte(frame.clone(), &mut self.rng)
        } else {
            frame.clone()
        };
        self.schedule(now + delay, payload);

        if self.spec.duplicate > 0.0 && self.rng.chance(self.spec.duplicate) {
            self.stats.duplicated += 1;
            let dup_delay = self.spec.base_delay + self.jitter_sample();
            self.schedule(now + dup_delay, frame);
        }
    }

    fn jitter_sample(&mut self) -> SimDuration {
        let j = self.spec.jitter.as_micros();
        if j == 0 {
            SimDuration::from_micros(0)
        } else {
            SimDuration::from_micros(self.rng.range_u64(0, j))
        }
    }

    fn schedule(&mut self, at: SimTime, payload: Vec<u8>) {
        let tiebreak = self.next_tiebreak;
        self.next_tiebreak += 1;
        self.in_flight
            .push(Reverse((at.as_micros(), tiebreak, payload)));
    }

    /// True when `now` falls inside a configured partition window.
    pub fn partitioned_at(&self, now: SimTime) -> bool {
        self.spec
            .partitions
            .iter()
            .any(|(start, end)| *start <= now && now < *end)
    }

    /// Virtual time of the earliest pending delivery, if any.
    pub fn next_delivery(&self) -> Option<SimTime> {
        self.in_flight
            .peek()
            .map(|Reverse((t, _, _))| SimTime::from_micros(*t))
    }

    /// Drains every frame due at or before `now`, in delivery order.
    pub fn poll(&mut self, now: SimTime) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while self
            .in_flight
            .peek()
            .is_some_and(|Reverse((t, _, _))| *t <= now.as_micros())
        {
            let Some(Reverse((_, _, payload))) = self.in_flight.pop() else {
                break;
            };
            self.stats.delivered += 1;
            out.push(payload);
        }
        out
    }

    /// Frames still in flight.
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }

    /// Everything the channel did so far.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }
}

fn corrupt_one_byte(mut frame: Vec<u8>, rng: &mut SimRng) -> Vec<u8> {
    if !frame.is_empty() {
        let idx = rng.next_below(frame.len() as u64) as usize;
        frame[idx] ^= 0xFF;
    }
    frame
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{NoLoss, UniformLoss};

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn clean_channel_delivers_in_order() {
        let mut ch = FaultyChannel::new(
            FaultSpec {
                jitter: SimDuration::from_micros(0),
                ..FaultSpec::clean()
            },
            Box::new(NoLoss),
            SimRng::new(1),
        );
        ch.send(t(0), vec![1]);
        ch.send(t(1), vec![2]);
        assert_eq!(ch.next_delivery(), Some(t(10)));
        assert!(ch.poll(t(9)).is_empty());
        assert_eq!(ch.poll(t(11)), vec![vec![1], vec![2]]);
        assert_eq!(ch.stats().delivered, 2);
    }

    #[test]
    fn loss_drops_frames_deterministically() {
        let run = |seed| {
            let mut ch = FaultyChannel::new(
                FaultSpec::clean(),
                Box::new(UniformLoss::new(0.5)),
                SimRng::new(seed),
            );
            for i in 0..100u8 {
                ch.send(t(i as u64), vec![i]);
            }
            ch.stats().dropped
        };
        let d = run(7);
        assert!(d > 20 && d < 80, "dropped {d}");
        assert_eq!(d, run(7), "same seed, same schedule");
    }

    #[test]
    fn duplicates_and_corruption_are_counted() {
        let mut ch = FaultyChannel::new(
            FaultSpec::with_faults(1.0, 0.0, 1.0),
            Box::new(NoLoss),
            SimRng::new(3),
        );
        ch.send(t(0), vec![0xAA, 0xBB]);
        let frames = ch.poll(t(1_000));
        assert_eq!(frames.len(), 2, "original (corrupted) + duplicate");
        assert_eq!(ch.stats().duplicated, 1);
        assert_eq!(ch.stats().corrupted, 1);
        // The duplicate is the pristine copy; the first was corrupted.
        assert!(frames.contains(&vec![0xAA, 0xBB]));
        assert!(frames.iter().any(|f| *f != vec![0xAA, 0xBB]));
    }

    #[test]
    fn reordering_inverts_arrival() {
        let mut ch = FaultyChannel::new(
            FaultSpec {
                reorder: 1.0,
                jitter: SimDuration::from_micros(0),
                ..FaultSpec::clean()
            },
            Box::new(NoLoss),
            SimRng::new(4),
        );
        ch.send(t(0), vec![1]);
        // Second frame sent on a channel that reorders everything equally
        // still arrives after — but a frame sent within the reorder gap
        // overtakes the first.
        let mut ch2 = FaultyChannel::new(
            FaultSpec {
                reorder: 0.0,
                jitter: SimDuration::from_micros(0),
                ..FaultSpec::clean()
            },
            Box::new(NoLoss),
            SimRng::new(5),
        );
        ch2.send(t(0), vec![2]);
        let first = ch.next_delivery().unwrap();
        let second = ch2.next_delivery().unwrap();
        assert!(first > second, "reordered frame lands later");
        assert_eq!(ch.stats().reordered, 1);
    }

    #[test]
    fn partition_windows_drop_everything_inside() {
        let mut ch = FaultyChannel::new(
            FaultSpec {
                partitions: vec![(t(100), t(200))],
                ..FaultSpec::clean()
            },
            Box::new(NoLoss),
            SimRng::new(6),
        );
        ch.send(t(50), vec![1]);
        ch.send(t(150), vec![2]);
        ch.send(t(250), vec![3]);
        assert_eq!(ch.stats().partitioned, 1);
        let all = ch.poll(t(10_000));
        assert_eq!(all.len(), 2);
        assert!(!all.contains(&vec![2]));
    }
}
