//! Per-packet stochastic loss models.
//!
//! §3.1 of the paper taxonomises gap-causing losses across layers. Queue
//! overflow (IP congestion) and radio outages (PHY/link) are modelled
//! structurally in [`crate::queue`] and [`crate::radio`]; this module
//! provides the residual random-loss processes: uniform air-interface
//! loss that worsens with weaker signal, and a Gilbert–Elliott bursty
//! channel for correlated fading losses.

use crate::packet::Packet;
use crate::rng::SimRng;
use crate::time::SimTime;

/// A stateful per-packet loss decision.
pub trait LossModel {
    /// Returns true if this packet should be dropped.
    fn should_drop(&mut self, now: SimTime, pkt: &Packet, rng: &mut SimRng) -> bool;
}

/// Never drops.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoLoss;

impl LossModel for NoLoss {
    fn should_drop(&mut self, _: SimTime, _: &Packet, _: &mut SimRng) -> bool {
        false
    }
}

/// Independent (Bernoulli) loss with fixed probability.
#[derive(Clone, Copy, Debug)]
pub struct UniformLoss {
    /// Drop probability in `[0, 1]`.
    pub p: f64,
}

impl UniformLoss {
    /// Creates the model; panics if `p` is not a probability.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        UniformLoss { p }
    }
}

impl LossModel for UniformLoss {
    fn should_drop(&mut self, _: SimTime, _: &Packet, rng: &mut SimRng) -> bool {
        rng.chance(self.p)
    }
}

/// Two-state Gilbert–Elliott channel: a "good" state with low loss and a
/// "bad" (deep-fade) state with high loss, with per-packet transition
/// probabilities. Produces the bursty loss patterns typical of cellular
/// radio under weak coverage.
#[derive(Clone, Copy, Debug)]
pub struct GilbertElliott {
    /// P(good -> bad) per packet.
    pub p_gb: f64,
    /// P(bad -> good) per packet.
    pub p_bg: f64,
    /// Loss probability in the good state.
    pub loss_good: f64,
    /// Loss probability in the bad state.
    pub loss_bad: f64,
    in_bad: bool,
}

impl GilbertElliott {
    /// Creates the channel in the good state.
    pub fn new(p_gb: f64, p_bg: f64, loss_good: f64, loss_bad: f64) -> Self {
        for p in [p_gb, p_bg, loss_good, loss_bad] {
            assert!((0.0..=1.0).contains(&p), "probability out of range");
        }
        GilbertElliott {
            p_gb,
            p_bg,
            loss_good,
            loss_bad,
            in_bad: false,
        }
    }

    /// Long-run fraction of packets in the bad state:
    /// `p_gb / (p_gb + p_bg)` (stationary distribution of the chain).
    pub fn stationary_bad_fraction(&self) -> f64 {
        if self.p_gb + self.p_bg == 0.0 {
            0.0
        } else {
            self.p_gb / (self.p_gb + self.p_bg)
        }
    }

    /// Expected long-run loss rate.
    pub fn expected_loss_rate(&self) -> f64 {
        let fb = self.stationary_bad_fraction();
        fb * self.loss_bad + (1.0 - fb) * self.loss_good
    }
}

impl LossModel for GilbertElliott {
    fn should_drop(&mut self, _: SimTime, _: &Packet, rng: &mut SimRng) -> bool {
        // Transition first, then sample loss in the (possibly new) state.
        if self.in_bad {
            if rng.chance(self.p_bg) {
                self.in_bad = false;
            }
        } else if rng.chance(self.p_gb) {
            self.in_bad = true;
        }
        let p = if self.in_bad {
            self.loss_bad
        } else {
            self.loss_good
        };
        rng.chance(p)
    }
}

/// Air-interface loss that grows as received signal strength drops.
///
/// Calibrated so that at RSS ≥ −95 dBm (the paper's "good radio"
/// threshold) the residual loss is small, rising steeply towards the
/// −120 dBm edge of coverage.
#[derive(Clone, Copy, Debug)]
pub struct RssDrivenLoss {
    /// Loss probability at/above the good-signal threshold.
    pub base_loss: f64,
    /// Additional loss per dBm below the threshold (linear ramp).
    pub slope_per_dbm: f64,
    /// Good-signal threshold in dBm.
    pub good_threshold_dbm: f64,
}

impl RssDrivenLoss {
    /// The calibration used by the paper-replication experiments.
    ///
    /// The paper measures 6.7–8.3% loss-induced gaps even in good radio
    /// (RSS ≥ −95 dBm, no congestion — Fig. 3's baseline) for its
    /// UDP-based real-time workloads, so the residual per-packet loss is
    /// calibrated to ~7% at good signal, ramping up as coverage weakens.
    pub fn paper_default() -> Self {
        RssDrivenLoss {
            base_loss: 0.07,
            slope_per_dbm: 0.012,
            good_threshold_dbm: -95.0,
        }
    }

    /// Loss probability at a given RSS.
    pub fn loss_at(&self, rss_dbm: f64) -> f64 {
        let deficit = (self.good_threshold_dbm - rss_dbm).max(0.0);
        (self.base_loss + deficit * self.slope_per_dbm).clamp(0.0, 1.0)
    }

    /// Samples a drop decision for the given RSS.
    pub fn should_drop_at(&self, rss_dbm: f64, rng: &mut SimRng) -> bool {
        rng.chance(self.loss_at(rss_dbm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Direction, FlowId, Qci};

    fn pkt() -> Packet {
        Packet::new(
            0,
            FlowId(0),
            Direction::Uplink,
            100,
            Qci::DEFAULT,
            SimTime::ZERO,
        )
    }

    #[test]
    fn no_loss_never_drops() {
        let mut m = NoLoss;
        let mut rng = SimRng::new(1);
        assert!((0..1000).all(|_| !m.should_drop(SimTime::ZERO, &pkt(), &mut rng)));
    }

    #[test]
    fn uniform_loss_rate_tracks_p() {
        let mut m = UniformLoss::new(0.2);
        let mut rng = SimRng::new(2);
        let drops = (0..20_000)
            .filter(|_| m.should_drop(SimTime::ZERO, &pkt(), &mut rng))
            .count();
        let rate = drops as f64 / 20_000.0;
        assert!((rate - 0.2).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn uniform_extremes() {
        let mut rng = SimRng::new(3);
        let mut never = UniformLoss::new(0.0);
        let mut always = UniformLoss::new(1.0);
        assert!(!never.should_drop(SimTime::ZERO, &pkt(), &mut rng));
        assert!(always.should_drop(SimTime::ZERO, &pkt(), &mut rng));
    }

    #[test]
    #[should_panic]
    fn uniform_rejects_invalid_probability() {
        UniformLoss::new(1.5);
    }

    #[test]
    fn gilbert_elliott_long_run_rate() {
        let ge = GilbertElliott::new(0.05, 0.20, 0.01, 0.5);
        let expect = ge.expected_loss_rate();
        let mut m = ge;
        let mut rng = SimRng::new(4);
        let n = 100_000;
        let drops = (0..n)
            .filter(|_| m.should_drop(SimTime::ZERO, &pkt(), &mut rng))
            .count();
        let rate = drops as f64 / n as f64;
        assert!((rate - expect).abs() < 0.01, "rate {rate} expect {expect}");
    }

    #[test]
    fn gilbert_elliott_burstiness() {
        // Consecutive drops should cluster: the conditional drop rate after
        // a drop must exceed the marginal rate.
        let mut m = GilbertElliott::new(0.02, 0.10, 0.001, 0.8);
        let mut rng = SimRng::new(5);
        let seq: Vec<bool> = (0..200_000)
            .map(|_| m.should_drop(SimTime::ZERO, &pkt(), &mut rng))
            .collect();
        let marginal = seq.iter().filter(|&&d| d).count() as f64 / seq.len() as f64;
        let after_drop: Vec<_> = seq.windows(2).filter(|w| w[0]).map(|w| w[1]).collect();
        let conditional =
            after_drop.iter().filter(|&&d| d).count() as f64 / after_drop.len() as f64;
        assert!(
            conditional > marginal * 2.0,
            "conditional {conditional} vs marginal {marginal}"
        );
    }

    #[test]
    fn stationary_fraction_formula() {
        let ge = GilbertElliott::new(0.1, 0.3, 0.0, 1.0);
        assert!((ge.stationary_bad_fraction() - 0.25).abs() < 1e-12);
        let never_bad = GilbertElliott::new(0.0, 0.0, 0.0, 1.0);
        assert_eq!(never_bad.stationary_bad_fraction(), 0.0);
    }

    #[test]
    fn rss_loss_monotone_in_signal() {
        let m = RssDrivenLoss::paper_default();
        assert!(m.loss_at(-90.0) <= m.loss_at(-100.0));
        assert!(m.loss_at(-100.0) < m.loss_at(-115.0));
        assert_eq!(m.loss_at(-80.0), m.loss_at(-95.0)); // flat above threshold
        assert!(m.loss_at(-300.0) <= 1.0);
    }
}
