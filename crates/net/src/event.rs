//! Generic discrete-event queue.
//!
//! A binary heap keyed by `(time, sequence)`: ties are broken by insertion
//! order so the simulation is fully deterministic regardless of heap
//! internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behaviour on BinaryHeap (a max-heap).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Panics when scheduling into the past: that is always a model bug and
    /// silently reordering it would corrupt causality.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < now {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Timestamp of the next event without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 1);
        q.pop();
        q.schedule(q.now(), 2); // same-timestamp follow-up event
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(1) + SimDuration::from_millis(1), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(1_001_000)));
    }
}
