//! Traffic counters and time-bucketed usage series.
//!
//! Every vantage point in the charging pipeline (device app, modem,
//! gateway, server monitor) owns a [`ByteCounter`]; the per-second series
//! the paper records ("we record the data usage ... every 1s") is a
//! [`UsageSeries`].

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A monotone packet/byte counter.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ByteCounter {
    /// Total packets observed.
    pub packets: u64,
    /// Total bytes observed.
    pub bytes: u64,
}

impl ByteCounter {
    /// Fresh zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one packet of `size` bytes. Saturating: a wrapped
    /// vantage counter would fabricate a charging gap out of thin air.
    pub fn record(&mut self, size: u32) {
        self.packets = self.packets.saturating_add(1);
        self.bytes = self.bytes.saturating_add(size as u64);
    }

    /// Difference vs. an earlier snapshot (saturating).
    pub fn since(&self, earlier: &ByteCounter) -> ByteCounter {
        ByteCounter {
            packets: self.packets.saturating_sub(earlier.packets),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// Per-bucket byte usage over time (the 1 Hz usage log of the paper).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UsageSeries {
    bucket: SimDuration,
    /// bytes[i] covers [i*bucket, (i+1)*bucket).
    buckets: Vec<u64>,
}

impl UsageSeries {
    /// Creates a series with the given bucket width.
    pub fn new(bucket: SimDuration) -> Self {
        assert!(bucket > SimDuration::ZERO);
        UsageSeries {
            bucket,
            buckets: Vec::new(),
        }
    }

    /// Adds `bytes` at instant `t`.
    pub fn record(&mut self, t: SimTime, bytes: u64) {
        let idx = (t.as_micros() / self.bucket.as_micros()) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] = self.buckets[idx].saturating_add(bytes);
    }

    /// Total bytes across all buckets.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Bytes in bucket `i` (0 outside the recorded range).
    pub fn bucket_bytes(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Number of buckets recorded so far.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Average throughput in Mbps over the first `n` buckets.
    pub fn mean_rate_mbps(&self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let total: u64 = self.buckets.iter().take(n).sum();
        let secs = self.bucket.as_secs_f64() * n as f64;
        total as f64 * 8.0 / 1e6 / secs
    }

    /// Rate in Mbps for bucket `i`.
    pub fn bucket_rate_mbps(&self, i: usize) -> f64 {
        self.bucket_bytes(i) as f64 * 8.0 / 1e6 / self.bucket.as_secs_f64()
    }

    /// Bucket width.
    pub fn bucket_width(&self) -> SimDuration {
        self.bucket
    }

    /// Cumulative bytes recorded before instant `t`, pro-rating the bucket
    /// containing `t`. This is how a reader with a skewed clock sees a
    /// counter "at cycle end".
    pub fn cumulative_until(&self, t: SimTime) -> u64 {
        let bw = self.bucket.as_micros();
        let idx = (t.as_micros() / bw) as usize;
        let whole: u64 = self.buckets.iter().take(idx.min(self.buckets.len())).sum();
        let frac_us = t.as_micros() % bw;
        let partial = if idx < self.buckets.len() && frac_us > 0 {
            (self.buckets[idx] as u128 * frac_us as u128 / bw as u128) as u64
        } else {
            0
        };
        whole + partial
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_records_and_diffs() {
        let mut c = ByteCounter::new();
        c.record(100);
        c.record(250);
        assert_eq!(c.packets, 2);
        assert_eq!(c.bytes, 350);
        let snap = c;
        c.record(50);
        let d = c.since(&snap);
        assert_eq!(d.packets, 1);
        assert_eq!(d.bytes, 50);
    }

    #[test]
    fn diff_saturates() {
        let a = ByteCounter {
            packets: 1,
            bytes: 10,
        };
        let b = ByteCounter {
            packets: 5,
            bytes: 100,
        };
        let d = a.since(&b);
        assert_eq!(d.packets, 0);
        assert_eq!(d.bytes, 0);
    }

    #[test]
    fn series_buckets_by_time() {
        let mut s = UsageSeries::new(SimDuration::from_secs(1));
        s.record(SimTime::from_millis(100), 500);
        s.record(SimTime::from_millis(900), 500);
        s.record(SimTime::from_millis(1000), 250); // next bucket
        assert_eq!(s.bucket_bytes(0), 1000);
        assert_eq!(s.bucket_bytes(1), 250);
        assert_eq!(s.bucket_bytes(2), 0);
        assert_eq!(s.total(), 1250);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn mean_rate_computation() {
        let mut s = UsageSeries::new(SimDuration::from_secs(1));
        // 1 MB over 8 seconds = 1 Mbps.
        for i in 0..8 {
            s.record(SimTime::from_secs(i), 125_000);
        }
        assert!((s.mean_rate_mbps(8) - 1.0).abs() < 1e-9);
        assert!((s.bucket_rate_mbps(0) - 1.0).abs() < 1e-9);
        assert_eq!(s.mean_rate_mbps(0), 0.0);
    }

    #[test]
    fn cumulative_until_counts_whole_and_partial_buckets() {
        let mut s = UsageSeries::new(SimDuration::from_secs(1));
        s.record(SimTime::from_millis(500), 1000); // bucket 0
        s.record(SimTime::from_millis(1500), 2000); // bucket 1
        assert_eq!(s.cumulative_until(SimTime::ZERO), 0);
        assert_eq!(s.cumulative_until(SimTime::from_secs(1)), 1000);
        // Halfway through bucket 1 pro-rates its 2000 bytes.
        assert_eq!(s.cumulative_until(SimTime::from_millis(1500)), 2000);
        assert_eq!(s.cumulative_until(SimTime::from_secs(10)), 3000);
    }

    #[test]
    fn empty_series() {
        let s = UsageSeries::new(SimDuration::from_secs(1));
        assert!(s.is_empty());
        assert_eq!(s.total(), 0);
        assert_eq!(s.bucket_bytes(10), 0);
    }
}
