//! Bounded, recycled read-buffer pool for the event-driven ingress
//! (DESIGN.md §12).
//!
//! The legacy read path copies every frame payload out of the driver's
//! reassembly buffer into a fresh `Vec` before decode. At C100K scale
//! that is per-frame allocator churn on the hottest path in the
//! system. The readiness loop instead reads into a buffer checked out
//! of a [`BufferPool`]: frames are parsed *in place* as borrowed
//! [`crate::wire::FrameRef`] views and the codec decodes payloads from
//! those borrows, so a PoC travels socket → verifier without an
//! intermediate copy.
//!
//! The pool is **bounded** — that is the point. Memory for in-flight
//! reads is `capacity × buf_size`, fixed at construction. When every
//! buffer is checked out the loop *defers* reads (masks readable
//! interest; level-triggered readiness re-reports the socket once a
//! buffer frees) instead of allocating unboundedly — the same
//! philosophy as the §11 shed ladder, applied to memory.
//!
//! [`PooledBuf`] returns its storage on drop. A buffer that held a
//! partial frame keeps its tail bytes attached to the connection until
//! the rest arrives — bounded by `buf_size`, which is itself sized to
//! the wire's max frame (header + max payload), so a single pooled
//! buffer always suffices to reassemble any legal frame.

use std::sync::{Arc, Mutex};

/// Counters exported into the ingress report (non-wire fields).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Successful checkouts.
    pub checkouts: u64,
    /// Checkout attempts that found the pool empty (each one is a
    /// deferred read in the ingress loop).
    pub exhausted: u64,
    /// Buffers returned for reuse.
    pub recycles: u64,
}

struct Shared {
    free: Mutex<Vec<Vec<u8>>>,
    stats: Mutex<PoolStats>,
    buf_size: usize,
    capacity: usize,
}

/// A fixed-capacity pool of equally sized byte buffers.
///
/// Clones share the same storage (`Arc` inside), so one pool can serve
/// a shard's acceptor and event loop. Locking is a plain mutex: the
/// pool is touched a handful of times per *wakeup*, not per byte, and
/// each shard owns its own pool so there is no cross-core contention.
#[derive(Clone)]
pub struct BufferPool {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.shared.capacity)
            .field("buf_size", &self.shared.buf_size)
            .field("available", &self.available())
            .finish()
    }
}

impl BufferPool {
    /// Creates a pool of `capacity` buffers of `buf_size` bytes each.
    /// Storage is allocated lazily: a checkout that finds the free list
    /// empty but the pool under capacity mints a fresh buffer, so idle
    /// shards don't pay for their whole arena up front.
    pub fn new(capacity: usize, buf_size: usize) -> BufferPool {
        BufferPool {
            shared: Arc::new(Shared {
                free: Mutex::new(Vec::new()),
                stats: Mutex::new(PoolStats::default()),
                buf_size,
                capacity: capacity.max(1),
            }),
        }
    }

    /// Byte size of each buffer.
    pub fn buf_size(&self) -> usize {
        self.shared.buf_size
    }

    /// Total buffers this pool will ever hand out concurrently.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Buffers that could be checked out right now (free-listed plus
    /// not-yet-minted headroom).
    pub fn available(&self) -> usize {
        let stats = self.stats();
        let outstanding = (stats.checkouts - stats.recycles) as usize;
        self.shared.capacity.saturating_sub(outstanding)
    }

    /// Checks a buffer out, or `None` when all `capacity` buffers are
    /// in flight (the caller should defer — never allocate around the
    /// pool). The returned buffer is empty with `buf_size` capacity.
    pub fn checkout(&self) -> Option<PooledBuf> {
        let mut free = match self.shared.free.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let buf = if let Some(mut b) = free.pop() {
            b.clear();
            Some(b)
        } else {
            let stats = self.stats();
            let outstanding = (stats.checkouts - stats.recycles) as usize;
            if outstanding < self.shared.capacity {
                Some(Vec::with_capacity(self.shared.buf_size))
            } else {
                None
            }
        };
        drop(free);
        let mut stats = match self.shared.stats.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        match buf {
            Some(data) => {
                stats.checkouts += 1;
                drop(stats);
                Some(PooledBuf {
                    data,
                    pool: self.shared.clone(),
                })
            }
            None => {
                stats.exhausted += 1;
                None
            }
        }
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> PoolStats {
        match self.shared.stats.lock() {
            Ok(g) => *g,
            Err(p) => *p.into_inner(),
        }
    }
}

/// A buffer on loan from a [`BufferPool`]; storage returns to the pool
/// on drop. Dereferences to `Vec<u8>` so read/parse code treats it as
/// an ordinary growable buffer (growth beyond `buf_size` is possible
/// but the ingress never does it — frames larger than the buffer are
/// rejected at the header).
pub struct PooledBuf {
    data: Vec<u8>,
    pool: Arc<Shared>,
}

impl std::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledBuf")
            .field("len", &self.data.len())
            .finish()
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.data
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.data
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        let data = std::mem::take(&mut self.data);
        // Oversized (grew past buf_size) buffers are not recycled —
        // recycling them would let one hostile burst permanently
        // inflate the arena. The pool mints a fresh one instead.
        if data.capacity() > self.pool.buf_size * 2 {
            let mut stats = match self.pool.stats.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            stats.recycles += 1;
            return;
        }
        let mut free = match self.pool.free.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        free.push(data);
        drop(free);
        let mut stats = match self.pool.stats.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        stats.recycles += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_recycle_roundtrip() {
        let pool = BufferPool::new(2, 64);
        let mut a = pool.checkout().expect("first");
        a.extend_from_slice(b"hello");
        let b = pool.checkout().expect("second");
        assert!(pool.checkout().is_none(), "capacity 2 exhausted");
        drop(a);
        let c = pool.checkout().expect("recycled");
        assert!(c.is_empty(), "recycled buffer must come back cleared");
        assert!(c.capacity() >= 5, "storage was reused");
        drop(b);
        drop(c);
        let stats = pool.stats();
        assert_eq!(stats.checkouts, 3);
        assert_eq!(stats.recycles, 3);
        assert_eq!(stats.exhausted, 1);
    }

    #[test]
    fn exhaustion_counts_and_recovers() {
        let pool = BufferPool::new(1, 16);
        let held = pool.checkout().expect("only buffer");
        for _ in 0..5 {
            assert!(pool.checkout().is_none());
        }
        assert_eq!(pool.stats().exhausted, 5);
        drop(held);
        assert!(pool.checkout().is_some(), "freed buffer is reusable");
    }

    #[test]
    fn oversized_buffers_are_not_recycled() {
        let pool = BufferPool::new(1, 8);
        let mut b = pool.checkout().expect("buffer");
        b.extend_from_slice(&[0u8; 64]); // grow well past 2×buf_size
        drop(b);
        let fresh = pool.checkout().expect("pool still at capacity 1");
        assert!(fresh.capacity() < 64, "inflated storage must not return");
    }

    #[test]
    fn clones_share_storage() {
        let pool = BufferPool::new(1, 8);
        let other = pool.clone();
        let held = pool.checkout().expect("buffer");
        assert!(other.checkout().is_none(), "clone sees same capacity");
        drop(held);
        assert!(other.checkout().is_some());
    }
}
