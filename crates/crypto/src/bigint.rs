//! Arbitrary-precision unsigned integer arithmetic.
//!
//! This is the numeric substrate for the RSA implementation in [`crate::rsa`].
//! Limbs are 64-bit, stored little-endian, and always normalized (no trailing
//! zero limbs), so the empty limb vector represents zero.
//!
//! The operations implemented are exactly those RSA needs: comparison,
//! addition/subtraction, schoolbook multiplication, Knuth Algorithm D
//! division, bit shifts, binary GCD, modular inversion via the extended
//! Euclidean algorithm, and modular exponentiation (Montgomery-accelerated
//! for odd moduli in [`crate::montgomery`]).

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian 64-bit limbs with no trailing zeros.
    pub(crate) limbs: Vec<u64>,
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds a value from a single 64-bit word.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Builds a value from a 128-bit word.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut out = BigUint {
            limbs: vec![lo, hi],
        };
        out.normalize();
        out
    }

    /// Parses a big-endian byte string (as used by RSA wire formats).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut iter = bytes.rchunks(8);
        for chunk in &mut iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Serializes to a minimal big-endian byte string (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        let mut limbs = self.limbs.iter().rev();
        // Highest limb: strip leading zero bytes.
        let top = limbs.next().expect("nonzero value has a top limb");
        let top_bytes = top.to_be_bytes();
        let skip = top_bytes.iter().take_while(|&&b| b == 0).count();
        out.extend_from_slice(&top_bytes[skip..]);
        for limb in limbs {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        out
    }

    /// Serializes to exactly `len` big-endian bytes, left-padding with zeros.
    ///
    /// Returns `None` if the value does not fit.
    pub fn to_bytes_be_padded(&self, len: usize) -> Option<Vec<u8>> {
        let raw = self.to_bytes_be();
        if raw.len() > len {
            return None;
        }
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        Some(out)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True if the lowest bit is clear (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to one, growing the limb vector if needed.
    pub fn set_bit(&mut self, i: usize) {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << (i % 64);
    }

    /// Interprets the low 64 bits.
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Addition.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (longer, shorter) = if self.limbs.len() >= other.limbs.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut limbs = Vec::with_capacity(longer.limbs.len() + 1);
        let mut carry = 0u64;
        for i in 0..longer.limbs.len() {
            let a = longer.limbs[i];
            let b = shorter.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            limbs.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            limbs.push(carry);
        }
        BigUint { limbs }
    }

    /// Subtraction; panics if `other > self` (callers compare first).
    pub fn sub(&self, other: &BigUint) -> BigUint {
        debug_assert!(self.cmp_to(other) != Ordering::Less, "BigUint underflow");
        let mut limbs = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            limbs.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        assert_eq!(borrow, 0, "BigUint underflow");
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Total-order comparison.
    pub fn cmp_to(&self, other: &BigUint) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Multiplication: schoolbook below [`KARATSUBA_THRESHOLD`] limbs,
    /// Karatsuba recursion above it.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = BigUint {
            limbs: mul_limbs(&self.limbs, &other.limbs),
        };
        out.normalize();
        out
    }

    /// Schoolbook multiplication, exposed for cross-checking the Karatsuba
    /// path in property tests. Prefer [`BigUint::mul`].
    #[doc(hidden)]
    pub fn mul_schoolbook(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = BigUint {
            limbs: schoolbook_limbs(&self.limbs, &other.limbs),
        };
        out.normalize();
        out
    }

    /// Multiplication by a single 64-bit word.
    pub fn mul_u64(&self, m: u64) -> BigUint {
        if m == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut limbs = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &a in &self.limbs {
            let cur = a as u128 * m as u128 + carry;
            limbs.push(cur as u64);
            carry = cur >> 64;
        }
        if carry != 0 {
            limbs.push(carry as u64);
        }
        BigUint { limbs }
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let mut limbs: Vec<u64> = self.limbs[limb_shift..].to_vec();
        if bit_shift != 0 {
            let mut carry = 0u64;
            for l in limbs.iter_mut().rev() {
                let new = (*l >> bit_shift) | carry;
                carry = *l << (64 - bit_shift);
                *l = new;
            }
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Quotient and remainder via Knuth Algorithm D.
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp_to(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return (q, BigUint::from_u64(r));
        }

        // Normalize: shift so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().expect("nonzero").leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        // Working copy of the dividend with one extra high limb.
        let mut un = u.limbs.clone();
        un.push(0);
        let vn = &v.limbs;
        let v_top = vn[n - 1];
        let v_next = vn[n - 2];

        let mut q_limbs = vec![0u64; m + 1];
        for j in (0..=m).rev() {
            // Estimate the quotient digit from the top two dividend limbs.
            let num = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut qhat = num / v_top as u128;
            let mut rhat = num % v_top as u128;
            // Correct qhat down (at most twice per Knuth).
            while qhat >> 64 != 0 || qhat * v_next as u128 > ((rhat << 64) | un[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += v_top as u128;
                if rhat >> 64 != 0 {
                    break;
                }
            }
            // Multiply-and-subtract qhat * v from the dividend window.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * vn[i] as u128 + carry;
                carry = p >> 64;
                let sub = un[j + i] as i128 - (p as u64) as i128 + borrow;
                un[j + i] = sub as u64;
                borrow = sub >> 64;
            }
            let sub = un[j + n] as i128 - carry as i128 + borrow;
            un[j + n] = sub as u64;
            borrow = sub >> 64;

            if borrow < 0 {
                // qhat was one too large: add the divisor back.
                qhat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = un[j + i] as u128 + vn[i] as u128 + carry;
                    un[j + i] = s as u64;
                    carry = s >> 64;
                }
                un[j + n] = un[j + n].wrapping_add(carry as u64);
            }
            q_limbs[j] = qhat as u64;
        }

        let mut quotient = BigUint { limbs: q_limbs };
        quotient.normalize();
        let mut remainder = BigUint {
            limbs: un[..n].to_vec(),
        };
        remainder.normalize();
        (quotient, remainder.shr(shift))
    }

    /// Quotient and remainder by a single 64-bit word.
    pub fn div_rem_u64(&self, d: u64) -> (BigUint, u64) {
        assert_ne!(d, 0, "division by zero");
        let mut rem = 0u128;
        let mut q = vec![0u64; self.limbs.len()];
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        let mut out = BigUint { limbs: q };
        out.normalize();
        (out, rem as u64)
    }

    /// Remainder `self mod m`.
    pub fn rem(&self, m: &BigUint) -> BigUint {
        self.div_rem(m).1
    }

    /// Modular addition of values already reduced mod `m`.
    pub fn add_mod(&self, other: &BigUint, m: &BigUint) -> BigUint {
        let s = self.add(other);
        if s.cmp_to(m) == Ordering::Less {
            s
        } else {
            s.sub(m)
        }
    }

    /// Modular subtraction of values already reduced mod `m`.
    pub fn sub_mod(&self, other: &BigUint, m: &BigUint) -> BigUint {
        if self.cmp_to(other) == Ordering::Less {
            self.add(m).sub(other)
        } else {
            self.sub(other)
        }
    }

    /// Modular multiplication (full reduction; used where Montgomery
    /// conversion would cost more than it saves).
    pub fn mul_mod(&self, other: &BigUint, m: &BigUint) -> BigUint {
        self.mul(other).rem(m)
    }

    /// Modular exponentiation `self^exp mod modulus`.
    ///
    /// Odd moduli use Montgomery multiplication; even moduli fall back to
    /// square-and-multiply with full division (RSA only ever uses odd
    /// moduli, so the fallback exists for completeness and tests).
    pub fn modpow(&self, exp: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modpow with zero modulus");
        if modulus.is_one() {
            return BigUint::zero();
        }
        if modulus.is_even() {
            return self.modpow_simple(exp, modulus);
        }
        crate::montgomery::MontgomeryCtx::new(modulus).modpow(self, exp)
    }

    /// Modular exponentiation against a prebuilt Montgomery context.
    ///
    /// Equivalent to [`BigUint::modpow`] for `ctx.modulus()`, but skips
    /// rebuilding the REDC constants — the hot path for per-key cached
    /// contexts (see [`crate::rsa::PublicKey::mont_ctx`]).
    pub fn modpow_with_ctx(
        &self,
        exp: &BigUint,
        ctx: &crate::montgomery::MontgomeryCtx,
    ) -> BigUint {
        ctx.modpow(self, exp)
    }

    /// Square-and-multiply with full division per step; the reference
    /// implementation (any modulus) the Montgomery paths are checked
    /// against.
    #[doc(hidden)]
    pub fn modpow_simple(&self, exp: &BigUint, modulus: &BigUint) -> BigUint {
        let mut base = self.rem(modulus);
        let mut result = BigUint::one().rem(modulus);
        for i in 0..exp.bit_len() {
            if exp.bit(i) {
                result = result.mul_mod(&base, modulus);
            }
            base = base.mul_mod(&base, modulus);
        }
        result
    }

    /// Binary GCD.
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let a_tz = a.trailing_zeros();
        let b_tz = b.trailing_zeros();
        let common = a_tz.min(b_tz);
        a = a.shr(a_tz);
        b = b.shr(b_tz);
        loop {
            match a.cmp_to(&b) {
                Ordering::Equal => break,
                Ordering::Greater => {
                    a = a.sub(&b);
                    a = a.shr(a.trailing_zeros());
                }
                Ordering::Less => {
                    b = b.sub(&a);
                    b = b.shr(b.trailing_zeros());
                }
            }
        }
        a.shl(common)
    }

    fn trailing_zeros(&self) -> usize {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return i * 64 + l.trailing_zeros() as usize;
            }
        }
        0
    }

    /// Modular inverse `self^-1 mod m` via the extended Euclidean algorithm.
    ///
    /// Returns `None` when `gcd(self, m) != 1`.
    pub fn modinv(&self, m: &BigUint) -> Option<BigUint> {
        if m.is_zero() || m.is_one() {
            return None;
        }
        // Track Bezout coefficients for `self` as (sign, magnitude) pairs.
        let mut r_prev = m.clone();
        let mut r = self.rem(m);
        if r.is_zero() {
            return None;
        }
        let mut s_prev = (false, BigUint::zero()); // coefficient of self for r_prev
        let mut s = (false, BigUint::one()); // coefficient of self for r
        while !r.is_zero() {
            let (q, rem) = r_prev.div_rem(&r);
            // s_next = s_prev - q * s  (signed arithmetic on magnitudes)
            let qs = q.mul(&s.1);
            let s_next = signed_sub(&s_prev, &(s.0, qs));
            r_prev = std::mem::replace(&mut r, rem);
            s_prev = std::mem::replace(&mut s, s_next);
        }
        if !r_prev.is_one() {
            return None;
        }
        // Map the signed coefficient into [0, m).
        let (neg, mag) = s_prev;
        let mag = mag.rem(m);
        Some(if neg && !mag.is_zero() {
            m.sub(&mag)
        } else {
            mag
        })
    }
}

/// Operands whose shorter side has at least this many limbs multiply via
/// Karatsuba; anything smaller uses schoolbook. 16 limbs = 1024 bits, so
/// RSA-1024's CRT halves (8 limbs) stay on the schoolbook fast path while
/// double-width products (e.g. RSA-2048 material, `R^2` setup for large
/// moduli) split recursively.
pub const KARATSUBA_THRESHOLD: usize = 16;

/// Dispatches between schoolbook and Karatsuba on raw limb slices.
/// Returns `a.len() + b.len()` limbs, possibly with trailing zeros.
fn mul_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
        return schoolbook_limbs(a, b);
    }
    karatsuba_limbs(a, b)
}

/// Schoolbook product on raw limb slices (`a.len() + b.len()` limbs out).
fn schoolbook_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut limbs = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let cur = limbs[i + j] as u128 + ai as u128 * bj as u128 + carry;
            limbs[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let cur = limbs[k] as u128 + carry;
            limbs[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
    limbs
}

/// Karatsuba: split both operands at `m` limbs and recurse —
/// `a·b = z2·2^(128m) + (z1 - z2 - z0)·2^(64m) + z0` with three
/// half-size products instead of four.
fn karatsuba_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    let m = a.len().max(b.len()).div_ceil(2);
    let (a0, a1) = a.split_at(m.min(a.len()));
    let (b0, b1) = b.split_at(m.min(b.len()));

    let z0 = mul_limbs(a0, b0);
    let z2 = mul_limbs(a1, b1);
    let sa = add_limb_slices(a0, a1);
    let sb = add_limb_slices(b0, b1);
    let mut z1 = mul_limbs(&sa, &sb);
    // z1 = (a0+a1)(b0+b1) - z0 - z2 >= 0 by construction.
    sub_limb_slices_in_place(&mut z1, &z0);
    sub_limb_slices_in_place(&mut z1, &z2);

    let mut out = vec![0u64; a.len() + b.len()];
    add_shifted_in_place(&mut out, &z0, 0);
    add_shifted_in_place(&mut out, &z1, m);
    add_shifted_in_place(&mut out, &z2, 2 * m);
    out
}

/// `a + b` on limb slices (result has `max(len) + 1` limbs at most).
fn add_limb_slices(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (longer, shorter) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(longer.len() + 1);
    let mut carry = 0u64;
    for (i, &l) in longer.iter().enumerate() {
        let s = shorter.get(i).copied().unwrap_or(0);
        let (s1, c1) = l.overflowing_add(s);
        let (s2, c2) = s1.overflowing_add(carry);
        out.push(s2);
        carry = c1 as u64 + c2 as u64;
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// `a -= b` on limb vectors; `b` may be shorter (missing limbs are zero).
/// Panics in debug builds on underflow — callers guarantee `a >= b`.
fn sub_limb_slices_in_place(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for (i, av) in a.iter_mut().enumerate() {
        let bv = b.get(i).copied().unwrap_or(0);
        let (d1, b1) = av.overflowing_sub(bv);
        let (d2, b2) = d1.overflowing_sub(borrow);
        *av = d2;
        borrow = b1 as u64 + b2 as u64;
    }
    debug_assert_eq!(borrow, 0, "Karatsuba middle term underflow");
}

/// `acc += v << (64 * shift)`; `acc` is wide enough by construction.
fn add_shifted_in_place(acc: &mut [u64], v: &[u64], shift: usize) {
    let mut carry = 0u64;
    let mut i = shift;
    for &limb in v {
        // Trailing zero limbs in v may extend past acc's width; they
        // carry no value, so stop once the carry is spent.
        if i >= acc.len() {
            debug_assert!(limb == 0 && carry == 0);
            return;
        }
        let (s1, c1) = acc[i].overflowing_add(limb);
        let (s2, c2) = s1.overflowing_add(carry);
        acc[i] = s2;
        carry = c1 as u64 + c2 as u64;
        i += 1;
    }
    while carry != 0 && i < acc.len() {
        let (s, c) = acc[i].overflowing_add(carry);
        acc[i] = s;
        carry = c as u64;
        i += 1;
    }
    debug_assert_eq!(carry, 0);
}

/// Signed subtraction on (sign, magnitude) pairs: `a - b`.
fn signed_sub(a: &(bool, BigUint), b: &(bool, BigUint)) -> (bool, BigUint) {
    match (a.0, b.0) {
        // a - (-b) = a + b ; (-a) - b = -(a + b)
        (false, true) => (false, a.1.add(&b.1)),
        (true, false) => (true, a.1.add(&b.1)),
        // Same sign: magnitude subtraction with sign fix-up.
        (sa, _) => match a.1.cmp_to(&b.1) {
            Ordering::Less => (!sa, b.1.sub(&a.1)),
            _ => (sa, a.1.sub(&b.1)),
        },
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_to(other)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0x0");
        }
        write!(f, "0x")?;
        let bytes = self.to_bytes_be();
        for b in bytes {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Decimal via repeated division; fine for test/debug output sizes.
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(10);
            digits.push(b'0' + r as u8);
            cur = q;
        }
        digits.reverse();
        write!(f, "{}", std::str::from_utf8(&digits).expect("ascii digits"))
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn zero_and_one_basics() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert!(BigUint::zero().is_even());
        assert!(!BigUint::one().is_even());
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
    }

    #[test]
    fn bytes_roundtrip() {
        let cases: &[&[u8]] = &[
            &[],
            &[1],
            &[0x12, 0x34],
            &[0xff; 16],
            &[1, 0, 0, 0, 0, 0, 0, 0, 0],
        ];
        for &c in cases {
            let v = BigUint::from_bytes_be(c);
            let back = v.to_bytes_be();
            // Leading zeros are stripped in the canonical form.
            let skip = c.iter().take_while(|&&b| b == 0).count();
            assert_eq!(back, &c[skip..]);
        }
    }

    #[test]
    fn bytes_leading_zeros_ignored() {
        let a = BigUint::from_bytes_be(&[0, 0, 5]);
        let b = BigUint::from_bytes_be(&[5]);
        assert_eq!(a, b);
    }

    #[test]
    fn padded_serialization() {
        let v = big(0x1234);
        assert_eq!(v.to_bytes_be_padded(4).unwrap(), vec![0, 0, 0x12, 0x34]);
        assert_eq!(v.to_bytes_be_padded(2).unwrap(), vec![0x12, 0x34]);
        assert!(v.to_bytes_be_padded(1).is_none());
        assert_eq!(
            BigUint::zero().to_bytes_be_padded(3).unwrap(),
            vec![0, 0, 0]
        );
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = big(u64::MAX as u128);
        let b = BigUint::one();
        assert_eq!(a.add(&b), big(1u128 << 64));
    }

    #[test]
    fn sub_borrows_across_limbs() {
        let a = big(1u128 << 64);
        let b = BigUint::one();
        assert_eq!(a.sub(&b), big(u64::MAX as u128));
    }

    #[test]
    #[should_panic]
    fn sub_underflow_panics() {
        BigUint::one().sub(&big(2));
    }

    #[test]
    fn mul_matches_u128() {
        let a = big(0xdead_beef_cafe_babe);
        let b = big(0x1234_5678_9abc_def0);
        let expect = 0xdead_beef_cafe_babe_u128 * 0x1234_5678_9abc_def0_u128;
        assert_eq!(a.mul(&b), big(expect));
    }

    #[test]
    fn mul_u64_matches_mul() {
        let a = BigUint::from_bytes_be(&[0xab; 20]);
        assert_eq!(a.mul_u64(12345), a.mul(&big(12345)));
    }

    #[test]
    fn shifts_roundtrip() {
        let a = BigUint::from_bytes_be(&[0x9e, 0x37, 0x79, 0xb9, 0x7f, 0x4a, 0x7c, 0x15, 0xaa]);
        for bits in [0, 1, 7, 63, 64, 65, 127, 200] {
            assert_eq!(a.shl(bits).shr(bits), a, "shift by {bits}");
        }
    }

    #[test]
    fn div_rem_small() {
        let (q, r) = big(100).div_rem(&big(7));
        assert_eq!(q, big(14));
        assert_eq!(r, big(2));
    }

    #[test]
    fn div_rem_dividend_smaller() {
        let (q, r) = big(3).div_rem(&big(10));
        assert!(q.is_zero());
        assert_eq!(r, big(3));
    }

    #[test]
    fn div_rem_exact() {
        let a = BigUint::from_bytes_be(&[0x7f; 32]);
        let b = BigUint::from_bytes_be(&[0x3b; 12]);
        let prod = a.mul(&b);
        let (q, r) = prod.div_rem(&b);
        assert_eq!(q, a);
        assert!(r.is_zero());
    }

    #[test]
    fn div_rem_reconstruction_multi_limb() {
        // q*d + r == n with r < d, across limb-boundary-stressing values.
        let n = BigUint::from_bytes_be(&[0xff; 40]);
        let d = BigUint::from_bytes_be(&[0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01]);
        let (q, r) = n.div_rem(&d);
        assert!(r.cmp_to(&d) == Ordering::Less);
        assert_eq!(q.mul(&d).add(&r), n);
    }

    #[test]
    fn div_rem_u64_matches_div_rem() {
        let n = BigUint::from_bytes_be(&[0xc3; 33]);
        let (q1, r1) = n.div_rem_u64(0xdead_beef);
        let (q2, r2) = n.div_rem(&big(0xdead_beef));
        assert_eq!(q1, q2);
        assert_eq!(BigUint::from_u64(r1), r2);
    }

    #[test]
    #[should_panic]
    fn div_by_zero_panics() {
        big(5).div_rem(&BigUint::zero());
    }

    #[test]
    fn modpow_small_cases() {
        assert_eq!(big(2).modpow(&big(10), &big(1000)), big(24));
        assert_eq!(big(3).modpow(&big(0), &big(7)), big(1));
        assert_eq!(big(0).modpow(&big(5), &big(7)), big(0));
        assert_eq!(big(5).modpow(&big(3), &big(1)), big(0));
    }

    #[test]
    fn modpow_even_modulus() {
        // 3^7 mod 100 = 2187 mod 100 = 87 (even modulus exercises fallback).
        assert_eq!(big(3).modpow(&big(7), &big(100)), big(87));
    }

    #[test]
    fn modpow_fermat_little() {
        // a^(p-1) = 1 mod p for prime p not dividing a.
        let p = big(1_000_000_007);
        for a in [2u128, 10, 999, 123456789] {
            assert_eq!(big(a).modpow(&big(1_000_000_006), &p), BigUint::one());
        }
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(big(12).gcd(&big(18)), big(6));
        assert_eq!(big(17).gcd(&big(31)), big(1));
        assert_eq!(big(0).gcd(&big(5)), big(5));
        assert_eq!(big(5).gcd(&big(0)), big(5));
        assert_eq!(big(48).gcd(&big(48)), big(48));
    }

    #[test]
    fn modinv_small() {
        // 3 * 4 = 12 = 1 mod 11
        assert_eq!(big(3).modinv(&big(11)).unwrap(), big(4));
        // gcd(4, 8) != 1 -> no inverse
        assert!(big(4).modinv(&big(8)).is_none());
        // self larger than modulus is reduced first
        assert_eq!(big(14).modinv(&big(11)).unwrap(), big(4));
    }

    #[test]
    fn modinv_verified_large() {
        let m = BigUint::from_bytes_be(&[
            0xd5, 0x9b, 0x2c, 0x11, 0x0f, 0xf3, 0x57, 0x1f, 0x2a, 0x7d, 0x19, 0x4c, 0x88, 0x1d,
            0x23, 0x0b,
        ]);
        // Choose an odd candidate coprime with high probability; verify via product.
        let a = BigUint::from_bytes_be(&[0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf1]);
        if let Some(inv) = a.modinv(&m) {
            assert_eq!(a.mul(&inv).rem(&m), BigUint::one());
        } else {
            assert!(!a.gcd(&m).is_one());
        }
    }

    #[test]
    fn display_decimal() {
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(big(1234567890123456789).to_string(), "1234567890123456789");
    }

    #[test]
    fn bit_accessors() {
        let mut v = BigUint::zero();
        v.set_bit(0);
        v.set_bit(70);
        assert!(v.bit(0));
        assert!(v.bit(70));
        assert!(!v.bit(1));
        assert!(!v.bit(500));
        assert_eq!(v.bit_len(), 71);
    }
}
