//! # tlc-crypto
//!
//! From-scratch cryptographic substrate for the TLC reproduction of
//! *"Bridging the Data Charging Gap in the Cellular Edge"* (SIGCOMM '19).
//!
//! The paper's prototype signs its Charging Data Records (CDR), Charging
//! Data Acceptances (CDA), and Proofs-of-Charging (PoC) with RSA-1024 via
//! `java.security`. No external crypto crates are available in this build
//! environment, so the full primitive stack is implemented here:
//!
//! * [`bigint`] — arbitrary-precision unsigned arithmetic (Knuth division,
//!   extended Euclid, modular exponentiation),
//! * [`montgomery`] — Montgomery-form modular multiplication for odd moduli,
//! * [`sha256`] / [`hmac`] — FIPS 180-4 SHA-256 and RFC 2104 HMAC,
//! * [`prime`] — Miller–Rabin testing and prime generation,
//! * [`rsa`] — key generation (CRT private keys) and raw RSA,
//! * [`pkcs1`] — RSASSA-PKCS1-v1_5 with SHA-256 (aka `SHA256withRSA`),
//! * [`rng`] — deterministic, seedable byte source so simulations reproduce,
//! * [`seal`] — hybrid public-key sealing for confidential PoC submission
//!   to a chosen verifier (§5.3.4's privacy concern),
//! * [`encoding`] — stable wire form for public keys.
//!
//! ## Example
//!
//! ```
//! use tlc_crypto::rsa::KeyPair;
//! use tlc_crypto::pkcs1;
//!
//! let kp = KeyPair::generate_for_seed(1024, 42).unwrap();
//! let sig = pkcs1::sign(&kp.private, b"datavolumeDownlink=33604032").unwrap();
//! assert_eq!(sig.len(), 128); // RSA-1024 signature
//! pkcs1::verify(&kp.public, b"datavolumeDownlink=33604032", &sig).unwrap();
//! ```
//!
//! ## Security note
//!
//! This implementation prioritises clarity and reproducibility of the
//! paper's measurements over side-channel hardening. Do not reuse it to
//! protect real data; RSA-1024 itself is below modern minimums (the paper
//! chose it in 2019 for prototype parity).

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod bigint;
pub mod encoding;
pub mod error;
pub mod hmac;
pub mod ifma;
pub mod montgomery;
pub mod pkcs1;
pub mod prime;
pub mod rng;
pub mod rsa;
pub mod seal;
pub mod sha256;

pub use bigint::BigUint;
pub use error::CryptoError;
pub use rng::{DeterministicRng, RngSource};
pub use rsa::{KeyPair, PrivateKey, PublicKey};
