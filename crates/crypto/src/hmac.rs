//! HMAC-SHA-256 (RFC 2104).
//!
//! Used by the deterministic RNG in [`crate::rng`] (HMAC-DRBG-style
//! expansion) and available for keyed integrity checks on charging traces.

use crate::sha256::{self, Sha256, BLOCK_LEN, DIGEST_LEN};

/// Computes `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut hm = HmacSha256::new(key);
    hm.update(message);
    hm.finalize()
}

/// Incremental HMAC-SHA-256.
pub struct HmacSha256 {
    inner: Sha256,
    outer_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Initializes with `key` (hashed down first if longer than one block).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let d = sha256::digest(key);
            k[..DIGEST_LEN].copy_from_slice(&d);
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            outer_key: opad,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produces the MAC, consuming the state.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0b; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaa; 131];
        assert_eq!(
            hex(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"charging-key";
        let msg = b"the quick brown fox jumps over the lazy dog";
        let mut hm = HmacSha256::new(key);
        hm.update(&msg[..10]);
        hm.update(&msg[10..]);
        assert_eq!(hm.finalize(), hmac_sha256(key, msg));
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }
}
