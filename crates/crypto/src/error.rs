//! Error type for the cryptographic substrate.

use std::fmt;

/// Errors from key generation, raw RSA, signing, and verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A raw RSA input was >= the modulus.
    MessageTooLarge,
    /// Requested key size is unsupported (must be even and >= 512).
    InvalidKeySize(usize),
    /// The modulus is too small to hold an EMSA-PKCS1-v1_5 SHA-256 encoding.
    KeyTooSmallForDigest,
    /// A signature had the wrong length for the key.
    SignatureLength {
        /// Modulus length in bytes.
        expected: usize,
        /// Actual signature length.
        got: usize,
    },
    /// Signature verification failed.
    BadSignature,
    /// Malformed serialized key or signature container.
    Encoding(&'static str),
    /// Internal invariant violation (should never surface).
    Internal,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::MessageTooLarge => write!(f, "message representative exceeds modulus"),
            CryptoError::InvalidKeySize(bits) => {
                write!(f, "invalid RSA key size: {bits} bits (need even, >= 512)")
            }
            CryptoError::KeyTooSmallForDigest => {
                write!(f, "modulus too small for EMSA-PKCS1-v1_5 SHA-256 encoding")
            }
            CryptoError::SignatureLength { expected, got } => {
                write!(f, "signature length {got}, expected {expected}")
            }
            CryptoError::BadSignature => write!(f, "signature verification failed"),
            CryptoError::Encoding(what) => write!(f, "malformed encoding: {what}"),
            CryptoError::Internal => write!(f, "internal crypto invariant violated"),
        }
    }
}

impl std::error::Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CryptoError::SignatureLength {
            expected: 128,
            got: 64,
        };
        let s = e.to_string();
        assert!(s.contains("128") && s.contains("64"));
        assert!(CryptoError::BadSignature.to_string().contains("failed"));
    }
}
