//! RSASSA-PKCS1-v1_5 signatures with SHA-256 (RFC 8017 §8.2 / §9.2).
//!
//! This is what `java.security`'s `SHA256withRSA` produces, i.e. the
//! signature scheme the paper's prototype uses for CDR/CDA/PoC messages.
//!
//! Both [`sign`] and [`verify`] go through the key's raw RSA operations,
//! which reuse the per-key cached [`crate::montgomery::MontgomeryCtx`]
//! (see [`crate::rsa`]) — no REDC constants are recomputed per signature.

use crate::bigint::BigUint;
use crate::error::CryptoError;
use crate::rsa::{PrivateKey, PublicKey};
use crate::sha256;

/// DER prefix for the SHA-256 `DigestInfo` structure
/// (`SEQUENCE { AlgorithmIdentifier sha256, OCTET STRING (32) }`).
const SHA256_DIGEST_INFO_PREFIX: [u8; 19] = [
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01, 0x05,
    0x00, 0x04, 0x20,
];

/// EMSA-PKCS1-v1_5 encoding of a SHA-256 digest into `em_len` bytes.
fn emsa_encode(message: &[u8], em_len: usize) -> Result<Vec<u8>, CryptoError> {
    emsa_encode_digest(&sha256::digest(message), em_len)
}

/// EMSA-PKCS1-v1_5 encoding of an already-computed SHA-256 digest — the
/// second half of [`emsa_encode`], split out so pipelined verifiers can
/// hash in one stage and encode/compare in another.
fn emsa_encode_digest(
    digest: &[u8; sha256::DIGEST_LEN],
    em_len: usize,
) -> Result<Vec<u8>, CryptoError> {
    let t_len = SHA256_DIGEST_INFO_PREFIX.len() + digest.len();
    // RFC 8017: emLen must be at least tLen + 11.
    if em_len < t_len + 11 {
        return Err(CryptoError::KeyTooSmallForDigest);
    }
    let mut em = Vec::with_capacity(em_len);
    em.push(0x00);
    em.push(0x01);
    em.resize(em_len - t_len - 1, 0xff); // PS of 0xff, at least 8 bytes
    em.push(0x00);
    em.extend_from_slice(&SHA256_DIGEST_INFO_PREFIX);
    em.extend_from_slice(digest);
    debug_assert_eq!(em.len(), em_len);
    Ok(em)
}

/// Signs `message` with RSASSA-PKCS1-v1_5/SHA-256.
///
/// The returned signature is exactly `modulus_len` bytes.
pub fn sign(key: &PrivateKey, message: &[u8]) -> Result<Vec<u8>, CryptoError> {
    let k = key.public.modulus_len();
    let em = emsa_encode(message, k)?;
    let m = BigUint::from_bytes_be(&em);
    let s = key.raw_decrypt(&m)?;
    s.to_bytes_be_padded(k).ok_or(CryptoError::Internal)
}

/// Verifies an RSASSA-PKCS1-v1_5/SHA-256 signature.
///
/// Returns `Ok(())` on success; any structural or cryptographic mismatch is
/// an error so callers cannot forget to check a boolean.
pub fn verify(key: &PublicKey, message: &[u8], signature: &[u8]) -> Result<(), CryptoError> {
    verify_prehashed(key, &sha256::digest(message), signature)
}

/// Verifies a signature over a message whose SHA-256 digest the caller has
/// already computed. `verify(key, msg, sig)` is exactly
/// `verify_prehashed(key, &sha256::digest(msg), sig)`.
pub fn verify_prehashed(
    key: &PublicKey,
    digest: &[u8; sha256::DIGEST_LEN],
    signature: &[u8],
) -> Result<(), CryptoError> {
    let k = key.modulus_len();
    if signature.len() != k {
        return Err(CryptoError::SignatureLength {
            expected: k,
            got: signature.len(),
        });
    }
    let s = BigUint::from_bytes_be(signature);
    let m = key.raw_encrypt(&s)?;
    finish_verify(&m, digest, k)
}

/// Encode-then-compare tail shared by the scalar and batch paths.
fn finish_verify(
    m: &BigUint,
    digest: &[u8; sha256::DIGEST_LEN],
    k: usize,
) -> Result<(), CryptoError> {
    let em = m.to_bytes_be_padded(k).ok_or(CryptoError::Internal)?;
    let expected = emsa_encode_digest(digest, k)?;
    // Constant-time-style full comparison (encode-then-compare per RFC 8017).
    if constant_time_eq(&em, &expected) {
        Ok(())
    } else {
        Err(CryptoError::BadSignature)
    }
}

/// One element of a [`verify_batch`] call.
pub struct VerifyRequest<'a> {
    /// Signer's public key. Requests sharing a key (by `(n, e)` value)
    /// are exponentiated together through the interleaved lane kernels.
    pub key: &'a PublicKey,
    /// SHA-256 digest of the signed message.
    pub digest: [u8; sha256::DIGEST_LEN],
    /// Signature bytes.
    pub signature: &'a [u8],
}

/// Verifies a batch of signatures, amortizing each key's Montgomery
/// context across its requests and interleaving independent modpows.
///
/// Result `i` is exactly what
/// `verify_prehashed(reqs[i].key, &reqs[i].digest, reqs[i].signature)`
/// returns: a bad element fails alone without disturbing its neighbours,
/// and every error variant and precedence matches the scalar path.
pub fn verify_batch(reqs: &[VerifyRequest<'_>]) -> Vec<Result<(), CryptoError>> {
    let mut results: Vec<Option<Result<(), CryptoError>>> = Vec::new();
    results.resize_with(reqs.len(), || None);

    // Group requests by key: `groups` holds (representative index, member
    // indices). Batches are small (tens of requests over a handful of
    // keys), so a linear scan beats hashing the moduli.
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    for (i, req) in reqs.iter().enumerate() {
        let k = req.key.modulus_len();
        if req.signature.len() != k {
            results[i] = Some(Err(CryptoError::SignatureLength {
                expected: k,
                got: req.signature.len(),
            }));
            continue;
        }
        match groups.iter_mut().find(|(rep, _)| reqs[*rep].key == req.key) {
            Some((_, members)) => members.push(i),
            None => groups.push((i, vec![i])),
        }
    }

    for (rep, members) in groups {
        let key = reqs[rep].key;
        let k = key.modulus_len();
        // The scalar path rejects s >= n before exponentiating.
        let mut bases = Vec::with_capacity(members.len());
        let mut live = Vec::with_capacity(members.len());
        for &i in &members {
            let s = BigUint::from_bytes_be(reqs[i].signature);
            if s.cmp_to(&key.n) != std::cmp::Ordering::Less {
                results[i] = Some(Err(CryptoError::MessageTooLarge));
            } else {
                bases.push(s);
                live.push(i);
            }
        }
        let ms: Vec<BigUint> = match key.mont_ctx() {
            Some(ctx) => ctx.modpow_batch(&bases, &key.e),
            // Even/zero modulus: mirror `raw_encrypt`'s schoolbook fallback.
            None => bases.iter().map(|s| s.modpow(&key.e, &key.n)).collect(),
        };
        for (m, &i) in ms.iter().zip(&live) {
            results[i] = Some(finish_verify(m, &reqs[i].digest, k));
        }
    }

    results
        .into_iter()
        .map(|r| r.expect("every request resolved"))
        .collect()
}

fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::KeyPair;

    fn kp() -> KeyPair {
        KeyPair::generate_for_seed(1024, 0xc0de).expect("keygen")
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = kp();
        let msg = b"CDR{T, c, seq, nonce, x_o}";
        let sig = sign(&kp.private, msg).unwrap();
        assert_eq!(sig.len(), 128); // RSA-1024 -> 128-byte signature
        verify(&kp.public, msg, &sig).unwrap();
    }

    #[test]
    fn tampered_message_rejected() {
        let kp = kp();
        let sig = sign(&kp.private, b"usage=1000").unwrap();
        assert!(matches!(
            verify(&kp.public, b"usage=9999", &sig),
            Err(CryptoError::BadSignature)
        ));
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = kp();
        let mut sig = sign(&kp.private, b"hello").unwrap();
        sig[5] ^= 0x01;
        assert!(verify(&kp.public, b"hello", &sig).is_err());
    }

    #[test]
    fn wrong_key_rejected() {
        let a = kp();
        let b = KeyPair::generate_for_seed(1024, 0xdead).unwrap();
        let sig = sign(&a.private, b"msg").unwrap();
        assert!(verify(&b.public, b"msg", &sig).is_err());
    }

    #[test]
    fn wrong_length_signature_rejected_early() {
        let kp = kp();
        assert!(matches!(
            verify(&kp.public, b"msg", &[0u8; 64]),
            Err(CryptoError::SignatureLength {
                expected: 128,
                got: 64
            })
        ));
    }

    #[test]
    fn empty_message_signable() {
        let kp = kp();
        let sig = sign(&kp.private, b"").unwrap();
        verify(&kp.public, b"", &sig).unwrap();
    }

    #[test]
    fn signature_is_deterministic() {
        // PKCS#1 v1.5 signing is deterministic — same message, same bytes.
        let kp = kp();
        assert_eq!(
            sign(&kp.private, b"determinism").unwrap(),
            sign(&kp.private, b"determinism").unwrap()
        );
    }

    #[test]
    fn key_too_small_for_digest_rejected() {
        // 512-bit keys are big enough (64 >= 32+19+11=62); use the check
        // indirectly by encoding into a tiny em_len.
        assert!(matches!(
            emsa_encode(b"x", 40),
            Err(CryptoError::KeyTooSmallForDigest)
        ));
    }

    #[test]
    fn batch_mixed_keys_matches_scalar_and_isolates_failures() {
        let a = kp();
        let b = KeyPair::generate_for_seed(1024, 0xbeef).unwrap();
        let msgs: Vec<Vec<u8>> = (0..7u8).map(|i| vec![i; 40 + i as usize]).collect();
        let mut sigs: Vec<Vec<u8>> = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let key = if i % 2 == 0 { &a.private } else { &b.private };
                sign(key, m).unwrap()
            })
            .collect();
        sigs[3][10] ^= 0x40; // corrupt one element only
        let reqs: Vec<VerifyRequest<'_>> = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| VerifyRequest {
                key: if i % 2 == 0 { &a.public } else { &b.public },
                digest: sha256::digest(m),
                signature: &sigs[i],
            })
            .collect();
        let batch = verify_batch(&reqs);
        for (i, r) in batch.iter().enumerate() {
            let scalar = verify_prehashed(reqs[i].key, &reqs[i].digest, reqs[i].signature);
            assert_eq!(*r, scalar, "element {i}");
            if i == 3 {
                assert_eq!(*r, Err(CryptoError::BadSignature));
            } else {
                assert!(r.is_ok(), "element {i}");
            }
        }
    }

    #[test]
    fn batch_structural_errors_match_scalar() {
        let kp = kp();
        let good_msg = b"ok".to_vec();
        let good_sig = sign(&kp.private, &good_msg).unwrap();
        // s >= n: an all-0xff "signature" of the right length.
        let too_large = vec![0xffu8; 128];
        let short = vec![0u8; 64];
        let reqs = vec![
            VerifyRequest {
                key: &kp.public,
                digest: sha256::digest(&good_msg),
                signature: &good_sig,
            },
            VerifyRequest {
                key: &kp.public,
                digest: sha256::digest(b"x"),
                signature: &too_large,
            },
            VerifyRequest {
                key: &kp.public,
                digest: sha256::digest(b"y"),
                signature: &short,
            },
        ];
        let batch = verify_batch(&reqs);
        assert_eq!(batch[0], Ok(()));
        assert_eq!(batch[1], Err(CryptoError::MessageTooLarge));
        assert_eq!(
            batch[2],
            Err(CryptoError::SignatureLength {
                expected: 128,
                got: 64
            })
        );
        for (i, r) in batch.iter().enumerate() {
            assert_eq!(
                *r,
                verify_prehashed(reqs[i].key, &reqs[i].digest, reqs[i].signature),
                "element {i}"
            );
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        assert!(verify_batch(&[]).is_empty());
    }

    #[test]
    fn em_structure_is_canonical() {
        let em = emsa_encode(b"abc", 128).unwrap();
        assert_eq!(em[0], 0x00);
        assert_eq!(em[1], 0x01);
        let sep = em.iter().skip(2).position(|&b| b == 0x00).unwrap() + 2;
        assert!(em[2..sep].iter().all(|&b| b == 0xff));
        assert!(sep - 2 >= 8, "PS must be at least 8 bytes");
        assert_eq!(&em[sep + 1..sep + 1 + 19], &SHA256_DIGEST_INFO_PREFIX);
    }
}
