//! RSASSA-PKCS1-v1_5 signatures with SHA-256 (RFC 8017 §8.2 / §9.2).
//!
//! This is what `java.security`'s `SHA256withRSA` produces, i.e. the
//! signature scheme the paper's prototype uses for CDR/CDA/PoC messages.
//!
//! Both [`sign`] and [`verify`] go through the key's raw RSA operations,
//! which reuse the per-key cached [`crate::montgomery::MontgomeryCtx`]
//! (see [`crate::rsa`]) — no REDC constants are recomputed per signature.

use crate::bigint::BigUint;
use crate::error::CryptoError;
use crate::rsa::{PrivateKey, PublicKey};
use crate::sha256;

/// DER prefix for the SHA-256 `DigestInfo` structure
/// (`SEQUENCE { AlgorithmIdentifier sha256, OCTET STRING (32) }`).
const SHA256_DIGEST_INFO_PREFIX: [u8; 19] = [
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01, 0x05,
    0x00, 0x04, 0x20,
];

/// EMSA-PKCS1-v1_5 encoding of a SHA-256 digest into `em_len` bytes.
fn emsa_encode(message: &[u8], em_len: usize) -> Result<Vec<u8>, CryptoError> {
    let digest = sha256::digest(message);
    let t_len = SHA256_DIGEST_INFO_PREFIX.len() + digest.len();
    // RFC 8017: emLen must be at least tLen + 11.
    if em_len < t_len + 11 {
        return Err(CryptoError::KeyTooSmallForDigest);
    }
    let mut em = Vec::with_capacity(em_len);
    em.push(0x00);
    em.push(0x01);
    em.resize(em_len - t_len - 1, 0xff); // PS of 0xff, at least 8 bytes
    em.push(0x00);
    em.extend_from_slice(&SHA256_DIGEST_INFO_PREFIX);
    em.extend_from_slice(&digest);
    debug_assert_eq!(em.len(), em_len);
    Ok(em)
}

/// Signs `message` with RSASSA-PKCS1-v1_5/SHA-256.
///
/// The returned signature is exactly `modulus_len` bytes.
pub fn sign(key: &PrivateKey, message: &[u8]) -> Result<Vec<u8>, CryptoError> {
    let k = key.public.modulus_len();
    let em = emsa_encode(message, k)?;
    let m = BigUint::from_bytes_be(&em);
    let s = key.raw_decrypt(&m)?;
    s.to_bytes_be_padded(k).ok_or(CryptoError::Internal)
}

/// Verifies an RSASSA-PKCS1-v1_5/SHA-256 signature.
///
/// Returns `Ok(())` on success; any structural or cryptographic mismatch is
/// an error so callers cannot forget to check a boolean.
pub fn verify(key: &PublicKey, message: &[u8], signature: &[u8]) -> Result<(), CryptoError> {
    let k = key.modulus_len();
    if signature.len() != k {
        return Err(CryptoError::SignatureLength {
            expected: k,
            got: signature.len(),
        });
    }
    let s = BigUint::from_bytes_be(signature);
    let m = key.raw_encrypt(&s)?;
    let em = m.to_bytes_be_padded(k).ok_or(CryptoError::Internal)?;
    let expected = emsa_encode(message, k)?;
    // Constant-time-style full comparison (encode-then-compare per RFC 8017).
    if constant_time_eq(&em, &expected) {
        Ok(())
    } else {
        Err(CryptoError::BadSignature)
    }
}

fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::KeyPair;

    fn kp() -> KeyPair {
        KeyPair::generate_for_seed(1024, 0xc0de).expect("keygen")
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = kp();
        let msg = b"CDR{T, c, seq, nonce, x_o}";
        let sig = sign(&kp.private, msg).unwrap();
        assert_eq!(sig.len(), 128); // RSA-1024 -> 128-byte signature
        verify(&kp.public, msg, &sig).unwrap();
    }

    #[test]
    fn tampered_message_rejected() {
        let kp = kp();
        let sig = sign(&kp.private, b"usage=1000").unwrap();
        assert!(matches!(
            verify(&kp.public, b"usage=9999", &sig),
            Err(CryptoError::BadSignature)
        ));
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = kp();
        let mut sig = sign(&kp.private, b"hello").unwrap();
        sig[5] ^= 0x01;
        assert!(verify(&kp.public, b"hello", &sig).is_err());
    }

    #[test]
    fn wrong_key_rejected() {
        let a = kp();
        let b = KeyPair::generate_for_seed(1024, 0xdead).unwrap();
        let sig = sign(&a.private, b"msg").unwrap();
        assert!(verify(&b.public, b"msg", &sig).is_err());
    }

    #[test]
    fn wrong_length_signature_rejected_early() {
        let kp = kp();
        assert!(matches!(
            verify(&kp.public, b"msg", &[0u8; 64]),
            Err(CryptoError::SignatureLength {
                expected: 128,
                got: 64
            })
        ));
    }

    #[test]
    fn empty_message_signable() {
        let kp = kp();
        let sig = sign(&kp.private, b"").unwrap();
        verify(&kp.public, b"", &sig).unwrap();
    }

    #[test]
    fn signature_is_deterministic() {
        // PKCS#1 v1.5 signing is deterministic — same message, same bytes.
        let kp = kp();
        assert_eq!(
            sign(&kp.private, b"determinism").unwrap(),
            sign(&kp.private, b"determinism").unwrap()
        );
    }

    #[test]
    fn key_too_small_for_digest_rejected() {
        // 512-bit keys are big enough (64 >= 32+19+11=62); use the check
        // indirectly by encoding into a tiny em_len.
        assert!(matches!(
            emsa_encode(b"x", 40),
            Err(CryptoError::KeyTooSmallForDigest)
        ));
    }

    #[test]
    fn em_structure_is_canonical() {
        let em = emsa_encode(b"abc", 128).unwrap();
        assert_eq!(em[0], 0x00);
        assert_eq!(em[1], 0x01);
        let sep = em.iter().skip(2).position(|&b| b == 0x00).unwrap() + 2;
        assert!(em[2..sep].iter().all(|&b| b == 0xff));
        assert!(sep - 2 >= 8, "PS must be at least 8 bytes");
        assert_eq!(&em[sep + 1..sep + 1 + 19], &SHA256_DIGEST_INFO_PREFIX);
    }
}
