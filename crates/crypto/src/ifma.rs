//! 8-lane batched modular exponentiation for 1024-bit moduli using
//! AVX-512 IFMA (`vpmadd52{lo,hi}uq`).
//!
//! This is the multi-buffer RSA technique from Gueron & Krasnov's
//! vectorized modular arithmetic line of work: operands are recoded into
//! radix-2^52 (20 digits for a 1024-bit modulus), eight independent
//! exponentiations ride in the eight 64-bit elements of a `__m512i`, and
//! every digit-by-digit product uses the 52-bit fused multiply-add
//! instructions. The almost-Montgomery multiplication (AMM) step keeps
//! per-digit accumulators in redundant (unnormalized) 64-bit containers
//! so no carry propagates inside the hot loop; one short vectorized
//! carry-propagation pass renormalizes per AMM.
//!
//! Values travel the exponentiation chain in the almost-reduced range
//! `[0, 2M)` (valid because `R = 2^1040 > 4M` for a 1024-bit `M`); only
//! the final conversion out of Montgomery form fully reduces, so results
//! are bit-for-bit the canonical `base^exp mod M` the scalar kernels
//! produce.
//!
//! Everything here is runtime-gated: [`available`] reports whether the
//! CPU has AVX-512 IFMA, and `MontgomeryCtx::modpow_batch`
//! (`crate::montgomery`) only routes full blocks of [`IFMA_LANES`] here
//! when it does. On other architectures this module compiles to a stub
//! that reports unavailability.

#[cfg(target_arch = "x86_64")]
pub use imp::{available, IfmaCtx1024};

#[cfg(not(target_arch = "x86_64"))]
pub use stub::{available, IfmaCtx1024};

/// Number of exponentiations carried per IFMA batch (one per 64-bit
/// element of a 512-bit vector).
pub const IFMA_LANES: usize = 8;

/// Radix-2^52 digits in a 1024-bit operand (`ceil(1040 / 52)`).
pub const DIGITS: usize = 20;

#[cfg(target_arch = "x86_64")]
mod imp {
    use super::{DIGITS, IFMA_LANES};
    use crate::bigint::BigUint;
    use core::arch::x86_64::{
        __m512i, _mm512_add_epi64, _mm512_and_si512, _mm512_madd52hi_epu64, _mm512_madd52lo_epu64,
        _mm512_set1_epi64, _mm512_setzero_si512, _mm512_srli_epi64,
    };
    use std::cmp::Ordering;

    const MASK52: u64 = (1u64 << 52) - 1;

    /// True when the running CPU can execute the IFMA kernels.
    pub fn available() -> bool {
        std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512ifma")
    }

    /// Per-modulus constants for the 8-lane 1024-bit IFMA path, derived
    /// once per key (cached inside `MontgomeryCtx`).
    pub struct IfmaCtx1024 {
        /// Modulus in radix-2^52.
        m: [u64; DIGITS],
        /// `2^(2·52·DIGITS) mod m` in radix-2^52: the Montgomery-entry
        /// constant for `R = 2^1040`.
        r2: [u64; DIGITS],
        /// `-m^{-1} mod 2^52`.
        k0: u64,
        /// The modulus as a `BigUint` for the final exact reduction.
        modulus: BigUint,
    }

    /// Slices a little-endian u64 limb array into radix-2^52 digits.
    fn to_digits52(limbs: &[u64]) -> [u64; DIGITS] {
        let mut out = [0u64; DIGITS];
        for (d, digit) in out.iter_mut().enumerate() {
            let bit = 52 * d;
            let idx = bit / 64;
            let off = bit % 64;
            let mut v = limbs.get(idx).copied().unwrap_or(0) >> off;
            if off > 12 {
                v |= limbs.get(idx + 1).copied().unwrap_or(0) << (64 - off);
            }
            *digit = v & MASK52;
        }
        out
    }

    /// Reassembles radix-2^52 digits into a normalized `BigUint`.
    fn from_digits52(digits: &[u64; DIGITS]) -> BigUint {
        let mut limbs = vec![0u64; (52 * DIGITS).div_ceil(64)];
        for (d, &digit) in digits.iter().enumerate() {
            let bit = 52 * d;
            let idx = bit / 64;
            let off = bit % 64;
            limbs[idx] |= digit << off;
            if off > 12 {
                limbs[idx + 1] |= digit >> (64 - off);
            }
        }
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// `__m512i` ↔ lane-array views (pure reinterpretation, no AVX
    /// instruction involved).
    fn lanes_of(v: __m512i) -> [u64; IFMA_LANES] {
        // SAFETY: __m512i and [u64; 8] have identical size and layout.
        unsafe { core::mem::transmute::<__m512i, [u64; IFMA_LANES]>(v) }
    }

    fn vec_of(lanes: [u64; IFMA_LANES]) -> __m512i {
        // SAFETY: __m512i and [u64; 8] have identical size and layout.
        unsafe { core::mem::transmute::<[u64; IFMA_LANES], __m512i>(lanes) }
    }

    impl IfmaCtx1024 {
        /// Builds the constants for an odd 16-limb (1024-bit) modulus.
        /// `n_prime64` is `-modulus^{-1} mod 2^64` from the scalar
        /// Montgomery context; its low 52 bits are the radix-2^52
        /// reduction factor.
        pub fn new(modulus: &BigUint, n_prime64: u64) -> Self {
            debug_assert_eq!(modulus.limbs.len(), 16);
            let m = to_digits52(&modulus.limbs);
            let r2_big = BigUint::one().shl(2 * 52 * DIGITS).rem(modulus);
            let mut r2_limbs = r2_big.limbs.clone();
            r2_limbs.resize(16, 0);
            let r2 = to_digits52(&r2_limbs);
            IfmaCtx1024 {
                m,
                r2,
                k0: n_prime64 & MASK52,
                modulus: modulus.clone(),
            }
        }

        /// Computes `bases[l]^exp mod m` for exactly [`IFMA_LANES`] bases,
        /// each already reduced below the modulus. `exp` must be nonzero.
        pub fn modpow8(&self, bases: &[BigUint], exp: &BigUint) -> Vec<BigUint> {
            debug_assert_eq!(bases.len(), IFMA_LANES);
            debug_assert!(!exp.is_zero());
            // SAFETY: callers only construct IfmaCtx1024 after
            // `available()` confirmed AVX-512F + IFMA at runtime.
            unsafe { self.modpow8_inner(bases, exp) }
        }

        // SAFETY: unsafe to *call* (not unsafe internally): the caller
        // must guarantee the CPU supports AVX-512F + AVX-512 IFMA, as
        // `modpow8` does by construction-gating on `available()`.
        #[target_feature(enable = "avx512f,avx512ifma")]
        unsafe fn modpow8_inner(&self, bases: &[BigUint], exp: &BigUint) -> Vec<BigUint> {
            let zero = _mm512_setzero_si512();

            // Transpose the 8 operands into digit-major vectors: a[d]
            // holds digit d of every lane.
            let mut lane_digits = [[0u64; DIGITS]; IFMA_LANES];
            for (l, base) in bases.iter().enumerate() {
                debug_assert!(base.cmp_to(&self.modulus) == Ordering::Less);
                let mut limbs = base.limbs.clone();
                limbs.resize(16, 0);
                lane_digits[l] = to_digits52(&limbs);
            }
            let a: [__m512i; DIGITS] = core::array::from_fn(|d| {
                let mut lanes = [0u64; IFMA_LANES];
                for (l, ld) in lane_digits.iter().enumerate() {
                    lanes[l] = ld[d];
                }
                vec_of(lanes)
            });

            let m: [__m512i; DIGITS] =
                core::array::from_fn(|d| _mm512_set1_epi64(self.m[d] as i64));
            let r2: [__m512i; DIGITS] =
                core::array::from_fn(|d| _mm512_set1_epi64(self.r2[d] as i64));
            let k0 = _mm512_set1_epi64(self.k0 as i64);

            // Into Montgomery form, then a left-to-right binary ladder
            // (the same schedule as the scalar short-exponent path).
            let base_m = amm(&a, &r2, &m, k0);
            let mut acc = base_m;
            let bits = exp.bit_len();
            for i in (0..bits - 1).rev() {
                acc = amm(&acc, &acc, &m, k0);
                if exp.bit(i) {
                    acc = amm(&acc, &base_m, &m, k0);
                }
            }

            // Out of Montgomery form: multiply by 1.
            let mut one = [zero; DIGITS];
            one[0] = _mm512_set1_epi64(1);
            let plain = amm(&acc, &one, &m, k0);

            // Exact reduction per lane: AMM leaves values almost reduced.
            (0..IFMA_LANES)
                .map(|l| {
                    let mut digits = [0u64; DIGITS];
                    for (d, digit_vec) in plain.iter().enumerate() {
                        digits[d] = lanes_of(*digit_vec)[l];
                    }
                    let mut v = from_digits52(&digits);
                    while v.cmp_to(&self.modulus) != Ordering::Less {
                        v = v.sub(&self.modulus);
                    }
                    v
                })
                .collect()
        }
    }

    /// One almost-Montgomery multiplication over all 8 lanes:
    /// `AMM(a, b) = a·b·2^(-52·DIGITS) mod m`, result in `[0, 2m)` with
    /// normalized 52-bit digits. Inputs must have 52-bit digits and value
    /// `< 2m`.
    ///
    /// Accumulators are redundant 64-bit containers: each of the `DIGITS`
    /// rounds adds at most four sub-2^52 terms per container before the
    /// one-digit shift, so containers peak well below 2^63 and no carry
    /// propagates inside the hot loop.
    #[target_feature(enable = "avx512f,avx512ifma")]
    fn amm(
        a: &[__m512i; DIGITS],
        b: &[__m512i; DIGITS],
        m: &[__m512i; DIGITS],
        k0: __m512i,
    ) -> [__m512i; DIGITS] {
        let zero = _mm512_setzero_si512();
        let mut r = [zero; DIGITS + 1];
        for &bi in b.iter().take(DIGITS) {
            // r += a * b[i]
            for j in 0..DIGITS {
                r[j] = _mm512_madd52lo_epu64(r[j], a[j], bi);
                r[j + 1] = _mm512_madd52hi_epu64(r[j + 1], a[j], bi);
            }
            // y = r[0] · (-m^{-1}) mod 2^52; adding m·y zeroes the low
            // digit (mod 2^52).
            let y = _mm512_madd52lo_epu64(zero, r[0], k0);
            for j in 0..DIGITS {
                r[j] = _mm512_madd52lo_epu64(r[j], m[j], y);
                r[j + 1] = _mm512_madd52hi_epu64(r[j + 1], m[j], y);
            }
            // Divide by 2^52: digit 0's container is ≡ 0 mod 2^52, so
            // only its upper bits carry into the next digit.
            let carry = _mm512_srli_epi64::<52>(r[0]);
            r[0] = _mm512_add_epi64(r[1], carry);
            for j in 1..DIGITS {
                r[j] = r[j + 1];
            }
            r[DIGITS] = zero;
        }
        // Renormalize the redundant containers to 52-bit digits.
        let mask = _mm512_set1_epi64(MASK52 as i64);
        let mut out = [zero; DIGITS];
        let mut carry = zero;
        for (j, slot) in out.iter_mut().enumerate() {
            let v = _mm512_add_epi64(r[j], carry);
            *slot = _mm512_and_si512(v, mask);
            carry = _mm512_srli_epi64::<52>(v);
        }
        // The value is < 2m < 2^1040, so nothing carries out of the top
        // digit.
        debug_assert_eq!(lanes_of(carry), [0u64; IFMA_LANES]);
        out
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod stub {
    use crate::bigint::BigUint;

    /// IFMA is an x86-64 extension; never available elsewhere.
    pub fn available() -> bool {
        false
    }

    /// Uninhabited on non-x86-64 targets: `available()` is false, so the
    /// dispatcher never constructs one.
    pub struct IfmaCtx1024 {
        never: core::convert::Infallible,
    }

    impl IfmaCtx1024 {
        pub fn new(_modulus: &BigUint, _n_prime64: u64) -> Self {
            unreachable!("IFMA context constructed on non-x86-64 target")
        }

        pub fn modpow8(&self, _bases: &[BigUint], _exp: &BigUint) -> Vec<BigUint> {
            match self.never {}
        }
    }
}
