//! Probabilistic prime testing and prime generation for RSA key material.
//!
//! Miller–Rabin with random bases, preceded by trial division over a small
//! prime table. 30 rounds gives an error probability far below 2^-64 for
//! the 512-bit primes RSA-1024 needs.

use crate::bigint::BigUint;
use crate::rng::RngSource;

/// Small primes for cheap trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 60] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281,
];

/// Number of Miller–Rabin rounds used by [`is_probable_prime`].
pub const MILLER_RABIN_ROUNDS: usize = 30;

/// Tests `n` for primality: trial division then Miller–Rabin rounds with
/// random bases drawn from `rng`.
pub fn is_probable_prime(n: &BigUint, rng: &mut dyn RngSource) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let pv = BigUint::from_u64(p);
        match n.cmp_to(&pv) {
            std::cmp::Ordering::Equal => return true,
            std::cmp::Ordering::Less => return false,
            std::cmp::Ordering::Greater => {}
        }
        let (_, r) = n.div_rem_u64(p);
        if r == 0 {
            return false;
        }
    }
    miller_rabin(n, MILLER_RABIN_ROUNDS, rng)
}

/// Miller–Rabin with `rounds` random bases. `n` must be odd and > 3.
fn miller_rabin(n: &BigUint, rounds: usize, rng: &mut dyn RngSource) -> bool {
    debug_assert!(!n.is_even());
    let one = BigUint::one();
    let two = BigUint::from_u64(2);
    let n_minus_1 = n.sub(&one);
    let n_minus_3 = n.sub(&BigUint::from_u64(3));
    // One REDC context per candidate, shared by all witness exponentiations.
    let ctx = crate::montgomery::MontgomeryCtx::new(n);

    // n - 1 = 2^s * d with d odd.
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr(1);
        s += 1;
    }

    'witness: for _ in 0..rounds {
        // Base a uniform in [2, n-2].
        let a = random_below(&n_minus_3, rng).add(&two);
        let mut x = a.modpow_with_ctx(&d, &ctx);
        if x.is_one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = x.mul_mod(&x, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false; // composite witness found
    }
    true
}

/// Uniform value in `[0, bound]` (inclusive) via rejection sampling on the
/// bit length.
fn random_below(bound: &BigUint, rng: &mut dyn RngSource) -> BigUint {
    let bits = bound.bit_len();
    if bits == 0 {
        return BigUint::zero();
    }
    let bytes = bits.div_ceil(8);
    let top_mask = if bits.is_multiple_of(8) {
        0xffu8
    } else {
        (1u8 << (bits % 8)) - 1
    };
    loop {
        let mut buf = vec![0u8; bytes];
        rng.fill(&mut buf);
        buf[0] &= top_mask;
        let v = BigUint::from_bytes_be(&buf);
        if v.cmp_to(bound) != std::cmp::Ordering::Greater {
            return v;
        }
    }
}

/// Generates a random probable prime of exactly `bits` bits.
///
/// The top two bits are forced to one (so the product of two such primes has
/// exactly `2·bits` bits, as RSA needs) and the bottom bit is forced odd.
pub fn generate_prime(bits: usize, rng: &mut dyn RngSource) -> BigUint {
    assert!(bits >= 16, "prime size too small to be meaningful");
    let bytes = bits.div_ceil(8);
    loop {
        let mut buf = vec![0u8; bytes];
        rng.fill(&mut buf);
        let mut candidate = BigUint::from_bytes_be(&buf);
        // Trim to exactly `bits` bits, set the two top bits and the low bit.
        candidate = trim_bits(&candidate, bits);
        candidate.set_bit(bits - 1);
        candidate.set_bit(bits - 2);
        candidate.set_bit(0);
        if is_probable_prime(&candidate, rng) {
            return candidate;
        }
    }
}

fn trim_bits(v: &BigUint, bits: usize) -> BigUint {
    if v.bit_len() <= bits {
        return v.clone();
    }
    // Keep only the low `bits` bits.
    let mut out = BigUint::zero();
    for i in 0..bits {
        if v.bit(i) {
            out.set_bit(i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DeterministicRng;

    fn rng() -> DeterministicRng {
        DeterministicRng::from_seed(0xbeef)
    }

    #[test]
    fn small_primes_recognized() {
        let mut r = rng();
        for p in [2u64, 3, 5, 7, 11, 13, 97, 257, 65537] {
            assert!(
                is_probable_prime(&BigUint::from_u64(p), &mut r),
                "{p} should be prime"
            );
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut r = rng();
        for c in [0u64, 1, 4, 6, 9, 15, 91, 561, 65536, 1_000_000] {
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), &mut r),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool Fermat tests; Miller-Rabin must reject them.
        let mut r = rng();
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), &mut r),
                "Carmichael {c} must be rejected"
            );
        }
    }

    #[test]
    fn known_large_prime_accepted() {
        // 2^127 - 1 is a Mersenne prime.
        let p = BigUint::one().shl(127).sub(&BigUint::one());
        assert!(is_probable_prime(&p, &mut rng()));
    }

    #[test]
    fn known_large_composite_rejected() {
        // 2^128 - 1 factors as 3 * 5 * 17 * ...
        let c = BigUint::one().shl(128).sub(&BigUint::one());
        assert!(!is_probable_prime(&c, &mut rng()));
    }

    #[test]
    fn generated_prime_has_exact_bit_len() {
        let mut r = rng();
        for bits in [64usize, 128, 256] {
            let p = generate_prime(bits, &mut r);
            assert_eq!(p.bit_len(), bits);
            assert!(!p.is_even());
            // Top two bits are set, guaranteeing full product width.
            assert!(p.bit(bits - 1) && p.bit(bits - 2));
        }
    }

    #[test]
    fn generated_primes_differ() {
        let mut r = rng();
        let a = generate_prime(128, &mut r);
        let b = generate_prime(128, &mut r);
        assert_ne!(a, b);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut r1 = DeterministicRng::from_seed(77);
        let mut r2 = DeterministicRng::from_seed(77);
        assert_eq!(generate_prime(96, &mut r1), generate_prime(96, &mut r2));
    }
}
