//! Deterministic random byte source for key generation and nonces.
//!
//! The library never reads OS entropy itself; callers seed a generator
//! explicitly. This keeps every experiment in the reproduction fully
//! deterministic, mirroring the discrete-event simulator's design.
//! The construction is HMAC-DRBG-flavoured: a SHA-256 HMAC chain over a
//! counter, reseedable from caller-provided entropy.

use crate::hmac::hmac_sha256;
use crate::sha256::DIGEST_LEN;

/// A source of (pseudo)random bytes.
///
/// Implemented by [`DeterministicRng`]; applications embedding this library
/// outside the simulator can implement it over an OS entropy source.
pub trait RngSource {
    /// Fills `buf` entirely with random bytes.
    fn fill(&mut self, buf: &mut [u8]);

    /// Convenience: a random u64.
    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill(&mut b);
        u64::from_be_bytes(b)
    }

    /// Uniform value in `[0, bound)` via rejection sampling; `bound > 0`.
    fn next_u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection zone keeps the distribution exactly uniform.
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// HMAC-chain deterministic generator.
#[derive(Clone)]
pub struct DeterministicRng {
    key: [u8; DIGEST_LEN],
    counter: u64,
    /// Unconsumed bytes from the last block.
    buffer: [u8; DIGEST_LEN],
    buffered: usize,
}

impl DeterministicRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        Self::from_seed_bytes(&seed.to_be_bytes())
    }

    /// Creates a generator from arbitrary seed material.
    pub fn from_seed_bytes(seed: &[u8]) -> Self {
        DeterministicRng {
            key: hmac_sha256(b"tlc-drbg-init", seed),
            counter: 0,
            buffer: [0u8; DIGEST_LEN],
            buffered: 0,
        }
    }

    /// Mixes additional entropy into the state.
    pub fn reseed(&mut self, entropy: &[u8]) {
        let mut material = Vec::with_capacity(DIGEST_LEN + entropy.len());
        material.extend_from_slice(&self.key);
        material.extend_from_slice(entropy);
        self.key = hmac_sha256(b"tlc-drbg-reseed", &material);
        self.buffered = 0;
    }

    fn refill(&mut self) {
        self.buffer = hmac_sha256(&self.key, &self.counter.to_be_bytes());
        self.counter += 1;
        self.buffered = DIGEST_LEN;
    }
}

impl RngSource for DeterministicRng {
    fn fill(&mut self, buf: &mut [u8]) {
        let mut written = 0;
        while written < buf.len() {
            if self.buffered == 0 {
                self.refill();
            }
            let take = self.buffered.min(buf.len() - written);
            let start = DIGEST_LEN - self.buffered;
            buf[written..written + take].copy_from_slice(&self.buffer[start..start + take]);
            self.buffered -= take;
            written += take;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DeterministicRng::from_seed(42);
        let mut b = DeterministicRng::from_seed(42);
        let mut ba = [0u8; 100];
        let mut bb = [0u8; 100];
        a.fill(&mut ba);
        b.fill(&mut bb);
        assert_eq!(ba, bb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DeterministicRng::from_seed(1);
        let mut b = DeterministicRng::from_seed(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_sizes_consistent() {
        // Drawing 10+22 bytes equals drawing 32 at once.
        let mut a = DeterministicRng::from_seed(7);
        let mut b = DeterministicRng::from_seed(7);
        let mut one = [0u8; 32];
        a.fill(&mut one);
        let mut p1 = [0u8; 10];
        let mut p2 = [0u8; 22];
        b.fill(&mut p1);
        b.fill(&mut p2);
        assert_eq!(&one[..10], &p1);
        assert_eq!(&one[10..], &p2);
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = DeterministicRng::from_seed(9);
        let mut b = DeterministicRng::from_seed(9);
        b.reseed(b"extra");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_bound_is_in_range() {
        let mut r = DeterministicRng::from_seed(3);
        for bound in [1u64, 2, 7, 100, 1 << 40] {
            for _ in 0..50 {
                assert!(r.next_u64_below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_bound_hits_all_residues() {
        let mut r = DeterministicRng::from_seed(5);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[r.next_u64_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic]
    fn zero_bound_panics() {
        DeterministicRng::from_seed(1).next_u64_below(0);
    }
}
