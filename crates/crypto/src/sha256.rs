//! SHA-256 (FIPS 180-4).
//!
//! Used as the message digest inside EMSA-PKCS1-v1_5 signatures and for
//! content fingerprints in the TLC wire format. Streaming (`update`) and
//! one-shot (`digest`) interfaces are provided.

/// Output size of SHA-256 in bytes.
pub const DIGEST_LEN: usize = 32;

/// Block size of SHA-256 in bytes (relevant to HMAC).
pub const BLOCK_LEN: usize = 64;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hasher with the FIPS initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; BLOCK_LEN],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    ///
    /// Aligned full blocks are compressed straight out of `data` — the
    /// internal buffer is only touched for a partial leading block (left
    /// over from a previous `update`) and the trailing remainder, so long
    /// canonical encodings hash with no per-block copy.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        let mut blocks = rest.chunks_exact(BLOCK_LEN);
        for block in &mut blocks {
            let block: &[u8; BLOCK_LEN] = block.try_into().expect("exact chunk");
            self.compress(block);
        }
        let rest = blocks.remainder();
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finishes the hash, consuming the hasher.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update_padding(&[0x80]);
        while self.buf_len != 56 {
            self.update_padding(&[0]);
        }
        self.update_padding(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// `update` without advancing `total_len`, for the padding bytes only.
    fn update_padding(&mut self, data: &[u8]) {
        for &b in data {
            self.buf[self.buf_len] = b;
            self.buf_len += 1;
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256.
pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// One-shot SHA-256 over the concatenation of `parts`, without
/// materializing the concatenated buffer. Equivalent to
/// `digest(parts.concat())`.
pub fn digest_parts(parts: &[&[u8]]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    for part in parts {
        h.update(part);
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_string_vector() {
        assert_eq!(
            hex(&digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex(&digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_vector() {
        assert_eq!(
            hex(&digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_vector() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&digest(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for chunk_size in [1, 3, 17, 63, 64, 65, 500] {
            let mut h = Sha256::new();
            for c in data.chunks(chunk_size) {
                h.update(c);
            }
            assert_eq!(h.finalize(), digest(&data), "chunk {chunk_size}");
        }
    }

    #[test]
    fn digest_parts_matches_concat() {
        let a: Vec<u8> = (0..200u8).collect();
        let b = vec![0x5au8; 77];
        let c = b"tail";
        let mut concat = a.clone();
        concat.extend_from_slice(&b);
        concat.extend_from_slice(c);
        assert_eq!(digest_parts(&[&a, &b, c]), digest(&concat));
        assert_eq!(digest_parts(&[]), digest(b""));
    }

    #[test]
    fn boundary_lengths() {
        // Lengths around the padding boundary (55/56/64 bytes) are the
        // classic off-by-one zone for SHA implementations.
        for len in [54usize, 55, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0xa5u8; len];
            let mut h = Sha256::new();
            h.update(&data);
            let split = h.finalize();
            assert_eq!(split, digest(&data), "len {len}");
        }
    }
}
