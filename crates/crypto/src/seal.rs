//! Hybrid public-key sealing (RSAES-PKCS1-v1_5 + HMAC-DRBG stream cipher).
//!
//! §5.3.4: "the network and edge may have privacy concerns to share
//! their charging records" with a public verifier. Sealing lets a party
//! submit a PoC confidentially to a chosen verifier: only the verifier's
//! private key opens it.
//!
//! RSA-1024 can carry at most ~117 bytes directly, and a PoC is several
//! hundred, so the construction is hybrid and built entirely from this
//! crate's primitives:
//!
//! 1. a fresh 32-byte session key `k` is RSA-encrypted (EME-PKCS1-v1_5)
//!    to the recipient,
//! 2. the payload is XORed with the HMAC-DRBG keystream derived from `k`,
//! 3. an encrypt-then-MAC tag (HMAC-SHA-256 under a key derived from `k`)
//!    authenticates the ciphertext.

use crate::bigint::BigUint;
use crate::error::CryptoError;
use crate::hmac::hmac_sha256;
use crate::rng::{DeterministicRng, RngSource};
use crate::rsa::{PrivateKey, PublicKey};

/// Session-key length in bytes.
const SESSION_KEY_LEN: usize = 32;
/// HMAC tag length in bytes.
const TAG_LEN: usize = 32;

/// EME-PKCS1-v1_5 encryption: `00 02 PS 00 M` with random nonzero PS.
fn eme_encrypt(
    key: &PublicKey,
    msg: &[u8],
    rng: &mut dyn RngSource,
) -> Result<Vec<u8>, CryptoError> {
    let k = key.modulus_len();
    if msg.len() + 11 > k {
        return Err(CryptoError::MessageTooLarge);
    }
    let ps_len = k - msg.len() - 3;
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x02);
    for _ in 0..ps_len {
        // Padding bytes must be nonzero.
        loop {
            let mut b = [0u8; 1];
            rng.fill(&mut b);
            if b[0] != 0 {
                em.push(b[0]);
                break;
            }
        }
    }
    em.push(0x00);
    em.extend_from_slice(msg);
    let c = key.raw_encrypt(&BigUint::from_bytes_be(&em))?;
    c.to_bytes_be_padded(k).ok_or(CryptoError::Internal)
}

/// EME-PKCS1-v1_5 decryption.
fn eme_decrypt(key: &PrivateKey, ct: &[u8]) -> Result<Vec<u8>, CryptoError> {
    let k = key.public.modulus_len();
    if ct.len() != k {
        return Err(CryptoError::Encoding("RSA block length"));
    }
    let m = key.raw_decrypt(&BigUint::from_bytes_be(ct))?;
    let em = m.to_bytes_be_padded(k).ok_or(CryptoError::Internal)?;
    if em[0] != 0x00 || em[1] != 0x02 {
        return Err(CryptoError::Encoding("EME header"));
    }
    let sep = em[2..]
        .iter()
        .position(|&b| b == 0)
        .ok_or(CryptoError::Encoding("EME separator"))?;
    if sep < 8 {
        return Err(CryptoError::Encoding("EME padding too short"));
    }
    Ok(em[2 + sep + 1..].to_vec())
}

/// Derives the stream-cipher keystream generator from a session key.
fn keystream(session_key: &[u8]) -> DeterministicRng {
    DeterministicRng::from_seed_bytes(&[b"tlc-seal-stream", session_key].concat())
}

/// Derives the MAC key from a session key.
fn mac_key(session_key: &[u8]) -> [u8; 32] {
    hmac_sha256(session_key, b"tlc-seal-mac")
}

/// Seals `plaintext` so only `recipient` can open it.
///
/// Output layout: `RSA(session key) || ciphertext || tag`.
pub fn seal(
    recipient: &PublicKey,
    plaintext: &[u8],
    rng: &mut dyn RngSource,
) -> Result<Vec<u8>, CryptoError> {
    let mut session = [0u8; SESSION_KEY_LEN];
    rng.fill(&mut session);
    let rsa_block = eme_encrypt(recipient, &session, rng)?;

    let mut ks = keystream(&session);
    let mut ct = plaintext.to_vec();
    let mut pad = vec![0u8; ct.len()];
    ks.fill(&mut pad);
    for (c, p) in ct.iter_mut().zip(pad.iter()) {
        *c ^= p;
    }
    let tag = hmac_sha256(&mac_key(&session), &ct);

    let mut out = Vec::with_capacity(rsa_block.len() + ct.len() + TAG_LEN);
    out.extend_from_slice(&rsa_block);
    out.extend_from_slice(&ct);
    out.extend_from_slice(&tag);
    Ok(out)
}

/// Opens a sealed blob with the recipient's private key, verifying the
/// authenticity tag before returning the plaintext.
pub fn open(recipient: &PrivateKey, sealed: &[u8]) -> Result<Vec<u8>, CryptoError> {
    let k = recipient.public.modulus_len();
    if sealed.len() < k + TAG_LEN {
        return Err(CryptoError::Encoding("sealed blob too short"));
    }
    let (rsa_block, rest) = sealed.split_at(k);
    let (ct, tag) = rest.split_at(rest.len() - TAG_LEN);
    let session = eme_decrypt(recipient, rsa_block)?;
    if session.len() != SESSION_KEY_LEN {
        return Err(CryptoError::Encoding("session key length"));
    }
    // Encrypt-then-MAC: check the tag before touching the ciphertext.
    let expect = hmac_sha256(&mac_key(&session), ct);
    let mut acc = 0u8;
    for (a, b) in expect.iter().zip(tag.iter()) {
        acc |= a ^ b;
    }
    if acc != 0 {
        return Err(CryptoError::BadSignature);
    }
    let mut ks = keystream(&session);
    let mut pt = ct.to_vec();
    let mut pad = vec![0u8; pt.len()];
    ks.fill(&mut pad);
    for (c, p) in pt.iter_mut().zip(pad.iter()) {
        *c ^= p;
    }
    Ok(pt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::KeyPair;

    fn verifier() -> KeyPair {
        KeyPair::generate_for_seed(1024, 0x5EA1).unwrap()
    }

    #[test]
    fn seal_open_roundtrip() {
        let v = verifier();
        let mut rng = DeterministicRng::from_seed(1);
        let msg = vec![0xAB; 564]; // a PoC-sized payload
        let sealed = seal(&v.public, &msg, &mut rng).unwrap();
        assert_ne!(&sealed[128..128 + 564], &msg[..], "ciphertext differs");
        let opened = open(&v.private, &sealed).unwrap();
        assert_eq!(opened, msg);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let v = verifier();
        let mut rng = DeterministicRng::from_seed(2);
        let sealed = seal(&v.public, b"", &mut rng).unwrap();
        assert_eq!(open(&v.private, &sealed).unwrap(), b"");
    }

    #[test]
    fn wrong_recipient_cannot_open() {
        let v = verifier();
        let other = KeyPair::generate_for_seed(1024, 0x5EA2).unwrap();
        let mut rng = DeterministicRng::from_seed(3);
        let sealed = seal(&v.public, b"charging records", &mut rng).unwrap();
        assert!(open(&other.private, &sealed).is_err());
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let v = verifier();
        let mut rng = DeterministicRng::from_seed(4);
        let mut sealed = seal(&v.public, &[0x11; 200], &mut rng).unwrap();
        let mid = 128 + 100;
        sealed[mid] ^= 0x01;
        assert!(matches!(
            open(&v.private, &sealed),
            Err(CryptoError::BadSignature)
        ));
    }

    #[test]
    fn tampered_tag_rejected() {
        let v = verifier();
        let mut rng = DeterministicRng::from_seed(5);
        let mut sealed = seal(&v.public, &[0x22; 64], &mut rng).unwrap();
        let last = sealed.len() - 1;
        sealed[last] ^= 0x80;
        assert!(open(&v.private, &sealed).is_err());
    }

    #[test]
    fn fresh_session_keys_randomize_ciphertexts() {
        let v = verifier();
        let mut rng = DeterministicRng::from_seed(6);
        let a = seal(&v.public, b"same message", &mut rng).unwrap();
        let b = seal(&v.public, b"same message", &mut rng).unwrap();
        assert_ne!(a, b, "sealing must be randomized");
        assert_eq!(open(&v.private, &a).unwrap(), open(&v.private, &b).unwrap());
    }

    #[test]
    fn truncated_blob_rejected() {
        let v = verifier();
        let mut rng = DeterministicRng::from_seed(7);
        let sealed = seal(&v.public, &[0x33; 100], &mut rng).unwrap();
        for cut in [0, 64, 127, sealed.len() - TAG_LEN - 1] {
            assert!(open(&v.private, &sealed[..cut]).is_err(), "cut {cut}");
        }
    }
}
