//! Montgomery-form modular arithmetic for odd moduli.
//!
//! RSA spends nearly all its time in modular exponentiation, and the modulus
//! is always odd, so Montgomery reduction (REDC) is the standard way to
//! avoid a full division per multiplication. The context precomputes
//! `n' = -n^{-1} mod 2^64` and `R^2 mod n` (with `R = 2^{64·k}` for a
//! `k`-limb modulus) once per modulus — and is designed to be built once
//! per *key* and reused across every exponentiation (see
//! [`crate::rsa::PublicKey::mont_ctx`]).
//!
//! Two dedicated compute kernels back [`MontgomeryCtx::modpow`]:
//!
//! * [`mont_mul_to`](MontgomeryCtx) — CIOS (coarsely integrated operand
//!   scanning) multiplication into caller-provided buffers, so the
//!   exponentiation loop performs no heap allocation per operation;
//! * [`mont_sqr_to`](MontgomeryCtx) — a squaring kernel that exploits the
//!   symmetry of the cross products (`a_i·a_j == a_j·a_i`), computing the
//!   full square with roughly half the limb multiplications and then
//!   reducing it in a separate SOS (separated operand scanning) pass.
//!
//! Squarings dominate fixed-window exponentiation (four per window versus
//! at most one table multiplication), so the squaring kernel carries most
//! of the sign/verify hot path.

use crate::bigint::BigUint;
use std::cmp::Ordering;

/// Exponents at or below this bit length use left-to-right binary
/// exponentiation instead of the 4-bit window: building the 16-entry
/// window table costs 14 multiplications, which dwarfs the work for a
/// short exponent such as the RSA public exponent `e = 65537`
/// (16 squarings + 1 multiplication on the binary path).
const SMALL_EXP_BITS: usize = 32;

/// Largest limb count served by the unrolled fixed-width kernels
/// (16 limbs = the 1024-bit RSA modulus).
const MAX_FIXED_LIMBS: usize = 16;

/// Precomputed state for Montgomery arithmetic modulo an odd `n`.
pub struct MontgomeryCtx {
    /// The (odd) modulus limbs, little-endian.
    n: Vec<u64>,
    /// `-n^{-1} mod 2^64`.
    n_prime: u64,
    /// `R^2 mod n` in plain form, used to convert into Montgomery form.
    r2: Vec<u64>,
}

impl MontgomeryCtx {
    /// Builds a context; panics if the modulus is even or zero.
    pub fn new(modulus: &BigUint) -> Self {
        assert!(!modulus.is_zero(), "Montgomery modulus must be nonzero");
        assert!(!modulus.is_even(), "Montgomery modulus must be odd");
        let n = modulus.limbs.clone();
        let k = n.len();

        // n' = -n^{-1} mod 2^64 by Newton iteration: each step doubles the
        // number of correct low bits of the inverse.
        let n0 = n[0];
        let mut inv = 1u64; // inverse mod 2
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n_prime = inv.wrapping_neg();

        // R^2 mod n, with R = 2^(64k): shift-and-reduce 2^(128k).
        // Pad to k limbs: the kernels expect fixed-width operands.
        let mut r2 = BigUint::one().shl(128 * k).rem(modulus).limbs.clone();
        r2.resize(k, 0);

        MontgomeryCtx { n, n_prime, r2 }
    }

    fn k(&self) -> usize {
        self.n.len()
    }

    /// The modulus as a normalized `BigUint`.
    pub fn modulus(&self) -> BigUint {
        let mut m = BigUint {
            limbs: self.n.clone(),
        };
        normalize(&mut m);
        m
    }

    /// CIOS Montgomery multiplication into `out`: `out = a * b * R^-1 mod n`.
    ///
    /// `a`, `b`, `out` are `k`-limb little-endian slices (inputs reduced
    /// mod `n`); `t` is a `k + 2`-limb scratch buffer. `out` must not
    /// alias `a` or `b`.
    ///
    /// The RSA-relevant widths (8 limbs for a CRT prime of RSA-1024,
    /// 16 limbs for the full modulus) dispatch to fully-unrolled
    /// const-generic kernels; other widths take the generic loop.
    fn mont_mul_to(&self, a: &[u64], b: &[u64], out: &mut [u64], t: &mut [u64]) {
        match self.k() {
            8 => self.mont_mul_fixed::<8>(a, b, out),
            16 => self.mont_mul_fixed::<16>(a, b, out),
            _ => self.mont_mul_generic(a, b, out, t),
        }
    }

    /// Fixed-width FIOS kernel: `K` is a compile-time constant so the limb
    /// loop unrolls and the running product stays in registers. The
    /// multiply-accumulate and REDC passes are finely interleaved — each
    /// inner step issues two independent limb multiplications, and the
    /// intermediate never grows past `K` limbs plus a carry (the running
    /// value stays below `2n` throughout).
    fn mont_mul_fixed<const K: usize>(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        let a: &[u64; K] = a.try_into().expect("operand width");
        let b: &[u64; K] = b.try_into().expect("operand width");
        let n: &[u64; K] = self.n.as_slice().try_into().expect("modulus width");
        let mut t = [0u64; K];
        let mut t_hi = 0u64; // t[K], at most one bit
        for &ai in a {
            let ai = ai as u128;
            let cur = t[0] as u128 + ai * b[0] as u128;
            let mut c1 = cur >> 64;
            let m = (cur as u64).wrapping_mul(self.n_prime) as u128;
            // The low limb of t + ai*b + m*n is zero by construction.
            let mut c2 = (cur as u64 as u128 + m * n[0] as u128) >> 64;
            for j in 1..K {
                let cur = t[j] as u128 + ai * b[j] as u128 + c1;
                c1 = cur >> 64;
                let cur2 = cur as u64 as u128 + m * n[j] as u128 + c2;
                t[j - 1] = cur2 as u64;
                c2 = cur2 >> 64;
            }
            let cur = t_hi as u128 + c1 + c2;
            t[K - 1] = cur as u64;
            t_hi = (cur >> 64) as u64;
        }
        out.copy_from_slice(&t);
        if t_hi != 0 || cmp_limbs(out, &self.n) != Ordering::Less {
            sub_limbs_in_place(out, &self.n);
        }
    }

    /// Generic-width CIOS loop used for moduli outside the fixed kernels.
    fn mont_mul_generic(&self, a: &[u64], b: &[u64], out: &mut [u64], t: &mut [u64]) {
        let k = self.k();
        debug_assert!(a.len() == k && b.len() == k && out.len() == k && t.len() == k + 2);
        t.fill(0);
        for &ai in a {
            // t += ai * b
            let mut carry = 0u128;
            for j in 0..k {
                let cur = t[j] as u128 + ai as u128 * b[j] as u128 + carry;
                t[j] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[k] as u128 + carry;
            t[k] = cur as u64;
            t[k + 1] = (cur >> 64) as u64;

            // m = t[0] * n' mod 2^64 ; t += m * n ; t >>= 64
            let m = t[0].wrapping_mul(self.n_prime);
            let cur = t[0] as u128 + m as u128 * self.n[0] as u128;
            let mut carry = cur >> 64;
            for j in 1..k {
                let cur = t[j] as u128 + m as u128 * self.n[j] as u128 + carry;
                t[j - 1] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[k] as u128 + carry;
            t[k - 1] = cur as u64;
            t[k] = t[k + 1].wrapping_add((cur >> 64) as u64);
            t[k + 1] = 0;
        }
        // Conditional final subtraction to bring the result under n.
        out.copy_from_slice(&t[..k]);
        if t[k] != 0 || cmp_limbs(out, &self.n) != Ordering::Less {
            sub_limbs_in_place(out, &self.n);
        }
    }

    /// Montgomery squaring into `out`: `out = a^2 * R^-1 mod n`.
    ///
    /// Exploits cross-product symmetry: the off-diagonal products
    /// `a_i·a_j` (i < j) are computed once and doubled with a single
    /// 1-bit shift, then the diagonal squares are added — roughly half
    /// the limb multiplications of [`mont_mul_to`](Self). The full
    /// `2k`-limb square is then reduced with a separated REDC pass.
    ///
    /// `a` and `out` are `k`-limb slices; `t` is a `2k + 1`-limb scratch
    /// buffer. `out` must not alias `a`.
    ///
    /// Like [`mont_mul_to`](Self::mont_mul_to), the RSA widths dispatch to
    /// unrolled const-generic kernels.
    fn mont_sqr_to(&self, a: &[u64], out: &mut [u64], t: &mut [u64]) {
        match self.k() {
            8 => self.mont_sqr_fixed::<8>(a, out),
            16 => self.mont_sqr_fixed::<16>(a, out),
            _ => self.mont_sqr_generic(a, out, t),
        }
    }

    /// Fixed-width squaring kernel: same cross-product symmetry as the
    /// generic path, with compile-time loop bounds and a stack scratch
    /// buffer (sized for the largest fixed width).
    fn mont_sqr_fixed<const K: usize>(&self, a: &[u64], out: &mut [u64]) {
        const { assert!(K <= MAX_FIXED_LIMBS) };
        let a: &[u64; K] = a.try_into().expect("operand width");
        let n: &[u64; K] = self.n.as_slice().try_into().expect("modulus width");
        let mut t = [0u64; 2 * MAX_FIXED_LIMBS + 1];

        // Off-diagonal cross products a[i] * a[j] for i < j.
        for i in 0..K {
            let ai = a[i] as u128;
            let mut carry = 0u128;
            for j in (i + 1)..K {
                let cur = t[i + j] as u128 + ai * a[j] as u128 + carry;
                t[i + j] = cur as u64;
                carry = cur >> 64;
            }
            t[i + K] = carry as u64;
        }

        // Double the cross products (one whole-array 1-bit shift).
        let mut top = 0u64;
        for limb in t[..2 * K].iter_mut() {
            let new_top = *limb >> 63;
            *limb = (*limb << 1) | top;
            top = new_top;
        }
        debug_assert_eq!(top, 0, "doubled cross products fit in 2K limbs");

        // Add the diagonal squares a[i]^2 at position 2i.
        let mut carry = 0u64;
        for i in 0..K {
            let sq = a[i] as u128 * a[i] as u128;
            let (lo, hi) = (sq as u64, (sq >> 64) as u64);
            let (s0, c0) = t[2 * i].overflowing_add(lo);
            let (s0, c0b) = s0.overflowing_add(carry);
            t[2 * i] = s0;
            let mid = c0 as u64 + c0b as u64;
            let (s1, c1) = t[2 * i + 1].overflowing_add(hi);
            let (s1, c1b) = s1.overflowing_add(mid);
            t[2 * i + 1] = s1;
            carry = c1 as u64 + c1b as u64;
        }
        debug_assert_eq!(carry, 0, "a^2 fits in 2K limbs");

        // Separated REDC of the full 2K-limb square, two rows per
        // iteration: row i+1's reduction factor only needs t[i+1] after
        // row i's j ≤ 1 terms have landed, so the bulk of both rows runs
        // in one loop with two independent multiplications per step.
        const { assert!(K.is_multiple_of(2)) };
        for i in (0..K).step_by(2) {
            let m0 = t[i].wrapping_mul(self.n_prime) as u128;
            let cur = t[i] as u128 + m0 * n[0] as u128;
            let mut c0 = cur >> 64;
            let cur = t[i + 1] as u128 + m0 * n[1] as u128 + c0;
            t[i + 1] = cur as u64;
            c0 = cur >> 64;
            let m1 = t[i + 1].wrapping_mul(self.n_prime) as u128;
            let cur = t[i + 1] as u128 + m1 * n[0] as u128;
            let mut c1 = cur >> 64;
            for j in 2..K {
                let cur = t[i + j] as u128 + m0 * n[j] as u128 + c0;
                c0 = cur >> 64;
                let cur2 = cur as u64 as u128 + m1 * n[j - 1] as u128 + c1;
                t[i + j] = cur2 as u64;
                c1 = cur2 >> 64;
            }
            // Both rows' final terms land at position i+K: row i's carry
            // c0 and row i+1's last product m1*n[K-1] plus carry c1.
            // Split the additions: product + limb + one carry tops out at
            // 2^128 - 1, but a fourth term could wrap the u128.
            let cur = t[i + K] as u128 + m1 * n[K - 1] as u128 + c0;
            let cur2 = cur as u64 as u128 + c1;
            t[i + K] = cur2 as u64;
            let mut carry = (cur >> 64) + (cur2 >> 64);
            let mut idx = i + K + 1;
            while carry != 0 {
                let cur = t[idx] as u128 + carry;
                t[idx] = cur as u64;
                carry = cur >> 64;
                idx += 1;
            }
        }
        out.copy_from_slice(&t[K..2 * K]);
        if t[2 * K] != 0 || cmp_limbs(out, &self.n) != Ordering::Less {
            sub_limbs_in_place(out, &self.n);
        }
    }

    /// Generic-width squaring loop used for moduli outside the fixed
    /// kernels.
    fn mont_sqr_generic(&self, a: &[u64], out: &mut [u64], t: &mut [u64]) {
        let k = self.k();
        debug_assert!(a.len() == k && out.len() == k && t.len() == 2 * k + 1);
        t.fill(0);

        // Off-diagonal cross products a[i] * a[j] for i < j.
        for i in 0..k {
            let ai = a[i] as u128;
            let mut carry = 0u128;
            for j in (i + 1)..k {
                let cur = t[i + j] as u128 + ai * a[j] as u128 + carry;
                t[i + j] = cur as u64;
                carry = cur >> 64;
            }
            // Rows are processed in increasing i, so t[i + k] has not been
            // touched yet when row i's carry lands there.
            t[i + k] = carry as u64;
        }

        // Double the cross products (one whole-array 1-bit shift).
        let mut top = 0u64;
        for limb in t[..2 * k].iter_mut() {
            let new_top = *limb >> 63;
            *limb = (*limb << 1) | top;
            top = new_top;
        }
        debug_assert_eq!(top, 0, "doubled cross products fit in 2k limbs");

        // Add the diagonal squares a[i]^2 at position 2i.
        let mut carry = 0u64;
        for i in 0..k {
            let sq = a[i] as u128 * a[i] as u128;
            let (lo, hi) = (sq as u64, (sq >> 64) as u64);
            let (s0, c0) = t[2 * i].overflowing_add(lo);
            let (s0, c0b) = s0.overflowing_add(carry);
            t[2 * i] = s0;
            let mid = c0 as u64 + c0b as u64;
            let (s1, c1) = t[2 * i + 1].overflowing_add(hi);
            let (s1, c1b) = s1.overflowing_add(mid);
            t[2 * i + 1] = s1;
            carry = c1 as u64 + c1b as u64;
        }
        debug_assert_eq!(carry, 0, "a^2 fits in 2k limbs");

        // Separated REDC of the full 2k-limb square.
        for i in 0..k {
            let m = t[i].wrapping_mul(self.n_prime);
            let mut carry = 0u128;
            for j in 0..k {
                let cur = t[i + j] as u128 + m as u128 * self.n[j] as u128 + carry;
                t[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut idx = i + k;
            while carry != 0 {
                let cur = t[idx] as u128 + carry;
                t[idx] = cur as u64;
                carry = cur >> 64;
                idx += 1;
            }
        }
        out.copy_from_slice(&t[k..2 * k]);
        if t[2 * k] != 0 || cmp_limbs(out, &self.n) != Ordering::Less {
            sub_limbs_in_place(out, &self.n);
        }
    }

    /// Converts a plain value (reduced mod n) to Montgomery form.
    fn to_mont(&self, v: &BigUint) -> Vec<u64> {
        let k = self.k();
        let mut limbs = v.limbs.clone();
        limbs.resize(k, 0);
        let mut out = vec![0u64; k];
        let mut t = vec![0u64; k + 2];
        self.mont_mul_to(&limbs, &self.r2, &mut out, &mut t);
        out
    }

    /// Converts out of Montgomery form into a normalized `BigUint`.
    fn to_plain(&self, v: &[u64]) -> BigUint {
        let k = self.k();
        let mut one = vec![0u64; k];
        one[0] = 1;
        let mut plain = vec![0u64; k];
        let mut t = vec![0u64; k + 2];
        self.mont_mul_to(v, &one, &mut plain, &mut t);
        let mut out = BigUint { limbs: plain };
        normalize(&mut out);
        out
    }

    /// Computes `base^exp mod n`.
    ///
    /// Short exponents (≤ [`SMALL_EXP_BITS`] bits, e.g. the RSA public
    /// exponent 65537) take a left-to-right binary path that skips the
    /// window table entirely; longer exponents use sliding-window
    /// exponentiation over a table of odd powers, with the squaring
    /// kernel on the window gaps.
    pub fn modpow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let modulus = self.modulus();
        if modulus.is_one() {
            return BigUint::zero();
        }
        if exp.is_zero() {
            return BigUint::one();
        }
        let k = self.k();
        // CRT callers pass already-reduced bases; skip the division then.
        let base = if base.cmp_to(&modulus) == Ordering::Less {
            base.clone()
        } else {
            base.rem(&modulus)
        };
        let base_m = self.to_mont(&base);
        let bits = exp.bit_len();

        let mut acc = vec![0u64; k];
        let mut tmp = vec![0u64; k];
        let mut mul_t = vec![0u64; k + 2];
        let mut sqr_t = vec![0u64; 2 * k + 1];

        if bits <= SMALL_EXP_BITS {
            // Left-to-right binary: bits-1 squarings plus one
            // multiplication per set bit below the top.
            acc.copy_from_slice(&base_m);
            for i in (0..bits - 1).rev() {
                self.mont_sqr_to(&acc, &mut tmp, &mut sqr_t);
                std::mem::swap(&mut acc, &mut tmp);
                if exp.bit(i) {
                    self.mont_mul_to(&acc, &base_m, &mut tmp, &mut mul_t);
                    std::mem::swap(&mut acc, &mut tmp);
                }
            }
            return self.to_plain(&acc);
        }

        // Sliding windows of up to `w` bits: table holds only the odd
        // powers (a window always starts and ends on a set bit), so a
        // 5-bit window needs 16 entries and long exponents average one
        // multiplication per ~w+1 bits instead of one per 4.
        let w = if bits > 160 { 5 } else { 4 };
        let half = 1usize << (w - 1);

        // table[i] = base^(2i+1) in Montgomery form.
        let mut base2 = vec![0u64; k];
        self.mont_sqr_to(&base_m, &mut base2, &mut sqr_t);
        let mut table: Vec<Vec<u64>> = Vec::with_capacity(half);
        table.push(base_m);
        for i in 1..half {
            let mut next = vec![0u64; k];
            self.mont_mul_to(&table[i - 1], &base2, &mut next, &mut mul_t);
            table.push(next);
        }

        let mut started = false;
        let mut i = bits as isize - 1;
        while i >= 0 {
            if !exp.bit(i as usize) {
                if started {
                    self.mont_sqr_to(&acc, &mut tmp, &mut sqr_t);
                    std::mem::swap(&mut acc, &mut tmp);
                }
                i -= 1;
                continue;
            }
            // Widest window [l, i] (≤ w bits) ending on a set bit, so the
            // digit is odd and indexes the half-size table.
            let mut l = (i - w as isize + 1).max(0);
            while !exp.bit(l as usize) {
                l += 1;
            }
            if started {
                for _ in 0..(i - l + 1) {
                    self.mont_sqr_to(&acc, &mut tmp, &mut sqr_t);
                    std::mem::swap(&mut acc, &mut tmp);
                }
            }
            let mut digit = 0usize;
            for b in (l..=i).rev() {
                digit = (digit << 1) | exp.bit(b as usize) as usize;
            }
            if started {
                self.mont_mul_to(&acc, &table[digit >> 1], &mut tmp, &mut mul_t);
                std::mem::swap(&mut acc, &mut tmp);
            } else {
                acc.copy_from_slice(&table[digit >> 1]);
                started = true;
            }
            i = l - 1;
        }
        debug_assert!(started, "nonzero exponent has a set top bit");
        self.to_plain(&acc)
    }
}

fn cmp_limbs(a: &[u64], b: &[u64]) -> Ordering {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        match x.cmp(y) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

fn sub_limbs_in_place(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
}

fn normalize(v: &mut BigUint) {
    while v.limbs.last() == Some(&0) {
        v.limbs.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn matches_simple_modpow_small() {
        let m = big(1_000_000_007); // odd prime
        let ctx = MontgomeryCtx::new(&m);
        for (b, e) in [
            (2u128, 10u128),
            (3, 100),
            (999_999_999, 12345),
            (1, 0),
            (0, 5),
        ] {
            let got = ctx.modpow(&big(b), &big(e));
            // Reference: square-and-multiply with u128 arithmetic.
            let mut expect = 1u128;
            let mut base = b % 1_000_000_007;
            let mut exp = e;
            while exp > 0 {
                if exp & 1 == 1 {
                    expect = expect * base % 1_000_000_007;
                }
                base = base * base % 1_000_000_007;
                exp >>= 1;
            }
            assert_eq!(got, big(expect), "base={b} exp={e}");
        }
    }

    #[test]
    fn matches_multi_limb_fermat() {
        // p = 2^89 - 1 is a Mersenne prime spanning two limbs.
        let p = BigUint::one().shl(89).sub(&BigUint::one());
        let ctx = MontgomeryCtx::new(&p);
        let a = BigUint::from_bytes_be(&[0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc]);
        let p_minus_1 = p.sub(&BigUint::one());
        assert_eq!(ctx.modpow(&a, &p_minus_1), BigUint::one());
    }

    #[test]
    fn exponent_zero_and_one() {
        let m = big(0xffff_ffff_ffff_fff1); // odd
        let ctx = MontgomeryCtx::new(&m);
        let a = big(0x1234_5678);
        assert_eq!(ctx.modpow(&a, &BigUint::zero()), BigUint::one());
        assert_eq!(ctx.modpow(&a, &BigUint::one()), a);
    }

    #[test]
    fn long_exponents_cross_window_path() {
        // Exponents beyond SMALL_EXP_BITS exercise the window table;
        // compare against the even-modulus-capable schoolbook fallback by
        // checking Fermat on a two-limb prime with a long exponent.
        let p = BigUint::one().shl(89).sub(&BigUint::one());
        let ctx = MontgomeryCtx::new(&p);
        // a^(2(p-1)) = 1 as well; 2(p-1) is 90 bits -> window path.
        let e = p.sub(&BigUint::one()).shl(1);
        let a = big(0xdead_beef_cafe);
        assert_eq!(ctx.modpow(&a, &e), BigUint::one());
    }

    #[test]
    fn squaring_kernel_matches_mul_kernel() {
        // a^2 computed by the squaring kernel must equal a*a from the
        // general kernel for values exercising carries in every limb.
        let m = BigUint::from_bytes_be(&[0xff; 33]).sub(&BigUint::from_u64(18)); // odd, 5 limbs
        assert!(!m.is_even());
        let ctx = MontgomeryCtx::new(&m);
        let k = ctx.k();
        for seed in [0x01u8, 0x7f, 0xaa, 0xfe] {
            let a = BigUint::from_bytes_be(&[seed; 31]).rem(&m);
            let mut a_limbs = a.limbs.clone();
            a_limbs.resize(k, 0);
            let mut sq = vec![0u64; k];
            let mut sq_t = vec![0u64; 2 * k + 1];
            ctx.mont_sqr_to(&a_limbs, &mut sq, &mut sq_t);
            let mut mu = vec![0u64; k];
            let mut mu_t = vec![0u64; k + 2];
            ctx.mont_mul_to(&a_limbs, &a_limbs.clone(), &mut mu, &mut mu_t);
            assert_eq!(sq, mu, "seed {seed:#x}");
        }
    }

    #[test]
    #[should_panic]
    fn even_modulus_rejected() {
        MontgomeryCtx::new(&big(100));
    }

    #[test]
    fn large_base_reduced_first() {
        let m = big(101);
        let ctx = MontgomeryCtx::new(&m);
        // 1000 mod 101 = 91; 91^2 mod 101 = 8281 mod 101 = 100... compute: 101*81=8181, 8281-8181=100.
        assert_eq!(ctx.modpow(&big(1000), &big(2)), big(100));
    }
}
