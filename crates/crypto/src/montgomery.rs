//! Montgomery-form modular arithmetic for odd moduli.
//!
//! RSA spends nearly all its time in modular exponentiation, and the modulus
//! is always odd, so Montgomery reduction (REDC) is the standard way to
//! avoid a full division per multiplication. The context precomputes
//! `n' = -n^{-1} mod 2^64` and `R^2 mod n` (with `R = 2^{64·k}` for a
//! `k`-limb modulus) once per modulus — and is designed to be built once
//! per *key* and reused across every exponentiation (see
//! [`crate::rsa::PublicKey::mont_ctx`]).
//!
//! Two dedicated compute kernels back [`MontgomeryCtx::modpow`]:
//!
//! * [`mont_mul_to`](MontgomeryCtx) — CIOS (coarsely integrated operand
//!   scanning) multiplication into caller-provided buffers, so the
//!   exponentiation loop performs no heap allocation per operation;
//! * [`mont_sqr_to`](MontgomeryCtx) — a squaring kernel that exploits the
//!   symmetry of the cross products (`a_i·a_j == a_j·a_i`), computing the
//!   full square with roughly half the limb multiplications and then
//!   reducing it in a separate SOS (separated operand scanning) pass.
//!
//! Squarings dominate fixed-window exponentiation (four per window versus
//! at most one table multiplication), so the squaring kernel carries most
//! of the sign/verify hot path.
//!
//! For verification workloads, [`MontgomeryCtx::modpow_batch`] runs up to
//! [`MontgomeryCtx::BATCH_LANES`] independent exponentiations in lockstep
//! through interleaved variants of the fixed-width kernels: every inner
//! step issues one multiply-accumulate per lane, and the lanes' carry
//! chains are independent, so an out-of-order core overlaps their
//! latencies instead of stalling on a single dependent chain.
//!
//! # Constant-time posture (ROADMAP audit)
//!
//! These kernels are **deliberately not constant time**:
//!
//! * the final REDC step uses a *conditional* subtraction
//!   (`if t >= n { t -= n }`) whose branch depends on intermediate values;
//! * the short-exponent binary ladder and the sliding-window scan in
//!   [`MontgomeryCtx::modpow`] branch on exponent bits;
//! * the carry-propagation tails in the separated-REDC squaring path run
//!   a data-dependent number of iterations.
//!
//! This is an explicit non-goal for this reproduction, not an oversight.
//! Private-key operations execute inside the charging parties' own
//! simulated endpoints — there is no co-resident adversary taking timing
//! measurements — and the hot path this crate optimises, third-party PoC
//! *verification*, touches only public inputs (public keys, signatures,
//! canonical message bytes), where data-dependent timing reveals nothing
//! secret. A deployment signing with real subscriber keys would need a
//! hardened ladder (fixed-window with masked table access, branchless
//! final subtraction, constant-trip carry loops); see DESIGN.md §8 for
//! the deployment note.

use crate::bigint::BigUint;
use std::cmp::Ordering;

/// Exponents at or below this bit length use left-to-right binary
/// exponentiation instead of the 4-bit window: building the 16-entry
/// window table costs 14 multiplications, which dwarfs the work for a
/// short exponent such as the RSA public exponent `e = 65537`
/// (16 squarings + 1 multiplication on the binary path).
const SMALL_EXP_BITS: usize = 32;

/// Largest limb count served by the unrolled fixed-width kernels
/// (16 limbs = the 1024-bit RSA modulus).
const MAX_FIXED_LIMBS: usize = 16;

/// Precomputed state for Montgomery arithmetic modulo an odd `n`.
pub struct MontgomeryCtx {
    /// The (odd) modulus limbs, little-endian.
    n: Vec<u64>,
    /// `-n^{-1} mod 2^64`.
    n_prime: u64,
    /// `R^2 mod n` in plain form, used to convert into Montgomery form.
    r2: Vec<u64>,
    /// Lazily-built constants for the AVX-512 IFMA batch path (1024-bit
    /// moduli on capable CPUs only; `None` once probed elsewhere).
    ifma: std::sync::OnceLock<Option<crate::ifma::IfmaCtx1024>>,
}

impl MontgomeryCtx {
    /// Builds a context; panics if the modulus is even or zero.
    pub fn new(modulus: &BigUint) -> Self {
        assert!(!modulus.is_zero(), "Montgomery modulus must be nonzero");
        assert!(!modulus.is_even(), "Montgomery modulus must be odd");
        let n = modulus.limbs.clone();
        let k = n.len();

        // n' = -n^{-1} mod 2^64 by Newton iteration: each step doubles the
        // number of correct low bits of the inverse.
        let n0 = n[0];
        let mut inv = 1u64; // inverse mod 2
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n_prime = inv.wrapping_neg();

        // R^2 mod n, with R = 2^(64k): shift-and-reduce 2^(128k).
        // Pad to k limbs: the kernels expect fixed-width operands.
        let mut r2 = BigUint::one().shl(128 * k).rem(modulus).limbs.clone();
        r2.resize(k, 0);

        MontgomeryCtx {
            n,
            n_prime,
            r2,
            ifma: std::sync::OnceLock::new(),
        }
    }

    /// The IFMA batch context for this modulus, built on first use;
    /// `None` when the modulus is not 1024-bit or the CPU lacks AVX-512
    /// IFMA.
    fn ifma_ctx(&self) -> Option<&crate::ifma::IfmaCtx1024> {
        self.ifma
            .get_or_init(|| {
                if self.k() == 16 && crate::ifma::available() {
                    Some(crate::ifma::IfmaCtx1024::new(&self.modulus(), self.n_prime))
                } else {
                    None
                }
            })
            .as_ref()
    }

    /// Human-readable name of the kernel [`Self::modpow_batch`] uses for
    /// full-width batches on this host (for benchmark reports).
    pub fn batch_kernel(&self) -> &'static str {
        if self.ifma_ctx().is_some() {
            "avx512-ifma-8-lane"
        } else {
            "interleaved-scalar"
        }
    }

    fn k(&self) -> usize {
        self.n.len()
    }

    /// The modulus as a normalized `BigUint`.
    pub fn modulus(&self) -> BigUint {
        let mut m = BigUint {
            limbs: self.n.clone(),
        };
        normalize(&mut m);
        m
    }

    /// CIOS Montgomery multiplication into `out`: `out = a * b * R^-1 mod n`.
    ///
    /// `a`, `b`, `out` are `k`-limb little-endian slices (inputs reduced
    /// mod `n`); `t` is a `k + 2`-limb scratch buffer. `out` must not
    /// alias `a` or `b`.
    ///
    /// The RSA-relevant widths (8 limbs for a CRT prime of RSA-1024,
    /// 16 limbs for the full modulus) dispatch to fully-unrolled
    /// const-generic kernels; other widths take the generic loop.
    fn mont_mul_to(&self, a: &[u64], b: &[u64], out: &mut [u64], t: &mut [u64]) {
        match self.k() {
            8 => self.mont_mul_fixed::<8>(a, b, out),
            16 => self.mont_mul_fixed::<16>(a, b, out),
            _ => self.mont_mul_generic(a, b, out, t),
        }
    }

    /// Fixed-width FIOS kernel: `K` is a compile-time constant so the limb
    /// loop unrolls and the running product stays in registers. The
    /// multiply-accumulate and REDC passes are finely interleaved — each
    /// inner step issues two independent limb multiplications, and the
    /// intermediate never grows past `K` limbs plus a carry (the running
    /// value stays below `2n` throughout).
    fn mont_mul_fixed<const K: usize>(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        let a: &[u64; K] = a.try_into().expect("operand width");
        let b: &[u64; K] = b.try_into().expect("operand width");
        let n: &[u64; K] = self.n.as_slice().try_into().expect("modulus width");
        let mut t = [0u64; K];
        let mut t_hi = 0u64; // t[K], at most one bit
        for &ai in a {
            let ai = ai as u128;
            let cur = t[0] as u128 + ai * b[0] as u128;
            let mut c1 = cur >> 64;
            let m = (cur as u64).wrapping_mul(self.n_prime) as u128;
            // The low limb of t + ai*b + m*n is zero by construction.
            let mut c2 = (cur as u64 as u128 + m * n[0] as u128) >> 64;
            for j in 1..K {
                let cur = t[j] as u128 + ai * b[j] as u128 + c1;
                c1 = cur >> 64;
                let cur2 = cur as u64 as u128 + m * n[j] as u128 + c2;
                t[j - 1] = cur2 as u64;
                c2 = cur2 >> 64;
            }
            let cur = t_hi as u128 + c1 + c2;
            t[K - 1] = cur as u64;
            t_hi = (cur >> 64) as u64;
        }
        out.copy_from_slice(&t);
        if t_hi != 0 || cmp_limbs(out, &self.n) != Ordering::Less {
            sub_limbs_in_place(out, &self.n);
        }
    }

    /// Generic-width CIOS loop used for moduli outside the fixed kernels.
    fn mont_mul_generic(&self, a: &[u64], b: &[u64], out: &mut [u64], t: &mut [u64]) {
        let k = self.k();
        debug_assert!(a.len() == k && b.len() == k && out.len() == k && t.len() == k + 2);
        t.fill(0);
        for &ai in a {
            // t += ai * b
            let mut carry = 0u128;
            for j in 0..k {
                let cur = t[j] as u128 + ai as u128 * b[j] as u128 + carry;
                t[j] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[k] as u128 + carry;
            t[k] = cur as u64;
            t[k + 1] = (cur >> 64) as u64;

            // m = t[0] * n' mod 2^64 ; t += m * n ; t >>= 64
            let m = t[0].wrapping_mul(self.n_prime);
            let cur = t[0] as u128 + m as u128 * self.n[0] as u128;
            let mut carry = cur >> 64;
            for j in 1..k {
                let cur = t[j] as u128 + m as u128 * self.n[j] as u128 + carry;
                t[j - 1] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[k] as u128 + carry;
            t[k - 1] = cur as u64;
            t[k] = t[k + 1].wrapping_add((cur >> 64) as u64);
            t[k + 1] = 0;
        }
        // Conditional final subtraction to bring the result under n.
        out.copy_from_slice(&t[..k]);
        if t[k] != 0 || cmp_limbs(out, &self.n) != Ordering::Less {
            sub_limbs_in_place(out, &self.n);
        }
    }

    /// Montgomery squaring into `out`: `out = a^2 * R^-1 mod n`.
    ///
    /// Exploits cross-product symmetry: the off-diagonal products
    /// `a_i·a_j` (i < j) are computed once and doubled with a single
    /// 1-bit shift, then the diagonal squares are added — roughly half
    /// the limb multiplications of [`mont_mul_to`](Self). The full
    /// `2k`-limb square is then reduced with a separated REDC pass.
    ///
    /// `a` and `out` are `k`-limb slices; `t` is a `2k + 1`-limb scratch
    /// buffer. `out` must not alias `a`.
    ///
    /// Like [`mont_mul_to`](Self::mont_mul_to), the RSA widths dispatch to
    /// unrolled const-generic kernels.
    fn mont_sqr_to(&self, a: &[u64], out: &mut [u64], t: &mut [u64]) {
        match self.k() {
            8 => self.mont_sqr_fixed::<8>(a, out),
            16 => self.mont_sqr_fixed::<16>(a, out),
            _ => self.mont_sqr_generic(a, out, t),
        }
    }

    /// Fixed-width squaring kernel: same cross-product symmetry as the
    /// generic path, with compile-time loop bounds and a stack scratch
    /// buffer (sized for the largest fixed width).
    fn mont_sqr_fixed<const K: usize>(&self, a: &[u64], out: &mut [u64]) {
        const { assert!(K <= MAX_FIXED_LIMBS) };
        let a: &[u64; K] = a.try_into().expect("operand width");
        let n: &[u64; K] = self.n.as_slice().try_into().expect("modulus width");
        let mut t = [0u64; 2 * MAX_FIXED_LIMBS + 1];

        // Off-diagonal cross products a[i] * a[j] for i < j.
        for i in 0..K {
            let ai = a[i] as u128;
            let mut carry = 0u128;
            for j in (i + 1)..K {
                let cur = t[i + j] as u128 + ai * a[j] as u128 + carry;
                t[i + j] = cur as u64;
                carry = cur >> 64;
            }
            t[i + K] = carry as u64;
        }

        // Double the cross products (one whole-array 1-bit shift).
        let mut top = 0u64;
        for limb in t[..2 * K].iter_mut() {
            let new_top = *limb >> 63;
            *limb = (*limb << 1) | top;
            top = new_top;
        }
        debug_assert_eq!(top, 0, "doubled cross products fit in 2K limbs");

        // Add the diagonal squares a[i]^2 at position 2i.
        let mut carry = 0u64;
        for i in 0..K {
            let sq = a[i] as u128 * a[i] as u128;
            let (lo, hi) = (sq as u64, (sq >> 64) as u64);
            let (s0, c0) = t[2 * i].overflowing_add(lo);
            let (s0, c0b) = s0.overflowing_add(carry);
            t[2 * i] = s0;
            let mid = c0 as u64 + c0b as u64;
            let (s1, c1) = t[2 * i + 1].overflowing_add(hi);
            let (s1, c1b) = s1.overflowing_add(mid);
            t[2 * i + 1] = s1;
            carry = c1 as u64 + c1b as u64;
        }
        debug_assert_eq!(carry, 0, "a^2 fits in 2K limbs");

        // Separated REDC of the full 2K-limb square, two rows per
        // iteration: row i+1's reduction factor only needs t[i+1] after
        // row i's j ≤ 1 terms have landed, so the bulk of both rows runs
        // in one loop with two independent multiplications per step.
        const { assert!(K.is_multiple_of(2)) };
        for i in (0..K).step_by(2) {
            let m0 = t[i].wrapping_mul(self.n_prime) as u128;
            let cur = t[i] as u128 + m0 * n[0] as u128;
            let mut c0 = cur >> 64;
            let cur = t[i + 1] as u128 + m0 * n[1] as u128 + c0;
            t[i + 1] = cur as u64;
            c0 = cur >> 64;
            let m1 = t[i + 1].wrapping_mul(self.n_prime) as u128;
            let cur = t[i + 1] as u128 + m1 * n[0] as u128;
            let mut c1 = cur >> 64;
            for j in 2..K {
                let cur = t[i + j] as u128 + m0 * n[j] as u128 + c0;
                c0 = cur >> 64;
                let cur2 = cur as u64 as u128 + m1 * n[j - 1] as u128 + c1;
                t[i + j] = cur2 as u64;
                c1 = cur2 >> 64;
            }
            // Both rows' final terms land at position i+K: row i's carry
            // c0 and row i+1's last product m1*n[K-1] plus carry c1.
            // Split the additions: product + limb + one carry tops out at
            // 2^128 - 1, but a fourth term could wrap the u128.
            let cur = t[i + K] as u128 + m1 * n[K - 1] as u128 + c0;
            let cur2 = cur as u64 as u128 + c1;
            t[i + K] = cur2 as u64;
            let mut carry = (cur >> 64) + (cur2 >> 64);
            let mut idx = i + K + 1;
            while carry != 0 {
                let cur = t[idx] as u128 + carry;
                t[idx] = cur as u64;
                carry = cur >> 64;
                idx += 1;
            }
        }
        out.copy_from_slice(&t[K..2 * K]);
        if t[2 * K] != 0 || cmp_limbs(out, &self.n) != Ordering::Less {
            sub_limbs_in_place(out, &self.n);
        }
    }

    /// Generic-width squaring loop used for moduli outside the fixed
    /// kernels.
    fn mont_sqr_generic(&self, a: &[u64], out: &mut [u64], t: &mut [u64]) {
        let k = self.k();
        debug_assert!(a.len() == k && out.len() == k && t.len() == 2 * k + 1);
        t.fill(0);

        // Off-diagonal cross products a[i] * a[j] for i < j.
        for i in 0..k {
            let ai = a[i] as u128;
            let mut carry = 0u128;
            for j in (i + 1)..k {
                let cur = t[i + j] as u128 + ai * a[j] as u128 + carry;
                t[i + j] = cur as u64;
                carry = cur >> 64;
            }
            // Rows are processed in increasing i, so t[i + k] has not been
            // touched yet when row i's carry lands there.
            t[i + k] = carry as u64;
        }

        // Double the cross products (one whole-array 1-bit shift).
        let mut top = 0u64;
        for limb in t[..2 * k].iter_mut() {
            let new_top = *limb >> 63;
            *limb = (*limb << 1) | top;
            top = new_top;
        }
        debug_assert_eq!(top, 0, "doubled cross products fit in 2k limbs");

        // Add the diagonal squares a[i]^2 at position 2i.
        let mut carry = 0u64;
        for i in 0..k {
            let sq = a[i] as u128 * a[i] as u128;
            let (lo, hi) = (sq as u64, (sq >> 64) as u64);
            let (s0, c0) = t[2 * i].overflowing_add(lo);
            let (s0, c0b) = s0.overflowing_add(carry);
            t[2 * i] = s0;
            let mid = c0 as u64 + c0b as u64;
            let (s1, c1) = t[2 * i + 1].overflowing_add(hi);
            let (s1, c1b) = s1.overflowing_add(mid);
            t[2 * i + 1] = s1;
            carry = c1 as u64 + c1b as u64;
        }
        debug_assert_eq!(carry, 0, "a^2 fits in 2k limbs");

        // Separated REDC of the full 2k-limb square.
        for i in 0..k {
            let m = t[i].wrapping_mul(self.n_prime);
            let mut carry = 0u128;
            for j in 0..k {
                let cur = t[i + j] as u128 + m as u128 * self.n[j] as u128 + carry;
                t[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut idx = i + k;
            while carry != 0 {
                let cur = t[idx] as u128 + carry;
                t[idx] = cur as u64;
                carry = cur >> 64;
                idx += 1;
            }
        }
        out.copy_from_slice(&t[k..2 * k]);
        if t[2 * k] != 0 || cmp_limbs(out, &self.n) != Ordering::Less {
            sub_limbs_in_place(out, &self.n);
        }
    }

    /// Converts a plain value (reduced mod n) to Montgomery form.
    fn to_mont(&self, v: &BigUint) -> Vec<u64> {
        let k = self.k();
        let mut limbs = v.limbs.clone();
        limbs.resize(k, 0);
        let mut out = vec![0u64; k];
        let mut t = vec![0u64; k + 2];
        self.mont_mul_to(&limbs, &self.r2, &mut out, &mut t);
        out
    }

    /// Converts out of Montgomery form into a normalized `BigUint`.
    fn to_plain(&self, v: &[u64]) -> BigUint {
        let k = self.k();
        let mut one = vec![0u64; k];
        one[0] = 1;
        let mut plain = vec![0u64; k];
        let mut t = vec![0u64; k + 2];
        self.mont_mul_to(v, &one, &mut plain, &mut t);
        let mut out = BigUint { limbs: plain };
        normalize(&mut out);
        out
    }

    /// Computes `base^exp mod n`.
    ///
    /// Short exponents (≤ [`SMALL_EXP_BITS`] bits, e.g. the RSA public
    /// exponent 65537) take a left-to-right binary path that skips the
    /// window table entirely; longer exponents use sliding-window
    /// exponentiation over a table of odd powers, with the squaring
    /// kernel on the window gaps.
    pub fn modpow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let modulus = self.modulus();
        if modulus.is_one() {
            return BigUint::zero();
        }
        if exp.is_zero() {
            return BigUint::one();
        }
        let k = self.k();
        // CRT callers pass already-reduced bases; skip the division then.
        let base = if base.cmp_to(&modulus) == Ordering::Less {
            base.clone()
        } else {
            base.rem(&modulus)
        };
        let base_m = self.to_mont(&base);
        let bits = exp.bit_len();

        let mut acc = vec![0u64; k];
        let mut tmp = vec![0u64; k];
        let mut mul_t = vec![0u64; k + 2];
        let mut sqr_t = vec![0u64; 2 * k + 1];

        if bits <= SMALL_EXP_BITS {
            // Left-to-right binary: bits-1 squarings plus one
            // multiplication per set bit below the top.
            acc.copy_from_slice(&base_m);
            for i in (0..bits - 1).rev() {
                self.mont_sqr_to(&acc, &mut tmp, &mut sqr_t);
                std::mem::swap(&mut acc, &mut tmp);
                if exp.bit(i) {
                    self.mont_mul_to(&acc, &base_m, &mut tmp, &mut mul_t);
                    std::mem::swap(&mut acc, &mut tmp);
                }
            }
            return self.to_plain(&acc);
        }

        // Sliding windows of up to `w` bits: table holds only the odd
        // powers (a window always starts and ends on a set bit), so a
        // 5-bit window needs 16 entries and long exponents average one
        // multiplication per ~w+1 bits instead of one per 4.
        let w = if bits > 160 { 5 } else { 4 };
        let half = 1usize << (w - 1);

        // table[i] = base^(2i+1) in Montgomery form.
        let mut base2 = vec![0u64; k];
        self.mont_sqr_to(&base_m, &mut base2, &mut sqr_t);
        let mut table: Vec<Vec<u64>> = Vec::with_capacity(half);
        table.push(base_m);
        for i in 1..half {
            let mut next = vec![0u64; k];
            self.mont_mul_to(&table[i - 1], &base2, &mut next, &mut mul_t);
            table.push(next);
        }

        let mut started = false;
        let mut i = bits as isize - 1;
        while i >= 0 {
            if !exp.bit(i as usize) {
                if started {
                    self.mont_sqr_to(&acc, &mut tmp, &mut sqr_t);
                    std::mem::swap(&mut acc, &mut tmp);
                }
                i -= 1;
                continue;
            }
            // Widest window [l, i] (≤ w bits) ending on a set bit, so the
            // digit is odd and indexes the half-size table.
            let mut l = (i - w as isize + 1).max(0);
            while !exp.bit(l as usize) {
                l += 1;
            }
            if started {
                for _ in 0..(i - l + 1) {
                    self.mont_sqr_to(&acc, &mut tmp, &mut sqr_t);
                    std::mem::swap(&mut acc, &mut tmp);
                }
            }
            let mut digit = 0usize;
            for b in (l..=i).rev() {
                digit = (digit << 1) | exp.bit(b as usize) as usize;
            }
            if started {
                self.mont_mul_to(&acc, &table[digit >> 1], &mut tmp, &mut mul_t);
                std::mem::swap(&mut acc, &mut tmp);
            } else {
                acc.copy_from_slice(&table[digit >> 1]);
                started = true;
            }
            i = l - 1;
        }
        debug_assert!(started, "nonzero exponent has a set top bit");
        self.to_plain(&acc)
    }

    /// Number of independent exponentiations interleaved per kernel call
    /// by [`Self::modpow_batch`]. Each lane carries its own accumulator
    /// and carry chains through the shared limb loops, so the superscalar
    /// core overlaps the lanes' multiply latencies.
    pub const BATCH_LANES: usize = 2;

    /// Computes `base^exp mod n` for every element of `bases`, bit-for-bit
    /// identical to calling [`Self::modpow`] per element.
    ///
    /// Short exponents (the RSA verification case, `e = 65537`) at the
    /// fixed RSA widths batch through the fastest kernel the host offers:
    /// 8-lane AVX-512 IFMA for 1024-bit moduli on capable CPUs (see
    /// [`crate::ifma`]), otherwise [`Self::BATCH_LANES`]-way interleaved
    /// scalar kernels. Remainders and every other shape fall back to the
    /// scalar path, so callers never need to special-case batch size or
    /// modulus width.
    pub fn modpow_batch(&self, bases: &[BigUint], exp: &BigUint) -> Vec<BigUint> {
        let bits = exp.bit_len();
        let batchable = bases.len() >= 2 && (1..=SMALL_EXP_BITS).contains(&bits);
        match (batchable, self.k()) {
            (true, 8) => self.modpow_batch_fixed::<8>(bases, exp),
            (true, 16) => match self.ifma_ctx() {
                Some(_) => self.modpow_batch_ifma(bases, exp),
                None => self.modpow_batch_fixed::<16>(bases, exp),
            },
            _ => bases.iter().map(|b| self.modpow(b, exp)).collect(),
        }
    }

    /// IFMA batch path: full 8-lane blocks go through the AVX-512 kernel;
    /// the tail reuses the interleaved scalar kernels.
    fn modpow_batch_ifma(&self, bases: &[BigUint], exp: &BigUint) -> Vec<BigUint> {
        let ifma = self.ifma_ctx().expect("checked by dispatcher");
        let modulus = self.modulus();
        let mut out = Vec::with_capacity(bases.len());
        let mut chunks = bases.chunks_exact(crate::ifma::IFMA_LANES);
        for chunk in &mut chunks {
            let reduced: Vec<BigUint> = chunk
                .iter()
                .map(|b| {
                    if b.cmp_to(&modulus) == Ordering::Less {
                        b.clone()
                    } else {
                        b.rem(&modulus)
                    }
                })
                .collect();
            out.extend(ifma.modpow8(&reduced, exp));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            out.extend(self.modpow_batch_fixed::<16>(rem, exp));
        }
        out
    }

    fn modpow_batch_fixed<const K: usize>(&self, bases: &[BigUint], exp: &BigUint) -> Vec<BigUint> {
        const L: usize = MontgomeryCtx::BATCH_LANES;
        let mut out = Vec::with_capacity(bases.len());
        let mut chunks = bases.chunks_exact(L);
        for chunk in &mut chunks {
            self.modpow_lanes::<K, L>(chunk, exp, &mut out);
        }
        let rem = chunks.remainder();
        if rem.len() >= 2 {
            let (pair, rest) = rem.split_at(2);
            self.modpow_lanes::<K, 2>(pair, exp, &mut out);
            out.extend(rest.iter().map(|b| self.modpow(b, exp)));
        } else {
            out.extend(rem.iter().map(|b| self.modpow(b, exp)));
        }
        out
    }

    /// `L`-lane left-to-right binary exponentiation: the lane analogue of
    /// the short-exponent path in [`Self::modpow`], pushing one result per
    /// base onto `out`.
    fn modpow_lanes<const K: usize, const L: usize>(
        &self,
        bases: &[BigUint],
        exp: &BigUint,
        out: &mut Vec<BigUint>,
    ) {
        debug_assert_eq!(bases.len(), L);
        debug_assert_eq!(self.k(), K);
        let modulus = self.modulus();
        let bits = exp.bit_len();
        debug_assert!((1..=SMALL_EXP_BITS).contains(&bits));

        let r2: &[u64; K] = self.r2.as_slice().try_into().expect("r2 width");
        let mut base_p = [[0u64; K]; L];
        let mut r2s = [[0u64; K]; L];
        for l in 0..L {
            let reduced = if bases[l].cmp_to(&modulus) == Ordering::Less {
                bases[l].clone()
            } else {
                bases[l].rem(&modulus)
            };
            for (dst, src) in base_p[l].iter_mut().zip(reduced.limbs.iter()) {
                *dst = *src;
            }
            r2s[l] = *r2;
        }

        let mut base_m = [[0u64; K]; L];
        self.mont_mul_fixed_lanes::<K, L>(&base_p, &r2s, &mut base_m);
        let mut acc = base_m;
        let mut tmp = [[0u64; K]; L];
        for i in (0..bits - 1).rev() {
            self.mont_sqr_fixed_lanes::<K, L>(&acc, &mut tmp);
            std::mem::swap(&mut acc, &mut tmp);
            if exp.bit(i) {
                self.mont_mul_fixed_lanes::<K, L>(&acc, &base_m, &mut tmp);
                std::mem::swap(&mut acc, &mut tmp);
            }
        }
        let mut ones = [[0u64; K]; L];
        for lane in ones.iter_mut() {
            lane[0] = 1;
        }
        self.mont_mul_fixed_lanes::<K, L>(&acc, &ones, &mut tmp);
        for lane in tmp.iter() {
            let mut v = BigUint {
                limbs: lane.to_vec(),
            };
            normalize(&mut v);
            out.push(v);
        }
    }

    /// `L`-lane FIOS multiplication: per lane, arithmetic identical to
    /// [`Self::mont_mul_fixed`], but the lane loop sits innermost so each
    /// (i, j) step issues `2·L` independent limb multiplications across
    /// `2·L` independent carry chains.
    fn mont_mul_fixed_lanes<const K: usize, const L: usize>(
        &self,
        a: &[[u64; K]; L],
        b: &[[u64; K]; L],
        out: &mut [[u64; K]; L],
    ) {
        let n: &[u64; K] = self.n.as_slice().try_into().expect("modulus width");
        let mut t = [[0u64; K]; L];
        let mut t_hi = [0u64; L];
        // `i` walks the FIOS rounds; the per-lane inner loops index with
        // `l`, so an iterator over `a` would invert the loop nest.
        #[allow(clippy::needless_range_loop)]
        for i in 0..K {
            let mut ai = [0u128; L];
            let mut m = [0u128; L];
            let mut c1 = [0u128; L];
            let mut c2 = [0u128; L];
            for l in 0..L {
                ai[l] = a[l][i] as u128;
                let cur = t[l][0] as u128 + ai[l] * b[l][0] as u128;
                c1[l] = cur >> 64;
                m[l] = (cur as u64).wrapping_mul(self.n_prime) as u128;
                // The low limb of t + ai*b + m*n is zero by construction.
                c2[l] = (cur as u64 as u128 + m[l] * n[0] as u128) >> 64;
            }
            for j in 1..K {
                for l in 0..L {
                    let cur = t[l][j] as u128 + ai[l] * b[l][j] as u128 + c1[l];
                    c1[l] = cur >> 64;
                    let cur2 = cur as u64 as u128 + m[l] * n[j] as u128 + c2[l];
                    t[l][j - 1] = cur2 as u64;
                    c2[l] = cur2 >> 64;
                }
            }
            for l in 0..L {
                let cur = t_hi[l] as u128 + c1[l] + c2[l];
                t[l][K - 1] = cur as u64;
                t_hi[l] = (cur >> 64) as u64;
            }
        }
        for l in 0..L {
            out[l].copy_from_slice(&t[l]);
            if t_hi[l] != 0 || cmp_limbs(&out[l], &self.n) != Ordering::Less {
                sub_limbs_in_place(&mut out[l], &self.n);
            }
        }
    }

    /// `L`-lane squaring: per lane, arithmetic identical to
    /// [`Self::mont_sqr_fixed`]. The multiplication-heavy phases (cross
    /// products, two-row REDC) interleave the lanes; the carry-chain-bound
    /// phases (doubling shift, diagonal insertion, carry tails) run per
    /// lane, where interleaving buys nothing.
    fn mont_sqr_fixed_lanes<const K: usize, const L: usize>(
        &self,
        a: &[[u64; K]; L],
        out: &mut [[u64; K]; L],
    ) {
        const { assert!(K <= MAX_FIXED_LIMBS) };
        let n: &[u64; K] = self.n.as_slice().try_into().expect("modulus width");
        let mut t = [[0u64; 2 * MAX_FIXED_LIMBS + 1]; L];

        // Off-diagonal cross products a[i] * a[j] for i < j, all lanes
        // advancing through the same (i, j) schedule.
        for i in 0..K {
            let mut ai = [0u128; L];
            let mut carry = [0u128; L];
            for l in 0..L {
                ai[l] = a[l][i] as u128;
            }
            for j in (i + 1)..K {
                for l in 0..L {
                    let cur = t[l][i + j] as u128 + ai[l] * a[l][j] as u128 + carry[l];
                    t[l][i + j] = cur as u64;
                    carry[l] = cur >> 64;
                }
            }
            for l in 0..L {
                t[l][i + K] = carry[l] as u64;
            }
        }

        for l in 0..L {
            let t = &mut t[l];
            let a = &a[l];

            // Double the cross products (one whole-array 1-bit shift).
            let mut top = 0u64;
            for limb in t[..2 * K].iter_mut() {
                let new_top = *limb >> 63;
                *limb = (*limb << 1) | top;
                top = new_top;
            }
            debug_assert_eq!(top, 0, "doubled cross products fit in 2K limbs");

            // Add the diagonal squares a[i]^2 at position 2i.
            let mut carry = 0u64;
            for i in 0..K {
                let sq = a[i] as u128 * a[i] as u128;
                let (lo, hi) = (sq as u64, (sq >> 64) as u64);
                let (s0, c0) = t[2 * i].overflowing_add(lo);
                let (s0, c0b) = s0.overflowing_add(carry);
                t[2 * i] = s0;
                let mid = c0 as u64 + c0b as u64;
                let (s1, c1) = t[2 * i + 1].overflowing_add(hi);
                let (s1, c1b) = s1.overflowing_add(mid);
                t[2 * i + 1] = s1;
                carry = c1 as u64 + c1b as u64;
            }
            debug_assert_eq!(carry, 0, "a^2 fits in 2K limbs");
        }

        // Two-row separated REDC across all lanes: 2·L independent
        // multiplications per inner step.
        const { assert!(K.is_multiple_of(2)) };
        for i in (0..K).step_by(2) {
            let mut m0 = [0u128; L];
            let mut m1 = [0u128; L];
            let mut c0 = [0u128; L];
            let mut c1 = [0u128; L];
            for l in 0..L {
                m0[l] = t[l][i].wrapping_mul(self.n_prime) as u128;
                let cur = t[l][i] as u128 + m0[l] * n[0] as u128;
                c0[l] = cur >> 64;
                let cur = t[l][i + 1] as u128 + m0[l] * n[1] as u128 + c0[l];
                t[l][i + 1] = cur as u64;
                c0[l] = cur >> 64;
                m1[l] = t[l][i + 1].wrapping_mul(self.n_prime) as u128;
                let cur = t[l][i + 1] as u128 + m1[l] * n[0] as u128;
                c1[l] = cur >> 64;
            }
            for j in 2..K {
                for l in 0..L {
                    let cur = t[l][i + j] as u128 + m0[l] * n[j] as u128 + c0[l];
                    c0[l] = cur >> 64;
                    let cur2 = cur as u64 as u128 + m1[l] * n[j - 1] as u128 + c1[l];
                    t[l][i + j] = cur2 as u64;
                    c1[l] = cur2 >> 64;
                }
            }
            for l in 0..L {
                // Both rows' final terms land at position i+K; split the
                // additions as in the single-lane kernel to avoid u128
                // overflow.
                let cur = t[l][i + K] as u128 + m1[l] * n[K - 1] as u128 + c0[l];
                let cur2 = cur as u64 as u128 + c1[l];
                t[l][i + K] = cur2 as u64;
                let mut carry = (cur >> 64) + (cur2 >> 64);
                let mut idx = i + K + 1;
                while carry != 0 {
                    let cur = t[l][idx] as u128 + carry;
                    t[l][idx] = cur as u64;
                    carry = cur >> 64;
                    idx += 1;
                }
            }
        }
        for l in 0..L {
            out[l].copy_from_slice(&t[l][K..2 * K]);
            if t[l][2 * K] != 0 || cmp_limbs(&out[l], &self.n) != Ordering::Less {
                sub_limbs_in_place(&mut out[l], &self.n);
            }
        }
    }
}

fn cmp_limbs(a: &[u64], b: &[u64]) -> Ordering {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        match x.cmp(y) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

fn sub_limbs_in_place(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
}

fn normalize(v: &mut BigUint) {
    while v.limbs.last() == Some(&0) {
        v.limbs.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn matches_simple_modpow_small() {
        let m = big(1_000_000_007); // odd prime
        let ctx = MontgomeryCtx::new(&m);
        for (b, e) in [
            (2u128, 10u128),
            (3, 100),
            (999_999_999, 12345),
            (1, 0),
            (0, 5),
        ] {
            let got = ctx.modpow(&big(b), &big(e));
            // Reference: square-and-multiply with u128 arithmetic.
            let mut expect = 1u128;
            let mut base = b % 1_000_000_007;
            let mut exp = e;
            while exp > 0 {
                if exp & 1 == 1 {
                    expect = expect * base % 1_000_000_007;
                }
                base = base * base % 1_000_000_007;
                exp >>= 1;
            }
            assert_eq!(got, big(expect), "base={b} exp={e}");
        }
    }

    #[test]
    fn matches_multi_limb_fermat() {
        // p = 2^89 - 1 is a Mersenne prime spanning two limbs.
        let p = BigUint::one().shl(89).sub(&BigUint::one());
        let ctx = MontgomeryCtx::new(&p);
        let a = BigUint::from_bytes_be(&[0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc]);
        let p_minus_1 = p.sub(&BigUint::one());
        assert_eq!(ctx.modpow(&a, &p_minus_1), BigUint::one());
    }

    #[test]
    fn exponent_zero_and_one() {
        let m = big(0xffff_ffff_ffff_fff1); // odd
        let ctx = MontgomeryCtx::new(&m);
        let a = big(0x1234_5678);
        assert_eq!(ctx.modpow(&a, &BigUint::zero()), BigUint::one());
        assert_eq!(ctx.modpow(&a, &BigUint::one()), a);
    }

    #[test]
    fn long_exponents_cross_window_path() {
        // Exponents beyond SMALL_EXP_BITS exercise the window table;
        // compare against the even-modulus-capable schoolbook fallback by
        // checking Fermat on a two-limb prime with a long exponent.
        let p = BigUint::one().shl(89).sub(&BigUint::one());
        let ctx = MontgomeryCtx::new(&p);
        // a^(2(p-1)) = 1 as well; 2(p-1) is 90 bits -> window path.
        let e = p.sub(&BigUint::one()).shl(1);
        let a = big(0xdead_beef_cafe);
        assert_eq!(ctx.modpow(&a, &e), BigUint::one());
    }

    #[test]
    fn squaring_kernel_matches_mul_kernel() {
        // a^2 computed by the squaring kernel must equal a*a from the
        // general kernel for values exercising carries in every limb.
        let m = BigUint::from_bytes_be(&[0xff; 33]).sub(&BigUint::from_u64(18)); // odd, 5 limbs
        assert!(!m.is_even());
        let ctx = MontgomeryCtx::new(&m);
        let k = ctx.k();
        for seed in [0x01u8, 0x7f, 0xaa, 0xfe] {
            let a = BigUint::from_bytes_be(&[seed; 31]).rem(&m);
            let mut a_limbs = a.limbs.clone();
            a_limbs.resize(k, 0);
            let mut sq = vec![0u64; k];
            let mut sq_t = vec![0u64; 2 * k + 1];
            ctx.mont_sqr_to(&a_limbs, &mut sq, &mut sq_t);
            let mut mu = vec![0u64; k];
            let mut mu_t = vec![0u64; k + 2];
            ctx.mont_mul_to(&a_limbs, &a_limbs.clone(), &mut mu, &mut mu_t);
            assert_eq!(sq, mu, "seed {seed:#x}");
        }
    }

    #[test]
    #[should_panic]
    fn even_modulus_rejected() {
        MontgomeryCtx::new(&big(100));
    }

    #[test]
    fn large_base_reduced_first() {
        let m = big(101);
        let ctx = MontgomeryCtx::new(&m);
        // 1000 mod 101 = 91; 91^2 mod 101 = 8281 mod 101 = 100... compute: 101*81=8181, 8281-8181=100.
        assert_eq!(ctx.modpow(&big(1000), &big(2)), big(100));
    }

    /// Deterministic pseudo-random K-limb value below the modulus.
    fn pseudo_base(modulus: &BigUint, seed: u64) -> BigUint {
        let mut bytes = Vec::with_capacity(8 * modulus.limbs.len());
        let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        for _ in 0..modulus.limbs.len() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            bytes.extend_from_slice(&x.to_be_bytes());
        }
        BigUint::from_bytes_be(&bytes).rem(modulus)
    }

    /// A deterministic odd modulus of exactly `limbs` limbs.
    fn odd_modulus(limbs: usize) -> BigUint {
        let mut bytes = vec![0xabu8; 8 * limbs];
        bytes[0] = 0xf3; // top byte nonzero -> exact width
        let last = bytes.len() - 1;
        bytes[last] = 0xc7; // odd
        BigUint::from_bytes_be(&bytes)
    }

    #[test]
    fn batch_matches_scalar_at_fixed_widths() {
        let e = big(65_537);
        for limbs in [8usize, 16] {
            let m = odd_modulus(limbs);
            let ctx = MontgomeryCtx::new(&m);
            assert_eq!(ctx.k(), limbs);
            // Lengths covering the 4-lane chunks, the 2-lane remainder,
            // and the scalar tail.
            for len in [0usize, 1, 2, 3, 4, 5, 6, 7, 9] {
                let bases: Vec<BigUint> = (0..len).map(|i| pseudo_base(&m, i as u64 + 1)).collect();
                let batch = ctx.modpow_batch(&bases, &e);
                let scalar: Vec<BigUint> = bases.iter().map(|b| ctx.modpow(b, &e)).collect();
                assert_eq!(batch, scalar, "limbs={limbs} len={len}");
            }
        }
    }

    #[test]
    fn batch_matches_scalar_for_unreduced_bases_and_edge_exponents() {
        let m = odd_modulus(8);
        let ctx = MontgomeryCtx::new(&m);
        // Bases at and above the modulus must be reduced identically.
        let bases = vec![
            m.clone(),
            m.add(&BigUint::one()),
            BigUint::zero(),
            BigUint::one(),
            pseudo_base(&m, 42),
        ];
        for e in [BigUint::zero(), BigUint::one(), big(2), big(65_537)] {
            let batch = ctx.modpow_batch(&bases, &e);
            let scalar: Vec<BigUint> = bases.iter().map(|b| ctx.modpow(b, &e)).collect();
            assert_eq!(batch, scalar, "exp={e:?}");
        }
    }

    #[test]
    fn batch_falls_back_off_fixed_widths_and_long_exponents() {
        // 5-limb modulus: no fixed kernel; long exponent: window path.
        let m = BigUint::from_bytes_be(&[0xff; 33]).sub(&BigUint::from_u64(18));
        let ctx = MontgomeryCtx::new(&m);
        let bases: Vec<BigUint> = (0..5).map(|i| pseudo_base(&m, i + 7)).collect();
        let long_e = BigUint::one().shl(77).add(&big(65_537));
        for e in [big(65_537), long_e] {
            let batch = ctx.modpow_batch(&bases, &e);
            let scalar: Vec<BigUint> = bases.iter().map(|b| ctx.modpow(b, &e)).collect();
            assert_eq!(batch, scalar);
        }
    }
}
