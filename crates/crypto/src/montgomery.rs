//! Montgomery-form modular arithmetic for odd moduli.
//!
//! RSA spends nearly all its time in modular exponentiation, and the modulus
//! is always odd, so Montgomery reduction (REDC) is the standard way to
//! avoid a full division per multiplication. The context precomputes
//! `n' = -n^{-1} mod 2^64` and `R^2 mod n` (with `R = 2^{64·k}` for a
//! `k`-limb modulus) once per modulus.

use crate::bigint::BigUint;
use std::cmp::Ordering;

/// Precomputed state for Montgomery arithmetic modulo an odd `n`.
pub struct MontgomeryCtx {
    /// The (odd) modulus limbs, little-endian.
    n: Vec<u64>,
    /// `-n^{-1} mod 2^64`.
    n_prime: u64,
    /// `R^2 mod n` in plain form, used to convert into Montgomery form.
    r2: Vec<u64>,
}

impl MontgomeryCtx {
    /// Builds a context; panics if the modulus is even or zero.
    pub fn new(modulus: &BigUint) -> Self {
        assert!(!modulus.is_zero(), "Montgomery modulus must be nonzero");
        assert!(!modulus.is_even(), "Montgomery modulus must be odd");
        let n = modulus.limbs.clone();
        let k = n.len();

        // n' = -n^{-1} mod 2^64 by Newton iteration: each step doubles the
        // number of correct low bits of the inverse.
        let n0 = n[0];
        let mut inv = 1u64; // inverse mod 2
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n_prime = inv.wrapping_neg();

        // R^2 mod n, with R = 2^(64k): shift-and-reduce 2^(128k).
        // Pad to k limbs: mont_mul expects fixed-width operands.
        let mut r2 = BigUint::one().shl(128 * k).rem(modulus).limbs.clone();
        r2.resize(k, 0);

        MontgomeryCtx { n, n_prime, r2 }
    }

    fn k(&self) -> usize {
        self.n.len()
    }

    /// Montgomery multiplication: returns `a * b * R^-1 mod n`.
    ///
    /// Inputs are `k`-limb little-endian vectors already reduced mod `n`.
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let k = self.k();
        // CIOS (coarsely integrated operand scanning).
        let mut t = vec![0u64; k + 2];
        for &ai in a.iter().take(k) {
            // t += ai * b
            let mut carry = 0u128;
            for j in 0..k {
                let cur = t[j] as u128 + ai as u128 * b[j] as u128 + carry;
                t[j] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[k] as u128 + carry;
            t[k] = cur as u64;
            t[k + 1] = (cur >> 64) as u64;

            // m = t[0] * n' mod 2^64 ; t += m * n ; t >>= 64
            let m = t[0].wrapping_mul(self.n_prime);
            let cur = t[0] as u128 + m as u128 * self.n[0] as u128;
            let mut carry = cur >> 64;
            for j in 1..k {
                let cur = t[j] as u128 + m as u128 * self.n[j] as u128 + carry;
                t[j - 1] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[k] as u128 + carry;
            t[k - 1] = cur as u64;
            t[k] = t[k + 1].wrapping_add((cur >> 64) as u64);
            t[k + 1] = 0;
        }
        // Conditional final subtraction to bring the result under n.
        let mut out = t[..k].to_vec();
        let overflow = t[k] != 0;
        if overflow || cmp_limbs(&out, &self.n) != Ordering::Less {
            sub_limbs_in_place(&mut out, &self.n);
        }
        out
    }

    /// Converts a plain value (reduced mod n) to Montgomery form.
    fn to_mont(&self, v: &BigUint) -> Vec<u64> {
        let mut limbs = v.limbs.clone();
        limbs.resize(self.k(), 0);
        self.mont_mul(&limbs, &self.r2)
    }

    /// Converts out of Montgomery form into a normalized `BigUint`.
    fn to_plain(&self, v: &[u64]) -> BigUint {
        let one = {
            let mut o = vec![0u64; self.k()];
            o[0] = 1;
            o
        };
        let plain = self.mont_mul(v, &one);
        let mut out = BigUint { limbs: plain };
        normalize(&mut out);
        out
    }

    /// Computes `base^exp mod n` with 4-bit fixed-window exponentiation.
    pub fn modpow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let modulus = {
            let mut m = BigUint {
                limbs: self.n.clone(),
            };
            normalize(&mut m);
            m
        };
        if exp.is_zero() {
            return if modulus.is_one() {
                BigUint::zero()
            } else {
                BigUint::one()
            };
        }
        let base = base.rem(&modulus);
        let base_m = self.to_mont(&base);
        let one_m = self.to_mont(&BigUint::one());

        // Precompute base^0..base^15 in Montgomery form.
        let mut table = Vec::with_capacity(16);
        table.push(one_m.clone());
        table.push(base_m.clone());
        for i in 2..16 {
            let prev: &Vec<u64> = &table[i - 1];
            table.push(self.mont_mul(prev, &base_m));
        }

        let bits = exp.bit_len();
        let windows = bits.div_ceil(4);
        let mut acc = one_m;
        let mut started = false;
        for w in (0..windows).rev() {
            if started {
                for _ in 0..4 {
                    acc = self.mont_mul(&acc, &acc);
                }
            }
            let mut digit = 0usize;
            for b in 0..4 {
                let bit_idx = w * 4 + (3 - b);
                digit <<= 1;
                if bit_idx < bits && exp.bit(bit_idx) {
                    digit |= 1;
                }
            }
            if digit != 0 {
                acc = self.mont_mul(&acc, &table[digit]);
                started = true;
            } else if started {
                // squarings above already account for the zero window
            } else {
                // still leading zeros; nothing accumulated yet
            }
            if !started && digit == 0 {
                continue;
            }
            started = true;
        }
        self.to_plain(&acc)
    }
}

fn cmp_limbs(a: &[u64], b: &[u64]) -> Ordering {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        match x.cmp(y) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

fn sub_limbs_in_place(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
}

fn normalize(v: &mut BigUint) {
    while v.limbs.last() == Some(&0) {
        v.limbs.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn matches_simple_modpow_small() {
        let m = big(1_000_000_007); // odd prime
        let ctx = MontgomeryCtx::new(&m);
        for (b, e) in [
            (2u128, 10u128),
            (3, 100),
            (999_999_999, 12345),
            (1, 0),
            (0, 5),
        ] {
            let got = ctx.modpow(&big(b), &big(e));
            // Reference: square-and-multiply with u128 arithmetic.
            let mut expect = 1u128;
            let mut base = b % 1_000_000_007;
            let mut exp = e;
            while exp > 0 {
                if exp & 1 == 1 {
                    expect = expect * base % 1_000_000_007;
                }
                base = base * base % 1_000_000_007;
                exp >>= 1;
            }
            assert_eq!(got, big(expect), "base={b} exp={e}");
        }
    }

    #[test]
    fn matches_multi_limb_fermat() {
        // p = 2^89 - 1 is a Mersenne prime spanning two limbs.
        let p = BigUint::one().shl(89).sub(&BigUint::one());
        let ctx = MontgomeryCtx::new(&p);
        let a = BigUint::from_bytes_be(&[0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc]);
        let p_minus_1 = p.sub(&BigUint::one());
        assert_eq!(ctx.modpow(&a, &p_minus_1), BigUint::one());
    }

    #[test]
    fn exponent_zero_and_one() {
        let m = big(0xffff_ffff_ffff_fff1); // odd
        let ctx = MontgomeryCtx::new(&m);
        let a = big(0x1234_5678);
        assert_eq!(ctx.modpow(&a, &BigUint::zero()), BigUint::one());
        assert_eq!(ctx.modpow(&a, &BigUint::one()), a);
    }

    #[test]
    #[should_panic]
    fn even_modulus_rejected() {
        MontgomeryCtx::new(&big(100));
    }

    #[test]
    fn large_base_reduced_first() {
        let m = big(101);
        let ctx = MontgomeryCtx::new(&m);
        // 1000 mod 101 = 91; 91^2 mod 101 = 8281 mod 101 = 100... compute: 101*81=8181, 8281-8181=100.
        assert_eq!(ctx.modpow(&big(1000), &big(2)), big(100));
    }
}
