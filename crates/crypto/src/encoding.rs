//! Compact length-prefixed encoding for keys and signed containers.
//!
//! TLC messages travel between the operator's OFCS and the edge applet, and
//! PoCs are later handed to third-party verifiers, so keys and signatures
//! need a stable wire form. We use a minimal tag-length-value scheme rather
//! than full ASN.1 DER: `u8` tag, `u32` big-endian length, raw bytes.

use crate::bigint::BigUint;
use crate::error::CryptoError;
use crate::rsa::PublicKey;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// TLV tag for an RSA public key container.
const TAG_PUBLIC_KEY: u8 = 0x01;
/// TLV tag for a big integer field.
const TAG_INTEGER: u8 = 0x02;

/// Appends one TLV field.
pub fn put_field(out: &mut BytesMut, tag: u8, value: &[u8]) {
    out.put_u8(tag);
    out.put_u32(value.len() as u32);
    out.put_slice(value);
}

/// Reads one TLV field, checking the tag.
pub fn get_field(buf: &mut Bytes, expected_tag: u8) -> Result<Bytes, CryptoError> {
    if buf.remaining() < 5 {
        return Err(CryptoError::Encoding("truncated TLV header"));
    }
    let tag = buf.get_u8();
    if tag != expected_tag {
        return Err(CryptoError::Encoding("unexpected TLV tag"));
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(CryptoError::Encoding("truncated TLV value"));
    }
    Ok(buf.copy_to_bytes(len))
}

/// Serializes a public key as `TLV(pubkey, TLV(int, n) || TLV(int, e))`.
pub fn encode_public_key(key: &PublicKey) -> Vec<u8> {
    let mut inner = BytesMut::new();
    put_field(&mut inner, TAG_INTEGER, &key.n.to_bytes_be());
    put_field(&mut inner, TAG_INTEGER, &key.e.to_bytes_be());
    let mut out = BytesMut::new();
    put_field(&mut out, TAG_PUBLIC_KEY, &inner);
    out.to_vec()
}

/// Parses a public key produced by [`encode_public_key`].
pub fn decode_public_key(data: &[u8]) -> Result<PublicKey, CryptoError> {
    let mut buf = Bytes::copy_from_slice(data);
    let mut inner = get_field(&mut buf, TAG_PUBLIC_KEY)?;
    if buf.has_remaining() {
        return Err(CryptoError::Encoding("trailing bytes after public key"));
    }
    let n = get_field(&mut inner, TAG_INTEGER)?;
    let e = get_field(&mut inner, TAG_INTEGER)?;
    if inner.has_remaining() {
        return Err(CryptoError::Encoding("trailing bytes inside public key"));
    }
    let n = BigUint::from_bytes_be(&n);
    let e = BigUint::from_bytes_be(&e);
    if n.is_zero() || e.is_zero() {
        return Err(CryptoError::Encoding("zero modulus or exponent"));
    }
    Ok(PublicKey::new(n, e))
}

/// A stable short fingerprint of a public key (first 8 bytes of SHA-256 of
/// its encoding), used to identify parties in logs and PoC stores.
pub fn key_fingerprint(key: &PublicKey) -> u64 {
    let digest = crate::sha256::digest(&encode_public_key(key));
    u64::from_be_bytes(digest[..8].try_into().expect("8 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::KeyPair;

    #[test]
    fn public_key_roundtrip() {
        let kp = KeyPair::generate_for_seed(512, 5).unwrap();
        let enc = encode_public_key(&kp.public);
        let dec = decode_public_key(&enc).unwrap();
        assert_eq!(dec, kp.public);
    }

    #[test]
    fn truncated_key_rejected() {
        let kp = KeyPair::generate_for_seed(512, 5).unwrap();
        let enc = encode_public_key(&kp.public);
        for cut in [0, 1, 4, 10, enc.len() - 1] {
            assert!(decode_public_key(&enc[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let kp = KeyPair::generate_for_seed(512, 5).unwrap();
        let mut enc = encode_public_key(&kp.public);
        enc.push(0xff);
        assert!(decode_public_key(&enc).is_err());
    }

    #[test]
    fn wrong_tag_rejected() {
        let kp = KeyPair::generate_for_seed(512, 5).unwrap();
        let mut enc = encode_public_key(&kp.public);
        enc[0] = 0x7f;
        assert!(decode_public_key(&enc).is_err());
    }

    #[test]
    fn zero_modulus_rejected() {
        let mut inner = BytesMut::new();
        put_field(&mut inner, TAG_INTEGER, &[]);
        put_field(&mut inner, TAG_INTEGER, &[1]);
        let mut out = BytesMut::new();
        put_field(&mut out, TAG_PUBLIC_KEY, &inner);
        assert!(decode_public_key(&out).is_err());
    }

    #[test]
    fn fingerprints_distinguish_keys() {
        let a = KeyPair::generate_for_seed(512, 1).unwrap();
        let b = KeyPair::generate_for_seed(512, 2).unwrap();
        assert_ne!(key_fingerprint(&a.public), key_fingerprint(&b.public));
        assert_eq!(key_fingerprint(&a.public), key_fingerprint(&a.public));
    }

    #[test]
    fn oversized_length_field_rejected() {
        // Header claims a huge value length the buffer can't hold.
        let data = [TAG_PUBLIC_KEY, 0xff, 0xff, 0xff, 0xff, 0x01];
        assert!(decode_public_key(&data).is_err());
    }
}
