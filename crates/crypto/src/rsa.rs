//! RSA key generation and raw RSA operations.
//!
//! The paper signs TLC's CDR/CDA/PoC messages with RSA-1024 via
//! `java.security`; this module reproduces that primitive from scratch on
//! top of [`crate::bigint`] and [`crate::prime`]. Signature padding lives in
//! [`crate::pkcs1`].
//!
//! Private-key operations use the CRT (Garner recombination) for the usual
//! ~4x speedup, which matters for the Fig. 17 cost benchmarks.

use crate::bigint::BigUint;
use crate::error::CryptoError;
use crate::montgomery::MontgomeryCtx;
use crate::prime::generate_prime;
use crate::rng::RngSource;
use std::sync::{Arc, OnceLock};

/// The public exponent used throughout (F4).
pub const PUBLIC_EXPONENT: u64 = 65537;

/// Default modulus size matching the paper's RSA-1024.
pub const DEFAULT_MODULUS_BITS: usize = 1024;

/// An RSA public key `(n, e)`.
///
/// Carries a lazily-built, shared [`MontgomeryCtx`] for `n`, so the REDC
/// constants are computed once per key lifetime rather than once per
/// exponentiation. Clones share the cached context.
#[derive(Clone)]
pub struct PublicKey {
    /// Modulus.
    pub n: BigUint,
    /// Public exponent.
    pub e: BigUint,
    /// Cached Montgomery context for `n` (built on first use).
    ctx: OnceLock<Arc<MontgomeryCtx>>,
}

impl PartialEq for PublicKey {
    fn eq(&self, other: &Self) -> bool {
        // The cached context is derived state; identity is (n, e).
        self.n == other.n && self.e == other.e
    }
}

impl Eq for PublicKey {}

impl std::fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PublicKey")
            .field("n", &self.n)
            .field("e", &self.e)
            .finish()
    }
}

/// An RSA private key with CRT parameters.
///
/// Like [`PublicKey`], caches one Montgomery context per CRT prime so the
/// two half-size exponentiations of every signature reuse precomputed
/// REDC constants.
#[derive(Clone)]
pub struct PrivateKey {
    /// Matching public key.
    pub public: PublicKey,
    /// Private exponent.
    d: BigUint,
    /// First prime factor.
    p: BigUint,
    /// Second prime factor.
    q: BigUint,
    /// `d mod (p-1)`.
    dp: BigUint,
    /// `d mod (q-1)`.
    dq: BigUint,
    /// `q^-1 mod p`.
    qinv: BigUint,
    /// Cached Montgomery context for `p`.
    p_ctx: OnceLock<Arc<MontgomeryCtx>>,
    /// Cached Montgomery context for `q`.
    q_ctx: OnceLock<Arc<MontgomeryCtx>>,
}

impl std::fmt::Debug for PrivateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print private material: key id (public fingerprint)
        // and modulus size only. Enforced by tlc-lint's secret-hygiene
        // rule.
        f.debug_struct("PrivateKey")
            .field("key_id", &format_args!("{:#018x}", self.key_id()))
            .field("modulus_bits", &self.public.n.bit_len())
            .finish_non_exhaustive()
    }
}

impl std::fmt::Display for PrivateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PrivateKey({:#018x}, {} bits)",
            self.key_id(),
            self.public.n.bit_len()
        )
    }
}

impl Drop for PrivateKey {
    fn drop(&mut self) {
        // Best-effort scrubbing of long-lived secret material: the CRT
        // limbs and the private exponent are overwritten before the
        // buffers return to the allocator. Volatile writes keep the
        // stores from being elided as dead. Transient `BigUint`
        // temporaries inside an exponentiation are *not* covered, nor
        // are the per-prime Montgomery contexts (shared via `Arc` with
        // any clone, so scrubbing them here could corrupt a live
        // sibling).
        for secret in [
            &mut self.d,
            &mut self.p,
            &mut self.q,
            &mut self.dp,
            &mut self.dq,
            &mut self.qinv,
        ] {
            for limb in secret.limbs.iter_mut() {
                // SAFETY: `limb` is a valid, aligned, exclusive
                // reference into a live Vec<u64>; writing 0 through it
                // is an ordinary store made volatile only to survive
                // dead-store elimination.
                unsafe { core::ptr::write_volatile(limb, 0) };
            }
        }
    }
}

/// A public/private key pair.
#[derive(Clone)]
pub struct KeyPair {
    /// Public half, safe to publish.
    pub public: PublicKey,
    /// Private half.
    pub private: PrivateKey,
}

impl std::fmt::Debug for KeyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Hand-written (not derived) so the private half is visibly
        // routed through PrivateKey's redacted Debug.
        f.debug_struct("KeyPair")
            .field("public", &self.public)
            .field("private", &self.private)
            .finish()
    }
}

impl PublicKey {
    /// Builds a public key from its components.
    pub fn new(n: BigUint, e: BigUint) -> Self {
        PublicKey {
            n,
            e,
            ctx: OnceLock::new(),
        }
    }

    /// Modulus length in whole bytes (e.g. 128 for RSA-1024).
    pub fn modulus_len(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// The cached Montgomery context for `n`, built on first use.
    ///
    /// Returns `None` when `n` is even or zero (REDC requires an odd
    /// modulus); such keys never verify anything anyway.
    pub fn mont_ctx(&self) -> Option<&MontgomeryCtx> {
        if self.n.is_zero() || !self.n.bit(0) {
            return None;
        }
        Some(
            self.ctx
                .get_or_init(|| Arc::new(MontgomeryCtx::new(&self.n))),
        )
    }

    /// Raw public-key operation `m^e mod n`.
    pub fn raw_encrypt(&self, m: &BigUint) -> Result<BigUint, CryptoError> {
        if m.cmp_to(&self.n) != std::cmp::Ordering::Less {
            return Err(CryptoError::MessageTooLarge);
        }
        match self.mont_ctx() {
            Some(ctx) => Ok(m.modpow_with_ctx(&self.e, ctx)),
            None => Ok(m.modpow(&self.e, &self.n)),
        }
    }
}

impl PrivateKey {
    /// Stable identifier for logs and diagnostics: the fingerprint of
    /// the *public* half (safe to reveal by definition).
    pub fn key_id(&self) -> u64 {
        crate::encoding::key_fingerprint(&self.public)
    }

    /// Raw private-key operation `c^d mod n` *without* CRT; retained to
    /// cross-check the CRT path in tests and for constant-structure use.
    pub fn raw_decrypt_no_crt(&self, c: &BigUint) -> Result<BigUint, CryptoError> {
        if c.cmp_to(&self.public.n) != std::cmp::Ordering::Less {
            return Err(CryptoError::MessageTooLarge);
        }
        match self.public.mont_ctx() {
            Some(ctx) => Ok(c.modpow_with_ctx(&self.d, ctx)),
            None => Ok(c.modpow(&self.d, &self.public.n)),
        }
    }

    /// Cached Montgomery context for prime `p` (primes are always odd).
    fn p_ctx(&self) -> &MontgomeryCtx {
        self.p_ctx
            .get_or_init(|| Arc::new(MontgomeryCtx::new(&self.p)))
    }

    /// Cached Montgomery context for prime `q`.
    fn q_ctx(&self) -> &MontgomeryCtx {
        self.q_ctx
            .get_or_init(|| Arc::new(MontgomeryCtx::new(&self.q)))
    }

    /// Raw private-key operation `c^d mod n` via CRT.
    pub fn raw_decrypt(&self, c: &BigUint) -> Result<BigUint, CryptoError> {
        if c.cmp_to(&self.public.n) != std::cmp::Ordering::Less {
            return Err(CryptoError::MessageTooLarge);
        }
        // Garner: m1 = c^dp mod p, m2 = c^dq mod q,
        // h = qinv * (m1 - m2) mod p, m = m2 + h*q.
        let m1 = c.rem(&self.p).modpow_with_ctx(&self.dp, self.p_ctx());
        let m2 = c.rem(&self.q).modpow_with_ctx(&self.dq, self.q_ctx());
        let diff = m1.sub_mod(&m2.rem(&self.p), &self.p);
        let h = self.qinv.mul_mod(&diff, &self.p);
        Ok(m2.add(&h.mul(&self.q)))
    }
}

impl KeyPair {
    /// Generates an RSA key pair with a modulus of `bits` bits.
    ///
    /// `bits` must be even and at least 512 (the paper uses 1024).
    pub fn generate(bits: usize, rng: &mut dyn RngSource) -> Result<KeyPair, CryptoError> {
        if bits < 512 || !bits.is_multiple_of(2) {
            return Err(CryptoError::InvalidKeySize(bits));
        }
        let e = BigUint::from_u64(PUBLIC_EXPONENT);
        loop {
            let p = generate_prime(bits / 2, rng);
            let q = generate_prime(bits / 2, rng);
            if p == q {
                continue;
            }
            let one = BigUint::one();
            let p1 = p.sub(&one);
            let q1 = q.sub(&one);
            // Use Carmichael's lambda = lcm(p-1, q-1) for a smaller d.
            let g = p1.gcd(&q1);
            let lambda = p1.mul(&q1).div_rem(&g).0;
            if !lambda.gcd(&e).is_one() {
                continue;
            }
            let d = match e.modinv(&lambda) {
                Some(d) => d,
                None => continue,
            };
            let n = p.mul(&q);
            debug_assert_eq!(n.bit_len(), bits);
            let dp = d.rem(&p1);
            let dq = d.rem(&q1);
            let qinv = match q.modinv(&p) {
                Some(v) => v,
                None => continue,
            };
            let public = PublicKey::new(n, e.clone());
            return Ok(KeyPair {
                public: public.clone(),
                private: PrivateKey {
                    public,
                    d,
                    p,
                    q,
                    dp,
                    dq,
                    qinv,
                    p_ctx: OnceLock::new(),
                    q_ctx: OnceLock::new(),
                },
            });
        }
    }

    /// Generates a key pair deterministically from a seed — every actor in
    /// the simulator derives its keys this way so runs are reproducible.
    pub fn generate_for_seed(bits: usize, seed: u64) -> Result<KeyPair, CryptoError> {
        let mut rng = crate::rng::DeterministicRng::from_seed_bytes(
            &[b"tlc-keygen".as_slice(), &seed.to_be_bytes()].concat(),
        );
        Self::generate(bits, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DeterministicRng;

    fn test_keypair(bits: usize) -> KeyPair {
        let mut rng = DeterministicRng::from_seed(0x5eed);
        KeyPair::generate(bits, &mut rng).expect("keygen")
    }

    #[test]
    fn roundtrip_encrypt_decrypt_512() {
        let kp = test_keypair(512);
        let m = BigUint::from_bytes_be(b"charging record for cycle 1001");
        let c = kp.public.raw_encrypt(&m).unwrap();
        assert_ne!(c, m);
        assert_eq!(kp.private.raw_decrypt(&c).unwrap(), m);
    }

    #[test]
    fn roundtrip_decrypt_encrypt_is_identity() {
        // Sign-then-verify direction: m^d then ^e.
        let kp = test_keypair(512);
        let m = BigUint::from_u64(0xabcdef);
        let s = kp.private.raw_decrypt(&m).unwrap();
        assert_eq!(kp.public.raw_encrypt(&s).unwrap(), m);
    }

    #[test]
    fn crt_matches_plain_exponentiation() {
        let kp = test_keypair(512);
        for seed in [1u64, 0xffff, u64::MAX] {
            let m = BigUint::from_u64(seed);
            assert_eq!(
                kp.private.raw_decrypt(&m).unwrap(),
                kp.private.raw_decrypt_no_crt(&m).unwrap()
            );
        }
    }

    #[test]
    fn modulus_has_requested_bits() {
        let kp = test_keypair(512);
        assert_eq!(kp.public.n.bit_len(), 512);
        assert_eq!(kp.public.modulus_len(), 64);
    }

    #[test]
    fn rsa_1024_roundtrip() {
        // The paper's exact parameter choice.
        let kp = test_keypair(1024);
        assert_eq!(kp.public.n.bit_len(), 1024);
        let m = BigUint::from_bytes_be(&[0x42; 100]);
        let c = kp.public.raw_encrypt(&m).unwrap();
        assert_eq!(kp.private.raw_decrypt(&c).unwrap(), m);
    }

    #[test]
    fn message_as_large_as_modulus_rejected() {
        let kp = test_keypair(512);
        let too_big = kp.public.n.clone();
        assert!(matches!(
            kp.public.raw_encrypt(&too_big),
            Err(CryptoError::MessageTooLarge)
        ));
        assert!(matches!(
            kp.private.raw_decrypt(&too_big),
            Err(CryptoError::MessageTooLarge)
        ));
    }

    #[test]
    fn invalid_key_sizes_rejected() {
        let mut rng = DeterministicRng::from_seed(1);
        assert!(matches!(
            KeyPair::generate(256, &mut rng),
            Err(CryptoError::InvalidKeySize(256))
        ));
        assert!(matches!(
            KeyPair::generate(513, &mut rng),
            Err(CryptoError::InvalidKeySize(513))
        ));
    }

    #[test]
    fn deterministic_seeded_generation() {
        let a = KeyPair::generate_for_seed(512, 99).unwrap();
        let b = KeyPair::generate_for_seed(512, 99).unwrap();
        assert_eq!(a.public, b.public);
        let c = KeyPair::generate_for_seed(512, 100).unwrap();
        assert_ne!(a.public, c.public);
    }

    #[test]
    fn distinct_keys_do_not_interoperate() {
        let a = KeyPair::generate_for_seed(512, 1).unwrap();
        let b = KeyPair::generate_for_seed(512, 2).unwrap();
        let m = BigUint::from_u64(12345);
        let c = a.public.raw_encrypt(&m).unwrap();
        // Decrypting with the wrong key yields garbage, not the message.
        assert_ne!(b.private.raw_decrypt(&c).unwrap(), m);
    }

    #[test]
    fn debug_does_not_leak_private_material() {
        let kp = test_keypair(512);
        let s = format!("{:?}", kp.private);
        assert!(s.contains("key_id"));
        assert!(s.contains("modulus_bits"));
        assert!(s.contains(".."), "must be marked non-exhaustive: {s}");
        // A 512-bit modulus is 128 hex digits; the redacted form is a
        // 16-digit fingerprint plus field names. Anything long enough
        // to hold a limb dump fails.
        assert!(s.len() < 120, "suspiciously long debug output: {s}");
        let display = format!("{}", kp.private);
        assert!(display.starts_with("PrivateKey("), "{display}");
        assert!(display.len() < 60, "{display}");
    }
}
