//! Property-based tests for the cryptographic substrate.

use proptest::prelude::*;
use tlc_crypto::bigint::BigUint;
use tlc_crypto::{pkcs1, KeyPair};

fn big(bytes: &[u8]) -> BigUint {
    BigUint::from_bytes_be(bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Byte serialization round-trips for arbitrary values.
    #[test]
    fn bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let v = big(&data);
        let back = BigUint::from_bytes_be(&v.to_bytes_be());
        prop_assert_eq!(back, v);
    }

    /// a + b - b == a.
    #[test]
    fn add_sub_inverse(a in proptest::collection::vec(any::<u8>(), 0..48),
                       b in proptest::collection::vec(any::<u8>(), 0..48)) {
        let a = big(&a);
        let b = big(&b);
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    /// (a * b) / b == a with zero remainder, for b != 0.
    #[test]
    fn mul_div_inverse(a in proptest::collection::vec(any::<u8>(), 0..40),
                       b in proptest::collection::vec(any::<u8>(), 1..40)) {
        let a = big(&a);
        let b = big(&b);
        prop_assume!(!b.is_zero());
        let (q, r) = a.mul(&b).div_rem(&b);
        prop_assert_eq!(q, a);
        prop_assert!(r.is_zero());
    }

    /// Division invariant: a == q*d + r with r < d.
    #[test]
    fn div_rem_reconstructs(a in proptest::collection::vec(any::<u8>(), 0..48),
                            d in proptest::collection::vec(any::<u8>(), 1..24)) {
        let a = big(&a);
        let d = big(&d);
        prop_assume!(!d.is_zero());
        let (q, r) = a.div_rem(&d);
        prop_assert!(r.cmp_to(&d) == std::cmp::Ordering::Less);
        prop_assert_eq!(q.mul(&d).add(&r), a);
    }

    /// Multiplication is commutative and addition distributes over it.
    #[test]
    fn ring_axioms(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (a, b, c) = (BigUint::from_u64(a), BigUint::from_u64(b), BigUint::from_u64(c));
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    /// modpow matches u128 square-and-multiply for small operands.
    #[test]
    fn modpow_matches_reference(base in 0u64..1_000_000, exp in 0u64..64,
                                modulus in 3u64..1_000_003) {
        let modulus = modulus | 1; // keep it odd (Montgomery path)
        let got = BigUint::from_u64(base)
            .modpow(&BigUint::from_u64(exp), &BigUint::from_u64(modulus));
        let mut expect: u128 = 1;
        let mut b = base as u128 % modulus as u128;
        let mut e = exp;
        while e > 0 {
            if e & 1 == 1 { expect = expect * b % modulus as u128; }
            b = b * b % modulus as u128;
            e >>= 1;
        }
        prop_assert_eq!(got, BigUint::from_u64(expect as u64));
    }

    /// gcd divides both operands and is maximal for u64 pairs.
    #[test]
    fn gcd_matches_euclid(a in any::<u64>(), b in any::<u64>()) {
        fn euclid(mut a: u64, mut b: u64) -> u64 {
            while b != 0 { (a, b) = (b, a % b); }
            a
        }
        let got = BigUint::from_u64(a).gcd(&BigUint::from_u64(b));
        prop_assert_eq!(got, BigUint::from_u64(euclid(a, b)));
    }

    /// Shifting left then right is the identity.
    #[test]
    fn shift_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..32),
                       bits in 0usize..130) {
        let v = big(&data);
        prop_assert_eq!(v.shl(bits).shr(bits), v);
    }

    /// Karatsuba agrees with schoolbook on operands straddling the
    /// 16-limb threshold (12..40 limbs ≈ 96..320 bytes), including the
    /// uneven-split and trailing-zero-limb corners.
    #[test]
    fn karatsuba_matches_schoolbook(a in proptest::collection::vec(any::<u8>(), 96..320),
                                    b in proptest::collection::vec(any::<u8>(), 96..320)) {
        let a = big(&a);
        let b = big(&b);
        prop_assert_eq!(a.mul(&b), a.mul_schoolbook(&b));
    }
}

proptest! {
    // Wide modular exponentiation is slower; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The Montgomery fast paths agree with the plain square-and-multiply
    /// reference on arbitrary (base, exp, odd modulus) triples: a cached
    /// per-key context, a freshly built context, and the ctx-free entry
    /// point all produce the same residue. Modulus widths cross both
    /// fixed-width kernels (8/16 limbs) and the generic path.
    #[test]
    fn modpow_ctx_paths_agree(base in proptest::collection::vec(any::<u8>(), 0..96),
                              exp in proptest::collection::vec(any::<u8>(), 0..24),
                              modulus in proptest::collection::vec(any::<u8>(), 1..160)) {
        let base = big(&base);
        let exp = big(&exp);
        let mut modulus = big(&modulus);
        if !modulus.bit(0) {
            modulus = modulus.add(&BigUint::from_u64(1)); // odd -> Montgomery applies
        }
        prop_assume!(!modulus.is_one());
        let reference = base.modpow_simple(&exp, &modulus);
        let ctx = tlc_crypto::montgomery::MontgomeryCtx::new(&modulus);
        prop_assert_eq!(base.modpow_with_ctx(&exp, &ctx), reference.clone());
        // Second use of the same ctx (the per-key caching pattern).
        prop_assert_eq!(base.modpow_with_ctx(&exp, &ctx), reference.clone());
        prop_assert_eq!(base.modpow(&exp, &modulus), reference);
    }
}

/// Fixed key pair cache for the signature properties (generation is the
/// expensive part; the properties vary messages and batch shapes).
fn cached_keys() -> &'static (KeyPair, KeyPair) {
    use std::sync::OnceLock;
    static KEYS: OnceLock<(KeyPair, KeyPair)> = OnceLock::new();
    KEYS.get_or_init(|| {
        (
            KeyPair::generate_for_seed(1024, 0xF00D).unwrap(),
            KeyPair::generate_for_seed(1024, 0xBEEF).unwrap(),
        )
    })
}

proptest! {
    // Signatures are slow; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Sign/verify round-trips for arbitrary messages; any flipped byte in
    /// the message is rejected.
    #[test]
    fn sign_verify_roundtrip_and_tamper(msg in proptest::collection::vec(any::<u8>(), 0..256),
                                        flip in any::<u8>()) {
        // Fixed key (generation is expensive); message varies.
        let kp = &cached_keys().0;
        let sig = pkcs1::sign(&kp.private, &msg).unwrap();
        prop_assert!(pkcs1::verify(&kp.public, &msg, &sig).is_ok());
        if !msg.is_empty() {
            let mut tampered = msg.clone();
            let idx = flip as usize % tampered.len();
            tampered[idx] ^= 0x01;
            if tampered != msg {
                prop_assert!(pkcs1::verify(&kp.public, &tampered, &sig).is_err());
            }
        }
    }
}

proptest! {
    // Each case runs up to two dozen 1024-bit verifications; few cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Batched verification is element-for-element identical to calling
    /// the sequential verifier on each request, across random batch
    /// sizes, corrupted/truncated signatures, and batches mixing two
    /// keys (so the lane kernels see multi-key grouping).
    #[test]
    fn batched_verify_matches_sequential(
        n in 0usize..24,
        key_pick in proptest::collection::vec(any::<bool>(), 24),
        corrupt in proptest::collection::vec(0u8..3, 24),
        flip in proptest::collection::vec(any::<u8>(), 24),
    ) {
        let (ka, kb) = cached_keys();
        let mut digests = Vec::with_capacity(n);
        let mut sigs = Vec::with_capacity(n);
        for i in 0..n {
            let kp = if key_pick[i] { ka } else { kb };
            let msg = [i as u8, flip[i], 0xA5];
            digests.push(tlc_crypto::sha256::digest(&msg));
            let mut sig = pkcs1::sign(&kp.private, &msg).unwrap();
            match corrupt[i] {
                1 => {
                    let idx = flip[i] as usize % sig.len();
                    sig[idx] ^= 0x01; // bad signature, right length
                }
                2 => {
                    sig.truncate(sig.len() / 2); // wrong length
                }
                _ => {}
            }
            sigs.push(sig);
        }
        let reqs: Vec<pkcs1::VerifyRequest<'_>> = (0..n)
            .map(|i| pkcs1::VerifyRequest {
                key: if key_pick[i] { &ka.public } else { &kb.public },
                digest: digests[i],
                signature: &sigs[i],
            })
            .collect();
        let batched = pkcs1::verify_batch(&reqs);
        prop_assert_eq!(batched.len(), n);
        for (i, req) in reqs.iter().enumerate() {
            let sequential = pkcs1::verify_prehashed(req.key, &req.digest, req.signature);
            prop_assert_eq!(&batched[i], &sequential, "element {}", i);
            if corrupt[i] == 0 {
                prop_assert!(batched[i].is_ok(), "untouched element {} rejected", i);
            } else {
                prop_assert!(batched[i].is_err(), "corrupted element {} accepted", i);
            }
        }
    }
}
