//! Interprocedural pass: transitive no-panic over the call graph.
//!
//! The v1 `no-panic` rule matches panic tokens *inside* the protocol
//! files ([`crate::NO_PANIC_PATHS`]). This pass closes the hole v1
//! cannot see: a protocol function calling a helper two (or twenty)
//! hops away that panics. May-panic facts are computed per function
//! and propagated backwards along resolved call edges, so every
//! function defined in a `NO_PANIC_PATHS` file is checked to arbitrary
//! depth; a finding names the offending call chain.
//!
//! Source categories:
//!
//! * **abort-certain** — `panic!`/`unreachable!`/`todo!`/
//!   `unimplemented!` and `.unwrap()`/`.expect()`. Propagated always.
//! * **data-dependent** — slice/array indexing and unchecked
//!   `+ - *` on integer-looking operands. These panic only for some
//!   inputs, and the crypto limb kernels index-by-invariant in every
//!   loop, so propagating them drowns the signal; they are collected
//!   but only propagated under `--strict-panics` (the charge-arith
//!   pass audits the sites where a wrap is a charging bug). See
//!   DESIGN §9.1 for the envelope.
//!
//! Suppression: a local site inside function `f` of file `p` that an
//! allowlist entry `no-panic p f` (or `*`) covers is treated as clean
//! *before* propagation — callers of an invariant-true `expect` are
//! not re-flagged, which is what keeps `LINT_ALLOW` tight.

use crate::allow::AllowEntry;
use crate::graph::CallGraph;
use crate::rules::Finding;
use crate::scan::ScannedFile;
use syn::TokenKind;

/// Macros whose expansion aborts.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// How a local site can panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicCat {
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    Macro,
    /// `.unwrap()` / `.expect(…)`.
    UnwrapExpect,
    /// `x[i]` slice/array indexing.
    Index,
    /// Unchecked `+ - *` on integer-looking operands.
    Arith,
}

impl PanicCat {
    fn propagated(self, strict: bool) -> bool {
        match self {
            PanicCat::Macro | PanicCat::UnwrapExpect => true,
            PanicCat::Index | PanicCat::Arith => strict,
        }
    }
}

/// One may-panic site inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// Which source category.
    pub cat: PanicCat,
    /// 1-based line / column.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Short description (`.unwrap()`, `panic!`, `x[i]`, `+`).
    pub desc: String,
}

/// Why a function may panic: a local site, or a call into a function
/// that (transitively) may panic.
#[derive(Debug, Clone)]
enum Cause {
    Local(PanicSite),
    Via { callee: usize },
}

/// True when the significant token at `si` is a slice/array index
/// opening bracket (`x[…`, `foo()[…`, `a[i][j]`). Attribute brackets
/// (`#[…]`) and array literals (`= […]`, `([…])`) do not qualify:
/// their `[` never follows an operand.
pub fn is_index_at(file: &ScannedFile, si: usize) -> bool {
    let t = file.sig_tok(si);
    if !t.is_punct('[') || si == 0 {
        return false;
    }
    let prev = file.sig_tok(si - 1);
    match prev.kind {
        TokenKind::Ident => !is_keyword(&prev.text),
        TokenKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
        _ => false,
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "match"
            | "return"
            | "in"
            | "as"
            | "mut"
            | "ref"
            | "move"
            | "break"
            | "continue"
            | "loop"
            | "while"
            | "for"
            | "let"
            | "fn"
            | "where"
            | "impl"
            | "dyn"
            | "unsafe"
            | "const"
            | "static"
            | "type"
            | "use"
            | "pub"
            | "crate"
            | "super"
            | "self"
            | "Self"
    )
}

/// Float-looking operand text: a literal with a decimal point or float
/// suffix, or the `f32`/`f64` type idents that end an `as` cast.
fn float_like(text: &str) -> bool {
    text == "f32"
        || text == "f64"
        || (text.chars().next().is_some_and(|c| c.is_ascii_digit())
            && (text.contains('.') || text.ends_with("f32") || text.ends_with("f64")))
}

/// True when the token at `si` is a binary `+`, `-` or `*` (or the
/// operator half of `+=`, `-=`, `*=`) between integer-looking
/// operands. Dereferences, unary minus, `->`, references and
/// float-typed math do not qualify.
pub fn is_unchecked_arith_at(file: &ScannedFile, si: usize) -> bool {
    let t = file.sig_tok(si);
    let op = match t.text.chars().next() {
        Some(c @ ('+' | '-' | '*')) => c,
        _ => return false,
    };
    if t.kind != TokenKind::Punct || si == 0 || si + 1 >= file.sig.len() {
        return false;
    }
    let next = file.sig_tok(si + 1);
    // `->` is a return arrow, not subtraction.
    if op == '-' && next.is_punct('>') {
        return false;
    }
    let prev = file.sig_tok(si - 1);
    // Binary position: the left neighbour must be an operand end.
    let prev_is_operand = match prev.kind {
        TokenKind::Ident => !is_keyword(&prev.text),
        TokenKind::Literal => true,
        TokenKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
        _ => false,
    };
    if !prev_is_operand {
        return false;
    }
    // Right neighbour: operand start — ident, literal, `(`, `*deref`,
    // `&ref`, unary `-`, or `=` (compound assignment).
    let next_is_operand = match next.kind {
        TokenKind::Ident => !is_keyword(&next.text) || next.text == "self",
        TokenKind::Literal => true,
        TokenKind::Punct => {
            next.is_punct('(')
                || next.is_punct('*')
                || next.is_punct('&')
                || next.is_punct('-')
                || next.is_punct('=')
        }
        _ => false,
    };
    if !next_is_operand {
        return false;
    }
    // Float math never aborts; skip when either neighbour is visibly
    // float (`x as f64 * rate`, `0.5 * y`).
    if float_like(&prev.text) || float_like(&next.text) {
        return false;
    }
    true
}

/// Collects the local may-panic sites of one function body, honouring
/// the test mask.
pub fn local_panic_sites(file: &ScannedFile, body: (usize, usize)) -> Vec<PanicSite> {
    let mut out = Vec::new();
    let (start, end) = body;
    for si in start..=end.min(file.sig.len().saturating_sub(1)) {
        if file.sig_in_test(si) {
            continue;
        }
        let t = file.sig_tok(si);
        if t.kind == TokenKind::Ident {
            let next = file.sig.get(si + 1).map(|&r| &file.tokens[r]);
            let prev_dot = si > 0 && file.sig_tok(si - 1).is_punct('.');
            if PANIC_MACROS.contains(&t.text.as_str()) && next.is_some_and(|n| n.is_punct('!')) {
                out.push(PanicSite {
                    cat: PanicCat::Macro,
                    line: t.line,
                    col: t.col,
                    desc: format!("{}!", t.text),
                });
            } else if (t.text == "unwrap" || t.text == "expect")
                && prev_dot
                && next.is_some_and(|n| n.is_punct('('))
            {
                out.push(PanicSite {
                    cat: PanicCat::UnwrapExpect,
                    line: t.line,
                    col: t.col,
                    desc: format!(".{}()", t.text),
                });
            }
        } else if is_index_at(file, si) {
            out.push(PanicSite {
                cat: PanicCat::Index,
                line: t.line,
                col: t.col,
                desc: "indexing".to_string(),
            });
        } else if is_unchecked_arith_at(file, si) {
            out.push(PanicSite {
                cat: PanicCat::Arith,
                line: t.line,
                col: t.col,
                desc: format!("unchecked `{}`", t.text),
            });
        }
    }
    out
}

/// Whether an allowlist entry suppresses a local panic site inside
/// `fn_name` of `path` (matched under the v1 `no-panic` rule or this
/// pass's `transitive-no-panic`).
fn site_allowed(allow: &[AllowEntry], path: &str, fn_name: &str, enclosing: &str) -> bool {
    allow.iter().any(|e| {
        (e.rule == "no-panic" || e.rule == "transitive-no-panic")
            && e.path == path
            && (e.item == "*" || e.item == fn_name || e.item == enclosing)
    })
}

/// Runs the pass: findings for every `NO_PANIC_PATHS` function whose
/// call chain reaches a panic site outside itself.
pub fn check(
    graph: &CallGraph<'_>,
    roots_under: &[&str],
    allow: &[AllowEntry],
    strict: bool,
) -> Vec<Finding> {
    let n = graph.fns.len();
    let is_root: Vec<bool> = (0..n)
        .map(|id| {
            let path = graph.fn_path(id);
            roots_under.iter().any(|p| path.starts_with(p))
                && !graph.fns[id].is_test
                && graph.files[graph.fns[id].file].kind == crate::scan::FileKind::Src
        })
        .collect();

    // Unsuppressed, propagation-eligible local cause per function.
    let local: Vec<Option<PanicSite>> = (0..n)
        .map(|id| {
            let f = &graph.fns[id];
            if f.is_test || graph.files[f.file].kind != crate::scan::FileKind::Src {
                return None;
            }
            let file = &graph.files[f.file];
            let body = f.body?;
            local_panic_sites(file, body)
                .into_iter()
                .filter(|s| s.cat.propagated(strict))
                .find(|s| {
                    let enclosing = site_item(file, body, s);
                    !site_allowed(allow, &file.rel_path, &f.name, &enclosing)
                })
        })
        .collect();

    // Memoized backwards propagation. Roots are opaque as callees —
    // their own analysis reports deeper chains once, instead of every
    // transitive caller repeating them.
    let mut memo: Vec<Option<Option<Cause>>> = vec![None; n];
    let mut on_stack = vec![false; n];
    for id in 0..n {
        may_panic(graph, &local, &is_root, &mut memo, &mut on_stack, id);
    }

    let mut findings = Vec::new();
    for root in (0..n).filter(|&id| is_root[id]) {
        for call in &graph.calls[root] {
            // Local sites are v1's domain; this pass reports reaches
            // *through calls* only.
            let Some(&callee) = call.callees.iter().find(|&&c| {
                !is_root[c]
                    && graph.files[graph.fns[c].file].kind == crate::scan::FileKind::Src
                    && cause_of(&memo, c).is_some()
            }) else {
                continue;
            };
            let chain = build_chain(graph, &memo, root, callee);
            findings.push(Finding {
                rule: "transitive-no-panic",
                path: graph.fn_path(root).to_string(),
                line: call.line,
                col: call.col,
                item: graph.fns[root].name.clone(),
                message: chain,
            });
            break; // one finding per root function keeps reports readable
        }
    }
    findings
}

fn cause_of(memo: &[Option<Option<Cause>>], id: usize) -> Option<&Cause> {
    memo.get(id)
        .and_then(|m| m.as_ref())
        .and_then(|c| c.as_ref())
}

fn may_panic(
    graph: &CallGraph<'_>,
    local: &[Option<PanicSite>],
    is_root: &[bool],
    memo: &mut [Option<Option<Cause>>],
    on_stack: &mut [bool],
    id: usize,
) -> bool {
    if let Some(m) = &memo[id] {
        return m.is_some();
    }
    if on_stack[id] {
        // Recursion cycle: assume clean along this edge; any real
        // panic in the cycle is found from the entry point.
        return false;
    }
    on_stack[id] = true;
    let mut cause: Option<Cause> = local[id].clone().map(Cause::Local);
    if cause.is_none() {
        'calls: for call in &graph.calls[id] {
            for &callee in &call.callees {
                if is_root[callee]
                    || graph.files[graph.fns[callee].file].kind != crate::scan::FileKind::Src
                {
                    // Root fns are an opaque boundary (reported at that
                    // root); test/bench-file fns are bogus resolutions.
                    continue;
                }
                if may_panic(graph, local, is_root, memo, on_stack, callee) {
                    cause = Some(Cause::Via { callee });
                    break 'calls;
                }
            }
        }
    }
    on_stack[id] = false;
    let hit = cause.is_some();
    memo[id] = Some(cause);
    hit
}

/// Innermost named item at a panic site (what v1 findings key on).
fn site_item(file: &ScannedFile, body: (usize, usize), site: &PanicSite) -> String {
    for si in body.0..=body.1.min(file.sig.len().saturating_sub(1)) {
        let t = file.sig_tok(si);
        if t.line == site.line && t.col == site.col {
            return file.sig_item(si).to_string();
        }
    }
    String::new()
}

/// `root -> a -> b: .unwrap() at crates/x.rs:12` chain message.
fn build_chain(
    graph: &CallGraph<'_>,
    memo: &[Option<Option<Cause>>],
    root: usize,
    first: usize,
) -> String {
    let mut labels = vec![graph.fn_label(root)];
    let mut cur = first;
    let mut hops = 0usize;
    loop {
        labels.push(graph.fn_label(cur));
        hops += 1;
        match cause_of(memo, cur) {
            Some(Cause::Via { callee, .. }) => {
                if hops > 12 {
                    labels.push("…".to_string());
                    return format!(
                        "call chain may panic: {} (chain truncated)",
                        labels.join(" -> ")
                    );
                }
                cur = *callee;
            }
            Some(Cause::Local(site)) => {
                return format!(
                    "call chain may panic: {}; {} at {}:{}",
                    labels.join(" -> "),
                    site.desc,
                    graph.fn_path(cur),
                    site.line
                );
            }
            None => {
                // Unreachable by construction; keep a sane message.
                return format!("call chain may panic: {}", labels.join(" -> "));
            }
        }
    }
}
