//! `tlc-lint` CLI.
//!
//! ```text
//! cargo run -p tlc-lint -- check [--root DIR] [--allowlist FILE]
//!                                [--json] [--github] [--strict-panics]
//! cargo run -p tlc-lint -- rules
//! ```
//!
//! `--json` prints one machine-readable JSON object; `--github`
//! additionally emits GitHub Actions `::error` annotations so findings
//! land inline on the PR diff; `--strict-panics` also propagates
//! indexing / unchecked-arithmetic panic sources through the call
//! graph (audit mode, not a gate — see DESIGN §9.1).
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: tlc-lint <check [--root DIR] [--allowlist FILE] [--json] [--github] [--strict-panics] | rules>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("rules") => {
            for (rule, doc) in tlc_lint::rules::RULES {
                println!("{rule:16} {doc}");
            }
            ExitCode::SUCCESS
        }
        Some("check") => {
            let mut root: Option<PathBuf> = None;
            let mut allowlist: Option<PathBuf> = None;
            let mut json = false;
            let mut github = false;
            let mut opts = tlc_lint::CheckOptions::default();
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--root" => match it.next() {
                        Some(v) => root = Some(PathBuf::from(v)),
                        None => return usage(),
                    },
                    "--allowlist" => match it.next() {
                        Some(v) => allowlist = Some(PathBuf::from(v)),
                        None => return usage(),
                    },
                    "--json" => json = true,
                    "--github" => github = true,
                    "--strict-panics" => opts.strict_panics = true,
                    _ => return usage(),
                }
            }
            let root = match root.or_else(|| {
                std::env::current_dir()
                    .ok()
                    .and_then(|d| tlc_lint::find_workspace_root(&d))
            }) {
                Some(r) => r,
                None => {
                    eprintln!("tlc-lint: no workspace root found (pass --root)");
                    return ExitCode::from(2);
                }
            };
            let allow_path = allowlist.unwrap_or_else(|| root.join(tlc_lint::ALLOWLIST_FILE));
            match tlc_lint::run_check_opts(&root, &allow_path, opts) {
                Ok(report) => {
                    if json {
                        println!("{}", tlc_lint::json::report_json(&report));
                    } else {
                        for f in &report.findings {
                            println!("{f}");
                        }
                    }
                    if github && !report.is_clean() {
                        println!("{}", tlc_lint::json::github_annotations(&report));
                    }
                    if report.is_clean() {
                        if !json {
                            println!(
                                "tlc-lint: clean ({} files, {} rules)",
                                report.files_scanned,
                                tlc_lint::rules::RULES.len()
                            );
                        }
                        ExitCode::SUCCESS
                    } else {
                        if !json {
                            println!(
                                "tlc-lint: {} finding(s) across {} files",
                                report.findings.len(),
                                report.files_scanned
                            );
                        }
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("tlc-lint: {e}");
                    ExitCode::from(2)
                }
            }
        }
        _ => usage(),
    }
}
