//! Token-stream prepass shared by every rule.
//!
//! `syn` (the vendored lexer) gives us exact tokens with spans and
//! preserved comments; this module layers the two pieces of context the
//! rules need on top of that stream:
//!
//! * a **test mask** — tokens inside `#[cfg(test)]` items or `#[test]`
//!   functions, which the production-code rules skip, and
//! * an **enclosing-item map** — the innermost named `fn` / `struct` /
//!   `enum` / `trait` / `mod` each token sits in, which is what
//!   allowlist entries key on (names are stable under reformatting;
//!   line numbers are not).

use syn::{File, Token, TokenKind};

/// What kind of target a file is, by its path inside the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library / binary source under `src/`.
    Src,
    /// Integration tests (`tests/` directories).
    Tests,
    /// Criterion benches (`benches/` directories).
    Benches,
    /// Examples (`examples/` directories).
    Examples,
}

/// A lexed file plus the per-token context the rules consume.
pub struct ScannedFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Target kind derived from the path.
    pub kind: FileKind,
    /// The full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the significant (non-comment) tokens.
    pub sig: Vec<usize>,
    /// `in_test[i]` — token `i` is inside test-only code.
    pub in_test: Vec<bool>,
    /// `item_of[i]` — name of the innermost named item containing
    /// token `i` (empty at module top level).
    pub item_of: Vec<String>,
}

/// Keywords that introduce a named item whose name we track.
const NAMED_ITEMS: &[&str] = &["fn", "struct", "enum", "trait", "mod", "union"];

impl ScannedFile {
    /// Lexes `src` and computes the rule context. `rel_path` decides
    /// the [`FileKind`].
    pub fn parse(rel_path: &str, src: &str) -> Result<ScannedFile, syn::Error> {
        let File { tokens } = syn::parse_file(src)?;
        let sig: Vec<usize> = (0..tokens.len())
            .filter(|&i| tokens[i].is_significant())
            .collect();
        let in_test = test_mask(&tokens, &sig);
        let item_of = item_map(&tokens, &sig);
        Ok(ScannedFile {
            rel_path: rel_path.to_string(),
            kind: file_kind(rel_path),
            tokens,
            sig,
            in_test,
            item_of,
        })
    }

    /// The significant token at significant-position `si`.
    pub fn sig_tok(&self, si: usize) -> &Token {
        &self.tokens[self.sig[si]]
    }

    /// Enclosing item name of the significant token at position `si`.
    pub fn sig_item(&self, si: usize) -> &str {
        &self.item_of[self.sig[si]]
    }

    /// Whether the significant token at position `si` is in test code.
    pub fn sig_in_test(&self, si: usize) -> bool {
        self.in_test[self.sig[si]]
    }
}

fn file_kind(rel_path: &str) -> FileKind {
    let p = rel_path;
    if p.starts_with("tests/") || p.contains("/tests/") {
        FileKind::Tests
    } else if p.starts_with("benches/") || p.contains("/benches/") {
        FileKind::Benches
    } else if p.starts_with("examples/") || p.contains("/examples/") {
        FileKind::Examples
    } else {
        FileKind::Src
    }
}

/// Given the start of an attribute (`#` at `sig[si]`), returns
/// `(idents inside the attribute, significant position just past the
/// closing `]`)`. Returns `None` if the shape is not an attribute.
fn attr_extent(tokens: &[Token], sig: &[usize], si: usize) -> Option<(Vec<String>, usize)> {
    let mut i = si;
    if !tokens[sig[i]].is_punct('#') {
        return None;
    }
    i += 1;
    if i < sig.len() && tokens[sig[i]].is_punct('!') {
        i += 1;
    }
    if i >= sig.len() || !tokens[sig[i]].is_punct('[') {
        return None;
    }
    let mut depth = 0usize;
    let mut idents = Vec::new();
    while i < sig.len() {
        let t = &tokens[sig[i]];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some((idents, i + 1));
            }
        } else if t.kind == TokenKind::Ident {
            idents.push(t.text.clone());
        }
        i += 1;
    }
    None
}

/// True when an attribute's ident list marks test-only code:
/// `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`, ….
fn is_test_attr(idents: &[String]) -> bool {
    match idents.first().map(String::as_str) {
        Some("test") => true,
        Some("cfg") => idents.iter().any(|s| s == "test"),
        _ => false,
    }
}

/// Marks every token belonging to an item annotated with a test
/// attribute. The item extends from the attribute through the matching
/// close brace of its body (or through `;` for body-less items).
fn test_mask(tokens: &[Token], sig: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut si = 0usize;
    while si < sig.len() {
        let start_raw = sig[si];
        if let Some((idents, mut after)) = attr_extent(tokens, sig, si) {
            if is_test_attr(&idents) {
                // Skip any further attributes on the same item.
                while after < sig.len() {
                    match attr_extent(tokens, sig, after) {
                        Some((_, next)) => after = next,
                        None => break,
                    }
                }
                // Find the item extent: first `{` … matching `}`, or a
                // `;` before any brace opens.
                let mut depth = 0usize;
                let mut j = after;
                let mut end_raw = tokens.len().saturating_sub(1);
                while j < sig.len() {
                    let t = &tokens[sig[j]];
                    if t.is_punct('{') {
                        depth += 1;
                    } else if t.is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            end_raw = sig[j];
                            break;
                        }
                    } else if t.is_punct(';') && depth == 0 {
                        end_raw = sig[j];
                        break;
                    }
                    j += 1;
                }
                for slot in mask.iter_mut().take(end_raw + 1).skip(start_raw) {
                    *slot = true;
                }
                // Resume scanning after the masked item.
                while si < sig.len() && sig[si] <= end_raw {
                    si += 1;
                }
                continue;
            }
            si = after;
            continue;
        }
        si += 1;
    }
    mask
}

/// Computes the innermost enclosing named item for every token.
fn item_map(tokens: &[Token], sig: &[usize]) -> Vec<String> {
    let mut out = vec![String::new(); tokens.len()];
    // (name, brace depth its body opened at)
    let mut stack: Vec<(String, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut pending: Option<String> = None;

    let mut si = 0usize;
    // Raw index up to which `out` has been filled.
    let mut filled = 0usize;
    while si < sig.len() {
        let raw = sig[si];
        let current = stack.last().map(|(n, _)| n.clone()).unwrap_or_default();
        for slot in out.iter_mut().take(raw + 1).skip(filled) {
            *slot = current.clone();
        }
        filled = raw + 1;

        let t = &tokens[raw];
        if t.kind == TokenKind::Ident && NAMED_ITEMS.contains(&t.text.as_str()) {
            // The next significant ident is the item's name.
            if let Some(name_tok) = sig.get(si + 1).map(|&r| &tokens[r]) {
                if name_tok.kind == TokenKind::Ident {
                    pending = Some(name_tok.text.clone());
                }
            }
        } else if t.is_punct('{') {
            depth += 1;
            if let Some(name) = pending.take() {
                stack.push((name, depth));
            }
        } else if t.is_punct('}') {
            if stack.last().is_some_and(|(_, d)| *d == depth) {
                stack.pop();
            }
            depth = depth.saturating_sub(1);
        } else if t.is_punct(';') && depth == stack.last().map(|(_, d)| *d).unwrap_or(0) {
            // `struct Foo;`, trait method signatures, `mod m;` — the
            // pending name never opened a body.
            pending = None;
        }
        si += 1;
    }
    let tail = stack.last().map(|(n, _)| n.clone()).unwrap_or_default();
    for slot in out.iter_mut().skip(filled) {
        *slot = tail.clone();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> ScannedFile {
        ScannedFile::parse("crates/x/src/lib.rs", src).unwrap()
    }

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let f = scan("fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n");
        let unwrap_idx = f
            .tokens
            .iter()
            .position(|t| t.text == "unwrap")
            .expect("token present");
        assert!(f.in_test[unwrap_idx]);
        let live_idx = f.tokens.iter().position(|t| t.text == "live").unwrap();
        assert!(!f.in_test[live_idx]);
    }

    #[test]
    fn test_mask_covers_test_fn_with_stacked_attrs() {
        let f = scan("#[test]\n#[ignore]\nfn t() { panic!(\"x\") }\nfn live() {}\n");
        let panic_idx = f.tokens.iter().position(|t| t.text == "panic").unwrap();
        assert!(f.in_test[panic_idx]);
        let live_idx = f.tokens.iter().rposition(|t| t.text == "live").unwrap();
        assert!(!f.in_test[live_idx]);
    }

    #[test]
    fn item_map_tracks_nesting() {
        let f = scan("mod outer {\n fn inner() { let x = 1; }\n struct S { f: u32 }\n}\n");
        let x_idx = f.tokens.iter().position(|t| t.text == "x").unwrap();
        assert_eq!(f.item_of[x_idx], "inner");
        let field_idx = f.tokens.iter().position(|t| t.text == "f").unwrap();
        assert_eq!(f.item_of[field_idx], "S");
    }

    #[test]
    fn item_map_survives_bodyless_items() {
        let f = scan("struct Unit;\ntrait T { fn sig(&self); }\nfn after() { work(); }\n");
        let work_idx = f.tokens.iter().position(|t| t.text == "work").unwrap();
        assert_eq!(f.item_of[work_idx], "after");
    }

    #[test]
    fn file_kinds_from_paths() {
        assert_eq!(file_kind("crates/core/src/lib.rs"), FileKind::Src);
        assert_eq!(file_kind("crates/core/tests/loom.rs"), FileKind::Tests);
        assert_eq!(file_kind("tests/integration_protocol.rs"), FileKind::Tests);
        assert_eq!(file_kind("examples/quickstart.rs"), FileKind::Examples);
        assert_eq!(
            file_kind("crates/bench/benches/fig17_poc_cost.rs"),
            FileKind::Benches
        );
    }
}
