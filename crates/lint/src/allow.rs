//! The checked allowlist for grandfathered / invariant-true sites.
//!
//! Format (one entry per line, `#` starts a comment):
//!
//! ```text
//! <rule> <path> <item>    # why this site is exempt
//! ```
//!
//! `item` is the innermost enclosing named item the lint reports, or
//! `*` to cover a whole file (used for modules whose purpose is the
//! exempted behaviour, e.g. the deadline machinery in
//! `verify::service`). Keying on item names instead of line numbers
//! keeps entries stable across reformatting.
//!
//! The list is *checked*: an entry that suppresses nothing is itself a
//! lint error, so stale exemptions cannot accumulate.

use crate::rules::{Finding, RULES};

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the entry applies to.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// Enclosing item name, or `*` for the whole file.
    pub item: String,
    /// 1-based line in the allowlist file (for stale-entry reports).
    pub line: u32,
}

impl AllowEntry {
    fn matches(&self, f: &Finding) -> bool {
        self.rule == f.rule && self.path == f.path && (self.item == "*" || self.item == f.item)
    }
}

/// Parses allowlist text. Malformed lines and unknown rule ids are
/// reported as findings against the allowlist file itself.
pub fn parse(allow_path: &str, text: &str) -> (Vec<AllowEntry>, Vec<Finding>) {
    let mut entries = Vec::new();
    let mut findings = Vec::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 3 {
            findings.push(Finding {
                rule: "allowlist",
                path: allow_path.to_string(),
                line: line_no,
                col: 1,
                item: String::new(),
                message: format!("malformed entry (want `<rule> <path> <item>`): {raw_line:?}"),
            });
            continue;
        }
        if !RULES.iter().any(|(r, _)| *r == fields[0]) {
            findings.push(Finding {
                rule: "allowlist",
                path: allow_path.to_string(),
                line: line_no,
                col: 1,
                item: String::new(),
                message: format!("unknown rule `{}`", fields[0]),
            });
            continue;
        }
        let entry = AllowEntry {
            rule: fields[0].to_string(),
            path: fields[1].to_string(),
            item: fields[2].to_string(),
            line: line_no,
        };
        if let Some(first) = entries.iter().find(|e: &&AllowEntry| {
            e.rule == entry.rule && e.path == entry.path && e.item == entry.item
        }) {
            findings.push(Finding {
                rule: "allowlist",
                path: allow_path.to_string(),
                line: line_no,
                col: 1,
                item: entry.item.clone(),
                message: format!(
                    "duplicate entry `{} {} {}` (first on line {})",
                    entry.rule, entry.path, entry.item, first.line
                ),
            });
            continue;
        }
        entries.push(entry);
    }
    (entries, findings)
}

/// Applies the allowlist: returns the findings that survive, plus a
/// stale-entry finding for every entry that matched nothing.
pub fn apply(allow_path: &str, entries: &[AllowEntry], findings: Vec<Finding>) -> Vec<Finding> {
    let mut used = vec![false; entries.len()];
    let mut kept = Vec::new();
    for f in findings {
        let mut suppressed = false;
        for (i, e) in entries.iter().enumerate() {
            if e.matches(&f) {
                used[i] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            kept.push(f);
        }
    }
    for (i, e) in entries.iter().enumerate() {
        if !used[i] {
            kept.push(Finding {
                rule: "allowlist",
                path: allow_path.to_string(),
                line: e.line,
                col: 1,
                item: e.item.clone(),
                message: format!(
                    "stale allowlist entry `{} {} {}` suppresses nothing; remove it",
                    e.rule, e.path, e.item
                ),
            });
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &'static str, path: &str, item: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line: 1,
            col: 1,
            item: item.to_string(),
            message: String::new(),
        }
    }

    #[test]
    fn entries_suppress_by_item_and_wildcard() {
        let (entries, errs) = parse(
            "LINT_ALLOW",
            "no-panic crates/a/src/x.rs foo # invariant\ndeterminism crates/a/src/y.rs *\n",
        );
        assert!(errs.is_empty());
        let kept = apply(
            "LINT_ALLOW",
            &entries,
            vec![
                f("no-panic", "crates/a/src/x.rs", "foo"),
                f("no-panic", "crates/a/src/x.rs", "bar"),
                f("determinism", "crates/a/src/y.rs", "anything"),
            ],
        );
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].item, "bar");
    }

    #[test]
    fn stale_entries_are_errors() {
        let (entries, _) = parse("LINT_ALLOW", "no-panic crates/a/src/x.rs gone\n");
        let kept = apply("LINT_ALLOW", &entries, vec![]);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rule, "allowlist");
        assert!(kept[0].message.contains("stale"));
    }

    #[test]
    fn malformed_and_unknown_rules_are_errors() {
        let (entries, errs) = parse("LINT_ALLOW", "just-two fields\nnot-a-rule a b\n");
        assert!(entries.is_empty());
        assert_eq!(errs.len(), 2);
    }
}
