//! Interprocedural pass: lock-order cycle detection.
//!
//! Per function, collects `Mutex`/`RwLock` guard acquisitions — a
//! `.lock()`, `.read()` or `.write()` call with an *empty* argument
//! list (which is what separates `mutex.read()` from
//! `io::Read::read(&mut buf)`) — and tracks each guard's live extent:
//!
//! * `let g = x.lock()…;` — to the end of the enclosing block, or an
//!   earlier explicit `drop(g)`;
//! * a temporary (`x.lock().unwrap().push(…)`) — to the end of the
//!   statement.
//!
//! A second acquisition inside a live extent yields an order edge
//! `held → acquired`. Calls inside a live extent add edges from the
//! held lock to everything the callee (transitively) acquires, so an
//! order split across `event_loop.rs` and `service.rs` is still seen.
//! A cycle in the resulting lock graph is a potential deadlock and is
//! reported once, with one representative acquisition site per edge.
//!
//! Lock identity is the last field name of the receiver chain,
//! qualified by the impl type when the receiver is `self`
//! (`self.stats.lock()` in `impl BufPool` → `BufPool.stats`). Two
//! unrelated locks that share a bare field name can therefore alias —
//! conservative in the direction of reporting, never of missing.

use crate::graph::CallGraph;
use crate::rules::Finding;
use crate::scan::ScannedFile;
use std::collections::{BTreeMap, BTreeSet};
use syn::TokenKind;

/// Guard-returning method names with an empty argument list.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// One lock acquisition inside a function body.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Lock identity (`Type.field` or `field`).
    pub lock: String,
    /// Significant position of the method name.
    pub si: usize,
    /// Significant position one past the guard's live extent.
    pub end_si: usize,
    /// 1-based line of the method name.
    pub line: u32,
    /// 1-based column of the method name.
    pub col: u32,
}

/// Where an order edge was observed (for the report).
#[derive(Debug, Clone)]
struct EdgeSite {
    path: String,
    line: u32,
    col: u32,
    item: String,
    via_call: Option<String>,
}

/// Collects the acquisitions of one function body with live extents.
pub fn acquisitions(
    file: &ScannedFile,
    impl_type: Option<&str>,
    body: (usize, usize),
) -> Vec<Acquisition> {
    let (start, end) = body;
    let end = end.min(file.sig.len().saturating_sub(1));
    let mut out: Vec<Acquisition> = Vec::new();
    let mut depth = 0usize;
    // (guard name or None, lock index into `out`, depth at acquisition)
    let mut live: Vec<(Option<String>, usize, usize)> = Vec::new();
    for si in start..=end {
        if file.sig_in_test(si) {
            continue;
        }
        let t = file.sig_tok(si);
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            // Block close releases let-bound guards opened inside it.
            live.retain(|&(ref name, idx, d)| {
                if d > depth && name.is_some() {
                    out[idx].end_si = si;
                    false
                } else {
                    true
                }
            });
        } else if t.is_punct(';') {
            // Statement end releases temporaries at this depth.
            live.retain(|&(ref name, idx, d)| {
                if name.is_none() && d == depth {
                    out[idx].end_si = si;
                    false
                } else {
                    true
                }
            });
        } else if t.is_ident("drop")
            && file
                .sig
                .get(si + 1)
                .is_some_and(|&r| file.tokens[r].is_punct('('))
        {
            if let Some(arg) = file.sig.get(si + 2).map(|&r| &file.tokens[r]) {
                if arg.kind == TokenKind::Ident {
                    live.retain(|&(ref name, idx, _)| {
                        if name.as_deref() == Some(arg.text.as_str()) {
                            out[idx].end_si = si;
                            false
                        } else {
                            true
                        }
                    });
                }
            }
        } else if is_acquire_at(file, si) {
            let lock = lock_id(file, si, impl_type);
            let name = binding_name(file, body.0, si);
            let idx = out.len();
            out.push(Acquisition {
                lock,
                si,
                end_si: end + 1, // tentative: open to body end
                line: t.line,
                col: t.col,
            });
            live.push((name, idx, depth));
        }
    }
    out
}

/// `.lock()` / `.read()` / `.write()` with an empty argument list.
fn is_acquire_at(file: &ScannedFile, si: usize) -> bool {
    let t = file.sig_tok(si);
    if t.kind != TokenKind::Ident || !ACQUIRE_METHODS.contains(&t.text.as_str()) {
        return false;
    }
    if si == 0 || !file.sig_tok(si - 1).is_punct('.') {
        return false;
    }
    file.sig
        .get(si + 1)
        .is_some_and(|&r| file.tokens[r].is_punct('('))
        && file
            .sig
            .get(si + 2)
            .is_some_and(|&r| file.tokens[r].is_punct(')'))
}

/// Lock identity from the receiver chain ending at the `.` before `si`.
fn lock_id(file: &ScannedFile, si: usize, impl_type: Option<&str>) -> String {
    // Walk back over `ident . ident . method` collecting the chain.
    let mut chain: Vec<String> = Vec::new();
    let mut i = si - 1; // the `.`
    loop {
        if i == 0 {
            break;
        }
        i -= 1; // candidate ident
        let t = file.sig_tok(i);
        if t.kind != TokenKind::Ident {
            break;
        }
        chain.push(t.text.clone());
        if i == 0 || !file.sig_tok(i - 1).is_punct('.') {
            break;
        }
        i -= 1; // the next `.`
    }
    chain.reverse();
    let field = chain
        .iter()
        .rev()
        .find(|s| *s != "self")
        .cloned()
        .unwrap_or_else(|| "<unnamed>".to_string());
    match (chain.first().map(String::as_str), impl_type) {
        (Some("self"), Some(ty)) => format!("{ty}.{field}"),
        _ => field,
    }
}

/// If the statement containing `si` is `let [mut] name = …`, the
/// binding name. Scans back to the previous `;`/`{`/`}` within the body.
fn binding_name(file: &ScannedFile, body_start: usize, si: usize) -> Option<String> {
    let mut i = si;
    while i > body_start {
        i -= 1;
        let t = file.sig_tok(i);
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        if t.is_ident("let") {
            let mut j = i + 1;
            if file
                .sig
                .get(j)
                .is_some_and(|&r| file.tokens[r].is_ident("mut"))
            {
                j += 1;
            }
            let name = file.sig.get(j).map(|&r| &file.tokens[r])?;
            if name.kind == TokenKind::Ident {
                return Some(name.text.clone());
            }
            return None;
        }
    }
    None
}

/// Transitive lock set per function (locks it may acquire, directly or
/// via calls), via memoized DFS with a recursion guard.
fn transitive_locks(
    graph: &CallGraph<'_>,
    local: &[Vec<Acquisition>],
    memo: &mut Vec<Option<BTreeSet<String>>>,
    on_stack: &mut [bool],
    id: usize,
) -> BTreeSet<String> {
    if let Some(s) = &memo[id] {
        return s.clone();
    }
    if on_stack[id] {
        return BTreeSet::new();
    }
    on_stack[id] = true;
    let mut set: BTreeSet<String> = local[id].iter().map(|a| a.lock.clone()).collect();
    for call in &graph.calls[id] {
        for &callee in &call.callees {
            set.extend(transitive_locks(graph, local, memo, on_stack, callee));
        }
    }
    on_stack[id] = false;
    memo[id] = Some(set.clone());
    set
}

/// Runs the pass over the whole workspace graph.
pub fn check(graph: &CallGraph<'_>) -> Vec<Finding> {
    let n = graph.fns.len();
    let local: Vec<Vec<Acquisition>> = (0..n)
        .map(|id| {
            let f = &graph.fns[id];
            // Test-only lock usage (including on-disk lint fixtures under
            // tests/) cannot deadlock production; scope the pass to Src.
            if f.is_test || graph.files[f.file].kind != crate::scan::FileKind::Src {
                return Vec::new();
            }
            match f.body {
                Some(body) => acquisitions(&graph.files[f.file], f.impl_type.as_deref(), body),
                None => Vec::new(),
            }
        })
        .collect();

    let mut memo: Vec<Option<BTreeSet<String>>> = vec![None; n];
    let mut on_stack = vec![false; n];
    for id in 0..n {
        transitive_locks(graph, &local, &mut memo, &mut on_stack, id);
    }

    // Order edges: held → acquired, each with one representative site.
    let mut edges: BTreeMap<(String, String), EdgeSite> = BTreeMap::new();
    for (id, held) in local.iter().enumerate() {
        let f = &graph.fns[id];
        let file = &graph.files[f.file];
        for a in held {
            // Direct nesting.
            for b in held {
                if b.si > a.si && b.si < a.end_si && a.lock != b.lock {
                    edges
                        .entry((a.lock.clone(), b.lock.clone()))
                        .or_insert_with(|| EdgeSite {
                            path: file.rel_path.clone(),
                            line: b.line,
                            col: b.col,
                            item: f.name.clone(),
                            via_call: None,
                        });
                }
            }
            // Calls inside the extent: edge to the callee's whole set.
            for call in &graph.calls[id] {
                if call.si <= a.si || call.si >= a.end_si {
                    continue;
                }
                for &callee in &call.callees {
                    let Some(set) = &memo[callee] else { continue };
                    for lock in set {
                        if *lock == a.lock {
                            continue;
                        }
                        edges
                            .entry((a.lock.clone(), lock.clone()))
                            .or_insert_with(|| EdgeSite {
                                path: file.rel_path.clone(),
                                line: call.line,
                                col: call.col,
                                item: f.name.clone(),
                                via_call: Some(graph.fn_label(callee)),
                            });
                    }
                }
            }
        }
    }

    cycles(&edges)
        .into_iter()
        .map(|cycle| {
            let site = &edges[&(cycle[0].clone(), cycle[1].clone())];
            let mut ring = cycle.clone();
            ring.push(cycle[0].clone());
            let legs: Vec<String> = cycle
                .iter()
                .zip(cycle.iter().cycle().skip(1))
                .map(|(a, b)| {
                    let s = &edges[&(a.clone(), b.clone())];
                    match &s.via_call {
                        Some(callee) => format!(
                            "`{b}` via call to {callee} while holding `{a}` at {}:{}",
                            s.path, s.line
                        ),
                        None => {
                            format!("`{b}` while holding `{a}` at {}:{}", s.path, s.line)
                        }
                    }
                })
                .collect();
            Finding {
                rule: "lock-order",
                path: site.path.clone(),
                line: site.line,
                col: site.col,
                item: site.item.clone(),
                message: format!(
                    "lock-order cycle {}: acquired {}",
                    ring.join(" -> "),
                    legs.join("; ")
                ),
            }
        })
        .collect()
}

/// Elementary cycles of the lock graph, canonicalised (rotated so the
/// smallest lock id leads) and deduplicated.
fn cycles(edges: &BTreeMap<(String, String), EdgeSite>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let mut found: BTreeSet<Vec<String>> = BTreeSet::new();
    for &start in adj.keys() {
        let mut path: Vec<&str> = vec![start];
        dfs_cycles(start, start, &adj, &mut path, &mut found);
    }
    found.into_iter().collect()
}

fn dfs_cycles<'a>(
    start: &str,
    cur: &str,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    path: &mut Vec<&'a str>,
    found: &mut BTreeSet<Vec<String>>,
) {
    let Some(nexts) = adj.get(cur) else { return };
    for &next in nexts {
        if next == start {
            // Canonical rotation: smallest id first.
            let min_pos = path
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| **s)
                .map(|(i, _)| i)
                .unwrap_or(0);
            let canon: Vec<String> = path
                .iter()
                .cycle()
                .skip(min_pos)
                .take(path.len())
                .map(|s| s.to_string())
                .collect();
            found.insert(canon);
        } else if !path.contains(&next) && path.len() < 8 {
            path.push(next);
            dfs_cycles(start, next, adj, path, found);
            path.pop();
        }
    }
}
