//! Machine-readable report output: `--json` for tooling, `--github`
//! for GitHub Actions `::error` annotations.
//!
//! Hand-rolled serialization — findings are flat records and pulling a
//! serde dependency into the lint binary for five fields per finding
//! is not worth the build edge.

use crate::rules::Finding;
use crate::Report;

/// JSON string escape per RFC 8259 (the subset our messages can hit).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &Finding) -> String {
    format!(
        "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"item\":\"{}\",\"message\":\"{}\"}}",
        esc(f.rule),
        esc(&f.path),
        f.line,
        f.col,
        esc(&f.item),
        esc(&f.message)
    )
}

/// The whole report as a single JSON object:
/// `{"clean":bool,"files_scanned":n,"findings":[…]}`.
pub fn report_json(report: &Report) -> String {
    let findings: Vec<String> = report.findings.iter().map(finding_json).collect();
    format!(
        "{{\"clean\":{},\"files_scanned\":{},\"findings\":[{}]}}",
        report.is_clean(),
        report.files_scanned,
        findings.join(",")
    )
}

/// GitHub Actions workflow-command escape for the message part:
/// `%`, `\r`, `\n` are the command-data escapes.
fn gha_data(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// GitHub Actions property escape (also escapes `:` and `,`).
fn gha_prop(s: &str) -> String {
    gha_data(s).replace(':', "%3A").replace(',', "%2C")
}

/// One `::error` annotation line per finding.
pub fn github_annotations(report: &Report) -> String {
    report
        .findings
        .iter()
        .map(|f| {
            format!(
                "::error file={},line={},col={},title=tlc-lint {}::{}",
                gha_prop(&f.path),
                f.line,
                f.col,
                gha_prop(f.rule),
                gha_data(&f.message)
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> Report {
        Report {
            findings: vec![Finding {
                rule: "charge-arith",
                path: "crates/sim/src/soa.rs".to_string(),
                line: 99,
                col: 13,
                item: "merge".to_string(),
                message: "unchecked `+=` on \"total_sent\"\nsecond line".to_string(),
            }],
            files_scanned: 143,
        }
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        let j = report_json(&report());
        assert!(j.contains("\"files_scanned\":143"));
        assert!(j.contains("\\\"total_sent\\\""));
        assert!(j.contains("\\n"));
        assert!(!j.contains('\n'), "single-line output");
    }

    #[test]
    fn github_annotation_escapes_command_data() {
        let a = github_annotations(&report());
        assert!(a.starts_with("::error file=crates/sim/src/soa.rs,line=99,col=13"));
        assert!(a.contains("%0A"), "newline escaped");
        assert!(
            !a.contains("\nsecond"),
            "no raw newline inside one annotation"
        );
    }

    #[test]
    fn empty_report_is_clean_json() {
        let r = Report {
            findings: vec![],
            files_scanned: 7,
        };
        assert_eq!(
            report_json(&r),
            "{\"clean\":true,\"files_scanned\":7,\"findings\":[]}"
        );
        assert_eq!(github_annotations(&r), "");
    }
}
