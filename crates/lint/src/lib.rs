//! # tlc-lint
//!
//! The workspace static-analysis plane for the TLC reproduction: a
//! purpose-built linter that machine-checks the repo-specific
//! invariants TLC's trust story rests on (§5.3 public verifiability
//! means the verification code itself must be auditable).
//!
//! Five per-file rules, all token-sequence based (see [`rules`]):
//!
//! 1. **safety-comment** — every `unsafe` block/fn carries an adjacent
//!    `// SAFETY:` comment,
//! 2. **unsafe-scope** — `unsafe` only inside `tlc-crypto`, and every
//!    other crate declares `#![forbid(unsafe_code)]` (tlc-crypto itself
//!    must `#![deny(unsafe_op_in_unsafe_fn)]`),
//! 3. **no-panic** — no `unwrap`/`expect`/`panic!` in non-test code of
//!    the tlc-core protocol paths and tlc-crypto,
//! 4. **secret-hygiene** — `PrivateKey`/CRT material never reaches
//!    `#[derive(Debug)]` or `format!`-family macro arguments,
//! 5. **determinism** — no `Instant::now`/`SystemTime::now`/ambient RNG
//!    outside allowlisted modules (protects the byte-identical parallel
//!    sweep guarantee of `tlc_sim::par`).
//!
//! Plus three *interprocedural* passes over the workspace call graph
//! ([`graph`], DESIGN §9.1):
//!
//! 6. **transitive-no-panic** ([`nopanic`]) — may-panic propagated
//!    backwards through resolved call edges, so a protocol root that
//!    reaches `unwrap` five helpers deep is caught with the chain
//!    named,
//! 7. **lock-order** ([`locks`]) — held-lock sets propagated along
//!    call edges; a cycle in the lock graph (potential deadlock) is
//!    reported with one site per edge,
//! 8. **charge-arith** ([`charge`]) — every raw `+ - *` / `+= -= *=`
//!    and narrowing cast on a charging counter in the accounting files
//!    must be saturating/checked, or carry an allowlist entry.
//!
//! Every `.rs` file is read and lexed exactly once per check
//! ([`Workspace`]); the per-file rules, the crate-manifest checks, and
//! the call-graph passes all share the same token streams.
//!
//! Grandfathered / invariant-true sites live in the checked allowlist
//! `LINT_ALLOW` at the workspace root ([`allow`]); stale entries are
//! themselves errors. Run with `cargo run -p tlc-lint -- check`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod charge;
pub mod graph;
pub mod json;
pub mod locks;
pub mod nopanic;
pub mod rules;
pub mod scan;

use rules::{rules_for, Finding};
use scan::{FileKind, ScannedFile};
use std::fs;
use std::path::{Path, PathBuf};
use syn::{Token, TokenKind};

/// Modules that count as "protocol paths" for the no-panic rule (plus
/// the whole of tlc-crypto): the code a third-party verifier must be
/// able to trust not to fall over on adversarial input. The ingress
/// framing and connection driver qualify — they parse bytes straight
/// off the network.
pub const NO_PANIC_PATHS: &[&str] = &[
    "crates/crypto/src/",
    "crates/core/src/messages.rs",
    "crates/core/src/protocol.rs",
    "crates/core/src/roaming.rs",
    "crates/core/src/session.rs",
    "crates/core/src/verify/",
    "crates/net/src/wire.rs",
    "crates/net/src/ingress.rs",
    "crates/net/src/chaos.rs",
    "crates/net/src/readiness.rs",
    "crates/net/src/bufpool.rs",
    "crates/sim/src/wheel.rs",
    "crates/sim/src/arena.rs",
    "crates/sim/src/soa.rs",
];

/// Crates that must carry `#![forbid(unsafe_code)]` in `src/lib.rs`.
/// tlc-net is the deliberate exception: its readiness syscall shim is
/// the one sanctioned `unsafe` module outside tlc-crypto, so the crate
/// carries `#![deny(unsafe_code)]` with a module-scoped allow instead
/// (checked separately below).
pub const FORBID_UNSAFE_CRATES: &[&str] = &["core", "sim", "workloads", "cell", "bench", "lint"];

/// The one file outside tlc-crypto permitted to contain `unsafe`
/// tokens: the epoll/`SO_REUSEPORT` syscall shim. Its blocks still owe
/// `// SAFETY:` audits (the safety-comment rule applies everywhere).
pub const UNSAFE_EXEMPT_FILES: &[&str] = &["crates/net/src/readiness.rs"];

/// Default allowlist file name at the workspace root.
pub const ALLOWLIST_FILE: &str = "LINT_ALLOW";

/// Files holding charging-counter accounting: the scope of the
/// `charge-arith` audit (DESIGN §9.1). These are the places where a
/// silent integer wrap *is* a charging bug.
pub const CHARGE_PATHS: &[&str] = &[
    "crates/sim/src/soa.rs",
    "crates/sim/src/twin.rs",
    "crates/net/src/stats.rs",
    "crates/cell/src/counters.rs",
    "crates/core/src/plan.rs",
    "crates/core/src/legacy.rs",
    "crates/core/src/roaming.rs",
];

/// Options for a workspace check.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckOptions {
    /// Also propagate data-dependent panic sources (indexing and
    /// unchecked integer arithmetic) in the transitive no-panic pass.
    /// Off by default: the crypto limb kernels index by invariant in
    /// every loop, so this mode is a periodic audit, not a gate.
    pub strict_panics: bool,
}

/// Every source file of the workspace, read and lexed exactly once.
/// The per-file rules, the crate-manifest checks, and the
/// interprocedural passes all borrow the same [`ScannedFile`]s.
pub struct Workspace {
    /// Scanned files, sorted by workspace-relative path.
    pub files: Vec<ScannedFile>,
    /// Lexer failures, as findings under the `parse` meta-rule.
    pub parse_errors: Vec<Finding>,
}

impl Workspace {
    /// Builds a workspace from in-memory sources (fixture tests).
    pub fn from_sources(sources: &[(&str, &str)]) -> Workspace {
        let mut ws = Workspace {
            files: Vec::new(),
            parse_errors: Vec::new(),
        };
        for (rel, src) in sources {
            ws.add(rel, src);
        }
        ws
    }

    /// Reads every `.rs` file under the workspace `root`.
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut paths = Vec::new();
        for top in ["crates", "examples", "tests"] {
            collect_rs_files(&root.join(top), &mut paths)?;
        }
        let mut ws = Workspace {
            files: Vec::new(),
            parse_errors: Vec::new(),
        };
        for path in &paths {
            let src = fs::read_to_string(path)?;
            ws.add(&rel_path(root, path), &src);
        }
        Ok(ws)
    }

    fn add(&mut self, rel: &str, src: &str) {
        match ScannedFile::parse(rel, src) {
            Ok(f) => self.files.push(f),
            Err(e) => self.parse_errors.push(Finding {
                rule: "parse",
                path: rel.to_string(),
                line: e.line,
                col: 1,
                item: String::new(),
                message: format!("lexer error: {}", e.message),
            }),
        }
    }

    /// The scanned file at a workspace-relative path, if present.
    pub fn file(&self, rel: &str) -> Option<&ScannedFile> {
        self.files.iter().find(|f| f.rel_path == rel)
    }

    /// Runs the per-file rules and the three interprocedural passes.
    /// `allow` feeds the transitive pass's site suppression (a local
    /// site excused under `no-panic` must not re-surface via every
    /// caller); the allowlist is still applied to the *returned*
    /// findings by the caller.
    pub fn check(&self, allow: &[allow::AllowEntry], opts: CheckOptions) -> Vec<Finding> {
        let mut findings = self.parse_errors.clone();
        for file in &self.files {
            for rule in rules_for(file, NO_PANIC_PATHS) {
                findings.extend(rule(file));
            }
        }
        let graph = graph::CallGraph::build(&self.files);
        findings.extend(nopanic::check(
            &graph,
            NO_PANIC_PATHS,
            allow,
            opts.strict_panics,
        ));
        findings.extend(locks::check(&graph));
        for file in &self.files {
            if file.kind == FileKind::Src && CHARGE_PATHS.contains(&file.rel_path.as_str()) {
                findings.extend(charge::check_file(file));
            }
        }
        findings
    }
}

/// Outcome of a workspace check.
#[derive(Debug)]
pub struct Report {
    /// Surviving findings (allowlist already applied), sorted by path
    /// then line.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Clean means zero findings.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Shared attribute scanner used by rules: if significant position `si`
/// starts an attribute (`#…[…]`), returns its identifiers and the
/// significant position just past the closing bracket.
pub fn scan_attr(file: &ScannedFile, si: usize) -> Option<(Vec<String>, usize)> {
    let tokens = &file.tokens;
    let sig = &file.sig;
    let mut i = si;
    if !tokens[*sig.get(i)?].is_punct('#') {
        return None;
    }
    i += 1;
    if tokens.get(*sig.get(i)?).is_some_and(|t| t.is_punct('!')) {
        i += 1;
    }
    if !tokens.get(*sig.get(i)?).is_some_and(|t| t.is_punct('[')) {
        return None;
    }
    let mut depth = 0usize;
    let mut idents = Vec::new();
    while i < sig.len() {
        let t: &Token = &tokens[sig[i]];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some((idents, i + 1));
            }
        } else if t.kind == TokenKind::Ident {
            idents.push(t.text.clone());
        }
        i += 1;
    }
    None
}

/// Whether a file declares an inner attribute whose identifier list is
/// exactly `want` (e.g. `["forbid", "unsafe_code"]`).
pub fn has_inner_attr(file: &ScannedFile, want: &[&str]) -> bool {
    let mut si = 0usize;
    while si < file.sig.len() {
        let t = file.sig_tok(si);
        if t.is_punct('#')
            && file
                .sig
                .get(si + 1)
                .is_some_and(|&r| file.tokens[r].is_punct('!'))
        {
            if let Some((idents, after)) = scan_attr(file, si) {
                if idents.iter().map(String::as_str).eq(want.iter().copied()) {
                    return true;
                }
                si = after;
                continue;
            }
        }
        // Inner attributes only appear before items; stop at the first
        // non-attribute significant token for speed.
        if !t.is_punct('#') && !t.is_punct('!') && !t.is_punct('[') {
            // Keep scanning: doc comments are insignificant, but an
            // inner attr can follow outer doc text only at file top.
            if si > 64 {
                return false;
            }
        }
        si += 1;
    }
    false
}

/// Lints a single in-memory source file under its workspace-relative
/// path (what the fixture tests drive).
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    match ScannedFile::parse(rel_path, src) {
        Ok(file) => {
            let mut out = Vec::new();
            for rule in rules_for(&file, NO_PANIC_PATHS) {
                out.extend(rule(&file));
            }
            out
        }
        Err(e) => vec![Finding {
            rule: "parse",
            path: rel_path.to_string(),
            line: e.line,
            col: 1,
            item: String::new(),
            message: format!("lexer error: {}", e.message),
        }],
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            // The bad-fixture corpus is linted by its own tests, not as
            // part of the workspace; target/ and vendor/ never are.
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "fixtures" || name == "target" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative, `/`-separated form of `path`.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Lints a set of in-memory source files as one mini-workspace: the
/// per-file rules plus the three interprocedural passes, no allowlist,
/// no crate-manifest checks. This is what the cross-file fixture tests
/// drive (e.g. a `NO_PANIC_PATHS` root reaching a panicking helper in
/// a *different* fixture file).
pub fn lint_sources(sources: &[(&str, &str)]) -> Vec<Finding> {
    let ws = Workspace::from_sources(sources);
    let mut findings = ws.check(&[], CheckOptions::default());
    sort_findings(&mut findings);
    findings
}

/// The crate-manifest half of the unsafe-scope rule, evaluated over the
/// already-scanned workspace (no file is re-read).
fn manifest_findings(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    let has = |rel: &str, want: &[&str]| ws.file(rel).is_some_and(|f| has_inner_attr(f, want));
    for krate in FORBID_UNSAFE_CRATES {
        let rel = format!("crates/{krate}/src/lib.rs");
        if !has(&rel, &["forbid", "unsafe_code"]) {
            findings.push(Finding {
                rule: "unsafe-scope",
                path: rel,
                line: 1,
                col: 1,
                item: String::new(),
                message: format!("crate tlc-{krate} must declare #![forbid(unsafe_code)]"),
            });
        }
    }
    if !has(
        "crates/crypto/src/lib.rs",
        &["deny", "unsafe_op_in_unsafe_fn"],
    ) {
        findings.push(Finding {
            rule: "unsafe-scope",
            path: "crates/crypto/src/lib.rs".to_string(),
            line: 1,
            col: 1,
            item: String::new(),
            message: "tlc-crypto must declare #![deny(unsafe_op_in_unsafe_fn)]".to_string(),
        });
    }
    // tlc-net: `deny` (not `forbid`) so the readiness shim can be
    // allow-listed per-module — but the deny must stay, or unsafe
    // could creep into any module unnoticed.
    if !has("crates/net/src/lib.rs", &["deny", "unsafe_code"]) {
        findings.push(Finding {
            rule: "unsafe-scope",
            path: "crates/net/src/lib.rs".to_string(),
            line: 1,
            col: 1,
            item: String::new(),
            message:
                "tlc-net must declare #![deny(unsafe_code)] (readiness shim is the only allowed module)"
                    .to_string(),
        });
    }
    findings
}

fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
}

/// Runs the full workspace check rooted at `root`, applying the
/// allowlist at `allow_path` (pass the default [`ALLOWLIST_FILE`] under
/// `root` unless overridden).
pub fn run_check(root: &Path, allow_path: &Path) -> std::io::Result<Report> {
    run_check_opts(root, allow_path, CheckOptions::default())
}

/// [`run_check`] with explicit [`CheckOptions`].
pub fn run_check_opts(
    root: &Path,
    allow_path: &Path,
    opts: CheckOptions,
) -> std::io::Result<Report> {
    let ws = Workspace::load(root)?;
    let files_scanned = ws.files.len() + ws.parse_errors.len();

    // Allowlist entries are parsed up front: the transitive no-panic
    // pass needs them to treat excused local sites as clean.
    let allow_rel = rel_path(root, allow_path);
    let (entries, mut allow_errs) = match fs::read_to_string(allow_path) {
        Ok(text) => allow::parse(&allow_rel, &text),
        Err(_) => (Vec::new(), Vec::new()),
    };

    let mut findings = ws.check(&entries, opts);
    findings.extend(manifest_findings(&ws));

    let mut findings = allow::apply(&allow_rel, &entries, findings);
    findings.append(&mut allow_errs);
    sort_findings(&mut findings);
    Ok(Report {
        findings,
        files_scanned,
    })
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
