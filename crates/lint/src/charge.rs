//! Pass: charge-arithmetic overflow audit.
//!
//! The paper's entire claim rides on the byte counters being exact —
//! a silent `u64` wrap in a `GapSweep` merge or a truncating cast on a
//! gateway byte field *is* a charging bug, indistinguishable from the
//! data charging gap TLC is supposed to close. This pass audits every
//! raw `+ - *` / `+= -= *=` and every narrowing `as` cast whose
//! operand is a charging counter inside the charge-accounting files
//! ([`crate::CHARGE_PATHS`]) and requires a checked / saturating /
//! clamped form (or an explicit `LINT_ALLOW charge-arith` entry).
//!
//! A "charging counter" operand is any identifier in
//! [`COUNTER_FIELDS`] — the fields of `ChargeRow`/`ChargeColumns`/
//! `GapSweep`, the gateway/monitor `ByteCounter` fields, and the
//! `UsageSeries` bucket store — whether it appears as a field access
//! (`out.total_sent`), a column index (`self.sent[i]`), or a local
//! derived binding of the same name (`delivered`). Float math
//! (ratios, Mbps conversions) never aborts or wraps and is exempt,
//! as is `abs_diff`/`saturating_*`/`checked_*` method arithmetic —
//! those never lex as raw operator tokens in the first place.

use crate::nopanic::is_unchecked_arith_at;
use crate::rules::Finding;
use crate::scan::ScannedFile;
use syn::TokenKind;

/// Field / binding names that hold charging counters.
pub const COUNTER_FIELDS: &[&str] = &[
    // ChargeRow / ChargeColumns
    "sent",
    "delivered",
    "gateway",
    "lost_air",
    "lost_congestion",
    "lost_handover",
    "monitor_lag",
    "cycle_start_us",
    // GapSweep
    "active_rows",
    "total_sent",
    "total_delivered",
    "total_gateway",
    "intended",
    "legacy_gap",
    "tlc_gap",
    // ByteCounter / UsageSeries (gateway + monitor vantages)
    "packets",
    "bytes",
    "buckets",
    // Twin offered-load tally
    "offered",
    // Roaming three-party settlement (SettlementSplit / RoamingSweep)
    "charged",
    "home",
    "visited",
    "vendor",
];

/// Integer types a counter must never be truncated into.
const NARROW_TYPES: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "i64"];

/// The counter identifier an operand boils down to, walking *backwards*
/// from the significant position just before an operator. Handles
/// `ident`, `recv.field`, and `recv.field[idx]` shapes.
fn operand_ident_back(file: &ScannedFile, mut si: usize) -> Option<String> {
    let mut t = file.sig_tok(si);
    if t.is_punct(']') {
        // `col[idx]` — hop to the matching `[`, then the field before.
        let mut depth = 1usize;
        while si > 0 && depth > 0 {
            si -= 1;
            let u = file.sig_tok(si);
            if u.is_punct(']') {
                depth += 1;
            } else if u.is_punct('[') {
                depth -= 1;
            }
        }
        if si == 0 {
            return None;
        }
        si -= 1;
        t = file.sig_tok(si);
    }
    if t.is_punct(')') {
        return None; // call result — shape unknown, not a bare counter
    }
    (t.kind == TokenKind::Ident).then(|| t.text.clone())
}

/// The counter identifier an operand boils down to, walking *forwards*
/// from the significant position just after an operator: skips deref
/// `*`, reference `&`, unary `-`, the `=` of a compound assignment, and
/// a leading `self.`/receiver chain to land on the final field name.
fn operand_ident_fwd(file: &ScannedFile, mut si: usize) -> Option<String> {
    while si < file.sig.len() {
        let t = file.sig_tok(si);
        match t.kind {
            TokenKind::Punct
                if t.is_punct('*') || t.is_punct('&') || t.is_punct('-') || t.is_punct('=') =>
            {
                si += 1;
            }
            _ => break,
        }
    }
    // Follow `a.b.c` to the last field before a non-`.` token.
    let mut last: Option<String> = None;
    while si < file.sig.len() {
        let t = file.sig_tok(si);
        if t.kind == TokenKind::Ident {
            last = Some(t.text.clone());
            si += 1;
            if file
                .sig
                .get(si)
                .is_some_and(|&r| file.tokens[r].is_punct('.'))
            {
                si += 1;
                // `.0`/`.await`/method call — a call result is not a
                // bare counter read; stop if `(` follows the next ident.
                continue;
            }
        }
        break;
    }
    // If the chain ended in a method call (`x.bytes()`), it is a getter
    // whose result feeds wider logic — still counter-derived, keep it.
    last
}

fn is_counter(name: &Option<String>) -> bool {
    name.as_deref().is_some_and(|n| COUNTER_FIELDS.contains(&n))
}

/// Runs the audit over one in-scope file.
pub fn check_file(file: &ScannedFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for si in 0..file.sig.len() {
        if file.sig_in_test(si) {
            continue;
        }
        let t = file.sig_tok(si);

        if is_unchecked_arith_at(file, si) {
            let lhs = operand_ident_back(file, si - 1);
            let compound = file
                .sig
                .get(si + 1)
                .is_some_and(|&r| file.tokens[r].is_punct('='));
            let rhs = operand_ident_fwd(file, si + 1);
            let counter = if is_counter(&lhs) {
                lhs
            } else if is_counter(&rhs) {
                rhs
            } else {
                None
            };
            if let Some(name) = counter {
                let op = if compound {
                    format!("{}=", t.text)
                } else {
                    t.text.clone()
                };
                out.push(Finding {
                    rule: "charge-arith",
                    path: file.rel_path.clone(),
                    line: t.line,
                    col: t.col,
                    item: file.sig_item(si).to_string(),
                    message: format!(
                        "unchecked `{op}` on charging counter `{name}`; a silent wrap is a charging bug — use saturating/checked arithmetic"
                    ),
                });
            }
            continue;
        }

        // Narrowing `as` casts of a counter.
        if t.is_ident("as") && si > 0 {
            let target = file.sig.get(si + 1).map(|&r| &file.tokens[r]);
            let Some(target) = target else { continue };
            if target.kind != TokenKind::Ident || !NARROW_TYPES.contains(&target.text.as_str()) {
                continue;
            }
            let src = operand_ident_back(file, si - 1);
            if is_counter(&src) {
                out.push(Finding {
                    rule: "charge-arith",
                    path: file.rel_path.clone(),
                    line: t.line,
                    col: t.col,
                    item: file.sig_item(si).to_string(),
                    message: format!(
                        "charging counter `{}` truncated by `as {}`; counters stay u64 end to end",
                        src.unwrap_or_default(),
                        target.text
                    ),
                });
            }
        }
    }
    out
}
