//! The five per-file repo-specific lint rules.
//!
//! Every rule here is a pure function from a [`ScannedFile`] to
//! findings; the workspace runner in `lib.rs` decides which files each
//! rule sees and layers the allowlist on top. Rules match *token
//! sequences* (via [`ScannedFile::sig`]), never raw text, so code
//! inside strings, comments, or doc examples can not trip them.
//!
//! The three interprocedural passes (`transitive-no-panic`,
//! `lock-order`, `charge-arith`) live in their own modules
//! ([`crate::nopanic`], [`crate::locks`], [`crate::charge`]) because
//! they see the whole workspace call graph, not one file; their rule
//! ids are registered in [`RULES`] so the allowlist covers them.

use crate::scan::{FileKind, ScannedFile};
use syn::TokenKind;

/// One rule violation at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`safety-comment`, `unsafe-scope`, `no-panic`,
    /// `secret-hygiene`, `determinism`, `transitive-no-panic`,
    /// `lock-order`, `charge-arith`, or the meta rules `parse` and
    /// `allowlist`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Innermost enclosing named item (allowlist key; may be empty).
    pub item: String,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Rule ids, in report order.
pub const RULES: &[(&str, &str)] = &[
    (
        "safety-comment",
        "every `unsafe` block or fn carries an adjacent `// SAFETY:` (or `# Safety` doc) comment",
    ),
    (
        "unsafe-scope",
        "`unsafe` is confined to tlc-crypto plus tlc-net's readiness syscall shim; every other crate must `#![forbid(unsafe_code)]` (tlc-net: `#![deny(unsafe_code)]`)",
    ),
    (
        "no-panic",
        "no unwrap/expect/panic!/unreachable!/todo! in non-test tlc-crypto or tlc-core protocol paths",
    ),
    (
        "secret-hygiene",
        "PrivateKey/CRT material never reaches #[derive(Debug)] or format!-family macro arguments",
    ),
    (
        "determinism",
        "no wall-clock (Instant/SystemTime::now) or ambient randomness outside allowlisted modules",
    ),
    (
        "transitive-no-panic",
        "no call chain from a NO_PANIC_PATHS root reaches unwrap/expect/panic! anywhere in the workspace (call-graph propagation)",
    ),
    (
        "lock-order",
        "the workspace lock graph (Mutex/RwLock acquisition order, propagated along call edges) is cycle-free",
    ),
    (
        "charge-arith",
        "arithmetic on charging counters in the accounting files is saturating/checked; a silent wrap is a charging bug",
    ),
];

fn finding(
    rule: &'static str,
    file: &ScannedFile,
    si: usize,
    item: &str,
    message: String,
) -> Finding {
    let t = file.sig_tok(si);
    Finding {
        rule,
        path: file.rel_path.clone(),
        line: t.line,
        col: t.col,
        item: item.to_string(),
        message,
    }
}

/// Rule `safety-comment`: each `unsafe` block / `unsafe fn` must have a
/// `SAFETY`-bearing comment adjacent: either the nearest comment walking
/// backwards over attributes, or the first token just inside the block.
pub fn safety_comment(file: &ScannedFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for si in 0..file.sig.len() {
        let t = file.sig_tok(si);
        if !(t.kind == TokenKind::Ident && t.text == "unsafe") {
            continue;
        }
        let next = match file.sig.get(si + 1).map(|&r| &file.tokens[r]) {
            Some(n) => n,
            None => continue,
        };
        let form = if next.is_punct('{') {
            "unsafe block"
        } else if next.is_ident("fn") {
            "unsafe fn"
        } else {
            // `unsafe impl` / `unsafe trait` / `unsafe extern` carry
            // their obligations at the use sites; out of scope here.
            continue;
        };
        if has_adjacent_safety_comment(file, si) {
            continue;
        }
        out.push(finding(
            "safety-comment",
            file,
            si,
            file.sig_item(si),
            format!("{form} without an adjacent `// SAFETY:` comment"),
        ));
    }
    out
}

fn comment_is_safety(text: &str) -> bool {
    text.contains("SAFETY") || text.contains("# Safety")
}

fn has_adjacent_safety_comment(file: &ScannedFile, si: usize) -> bool {
    // Forward: `unsafe { // SAFETY: … }` — first raw token after the
    // opening brace.
    let unsafe_raw = file.sig[si];
    if let Some(&brace_raw) = file.sig.get(si + 1) {
        if file.tokens[brace_raw].is_punct('{') {
            if let Some(tok) = file.tokens.get(brace_raw + 1) {
                if !tok.is_significant() && comment_is_safety(&tok.text) {
                    return true;
                }
            }
        }
    }
    // Backward: skip comments (checking each) and whole attributes;
    // stop at the first other significant token.
    let mut raw = unsafe_raw;
    loop {
        if raw == 0 {
            return false;
        }
        raw -= 1;
        let tok = &file.tokens[raw];
        if !tok.is_significant() {
            if comment_is_safety(&tok.text) {
                return true;
            }
            continue; // earlier lines of a comment stack
        }
        if tok.is_punct(']') {
            // Skip the attribute: …`#` `[` … `]`.
            let mut depth = 1usize;
            while raw > 0 && depth > 0 {
                raw -= 1;
                let t = &file.tokens[raw];
                if t.is_punct(']') {
                    depth += 1;
                } else if t.is_punct('[') {
                    depth -= 1;
                }
            }
            // Consume `!` and `#` if present.
            while raw > 0 {
                let t = &file.tokens[raw - 1];
                if t.is_punct('#') || t.is_punct('!') {
                    raw -= 1;
                    if file.tokens[raw].is_punct('#') {
                        break;
                    }
                } else {
                    break;
                }
            }
            continue;
        }
        // Keywords that legally sit between a comment and the `unsafe`
        // token itself (`pub unsafe fn`, `pub(crate) unsafe fn`, …).
        if tok.kind == TokenKind::Ident
            && matches!(tok.text.as_str(), "pub" | "crate" | "const" | "extern")
        {
            continue;
        }
        if tok.is_punct('(') || tok.is_punct(')') {
            continue; // pub(crate)
        }
        return false;
    }
}

/// Rule `unsafe-scope`: any `unsafe` token outside `crates/crypto/`
/// or the allow-listed readiness syscall shim
/// ([`crate::UNSAFE_EXEMPT_FILES`]). (The crate-manifest half —
/// `#![forbid(unsafe_code)]` / tlc-net's `#![deny(unsafe_code)]`
/// attributes — is checked by the workspace runner, which sees whole
/// files.)
pub fn unsafe_scope(file: &ScannedFile) -> Vec<Finding> {
    if file.rel_path.starts_with("crates/crypto/")
        || crate::UNSAFE_EXEMPT_FILES.contains(&file.rel_path.as_str())
    {
        return Vec::new();
    }
    let mut out = Vec::new();
    for si in 0..file.sig.len() {
        let t = file.sig_tok(si);
        if t.kind == TokenKind::Ident && t.text == "unsafe" {
            out.push(finding(
                "unsafe-scope",
                file,
                si,
                file.sig_item(si),
                "`unsafe` outside tlc-crypto".to_string(),
            ));
        }
    }
    out
}

/// Macros whose expansion panics.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Rule `no-panic` for one in-scope file: `.unwrap()` / `.expect(…)`
/// method calls and panicking macros in non-test code.
pub fn no_panic(file: &ScannedFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for si in 0..file.sig.len() {
        if file.sig_in_test(si) {
            continue;
        }
        let t = file.sig_tok(si);
        if t.kind != TokenKind::Ident {
            continue;
        }
        let prev_dot = si > 0 && file.sig_tok(si - 1).is_punct('.');
        let next = file.sig.get(si + 1).map(|&r| &file.tokens[r]);
        match t.text.as_str() {
            "unwrap" | "expect" if prev_dot && next.is_some_and(|n| n.is_punct('(')) => {
                out.push(finding(
                    "no-panic",
                    file,
                    si,
                    file.sig_item(si),
                    format!(".{}() in a protocol/crypto path", t.text),
                ));
            }
            m if PANIC_MACROS.contains(&m) && next.is_some_and(|n| n.is_punct('!')) => {
                out.push(finding(
                    "no-panic",
                    file,
                    si,
                    file.sig_item(si),
                    format!("{m}! in a protocol/crypto path"),
                ));
            }
            _ => {}
        }
    }
    out
}

/// Identifiers that name private-key material. `private` catches field
/// accesses like `kp.private`; the CRT names catch the raw limbs.
const SECRET_IDENTS: &[&str] = &["PrivateKey", "private", "private_key", "dp", "dq", "qinv"];

/// Macros that format their arguments (logging included).
const FORMAT_MACROS: &[&str] = &[
    "format",
    "format_args",
    "print",
    "println",
    "eprint",
    "eprintln",
    "write",
    "writeln",
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "trace",
    "debug",
    "info",
    "warn",
    "error",
];

/// Rule `secret-hygiene`: (a) `#[derive(.. Debug ..)]` on a struct whose
/// body mentions `PrivateKey`, (b) secret identifiers inside the
/// argument list of a format!-family macro.
pub fn secret_hygiene(file: &ScannedFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let sig_len = file.sig.len();
    let mut si = 0usize;
    while si < sig_len {
        if file.sig_in_test(si) {
            si += 1;
            continue;
        }
        let t = file.sig_tok(si);

        // (a) derive(Debug) on a secret-bearing struct.
        if t.is_punct('#') {
            if let Some((idents, after)) = crate::scan_attr(file, si) {
                if idents.first().map(String::as_str) == Some("derive")
                    && idents.iter().any(|s| s == "Debug")
                {
                    if let Some(name_si) = struct_after_attrs(file, after) {
                        let name = file.sig_tok(name_si).text.clone();
                        let secret_struct = name == "PrivateKey"
                            || struct_body_mentions(file, name_si, "PrivateKey");
                        if secret_struct {
                            out.push(finding(
                                "secret-hygiene",
                                file,
                                si,
                                &name,
                                format!("#[derive(Debug)] on `{name}` exposes PrivateKey material; implement a redacted Debug by hand"),
                            ));
                        }
                    }
                }
                si = after;
                continue;
            }
        }

        // (b) secrets in format!-family macro arguments.
        if t.kind == TokenKind::Ident
            && FORMAT_MACROS.contains(&t.text.as_str())
            && file
                .sig
                .get(si + 1)
                .is_some_and(|&r| file.tokens[r].is_punct('!'))
        {
            if let Some((leak_si, end)) = macro_args_mention(file, si + 2, SECRET_IDENTS) {
                if let Some(leak) = leak_si {
                    out.push(finding(
                        "secret-hygiene",
                        file,
                        leak,
                        file.sig_item(leak),
                        format!(
                            "`{}` appears in a {}! argument; private-key material must never be formatted",
                            file.sig_tok(leak).text,
                            t.text
                        ),
                    ));
                }
                si = end;
                continue;
            }
        }
        si += 1;
    }
    out
}

/// If significant position `si` starts the macro's delimiter, scans the
/// delimited group; returns `(first position mentioning one of
/// `needles` (if any), position past the group)`.
fn macro_args_mention(
    file: &ScannedFile,
    si: usize,
    needles: &[&str],
) -> Option<(Option<usize>, usize)> {
    let open = file.sig.get(si).map(|&r| &file.tokens[r])?;
    let (open_c, close_c) = match open.text.chars().next()? {
        '(' => ('(', ')'),
        '[' => ('[', ']'),
        '{' => ('{', '}'),
        _ => return None,
    };
    let mut depth = 0usize;
    let mut hit = None;
    let mut i = si;
    while i < file.sig.len() {
        let t = file.sig_tok(i);
        if t.is_punct(open_c) {
            depth += 1;
        } else if t.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return Some((hit, i + 1));
            }
        } else if hit.is_none() && t.kind == TokenKind::Ident && needles.contains(&t.text.as_str())
        {
            hit = Some(i);
        }
        i += 1;
    }
    Some((hit, file.sig.len()))
}

/// Past the attributes starting at `si`, finds `struct <Name>` and
/// returns the significant position of the name.
fn struct_after_attrs(file: &ScannedFile, mut si: usize) -> Option<usize> {
    while let Some((_, after)) = crate::scan_attr(file, si) {
        si = after;
    }
    // Allow visibility / `pub(crate)` before the keyword.
    let mut guard = 0;
    while si < file.sig.len() && guard < 8 {
        let t = file.sig_tok(si);
        if t.is_ident("struct") {
            return Some(si + 1).filter(|&n| n < file.sig.len());
        }
        if t.is_ident("pub") || t.is_punct('(') || t.is_punct(')') || t.is_ident("crate") {
            si += 1;
            guard += 1;
            continue;
        }
        return None; // enum / fn / … — not a struct
    }
    None
}

/// Whether the struct whose name sits at `name_si` mentions `needle`
/// anywhere in its body (brace or tuple form).
fn struct_body_mentions(file: &ScannedFile, name_si: usize, needle: &str) -> bool {
    let mut depth = 0usize;
    let mut opened = false;
    for i in name_si + 1..file.sig.len() {
        let t = file.sig_tok(i);
        match t.text.chars().next() {
            Some('{') | Some('(') => {
                depth += 1;
                opened = true;
            }
            Some('}') | Some(')') => {
                depth = depth.saturating_sub(1);
                if opened && depth == 0 {
                    return false;
                }
            }
            Some(';') if depth == 0 => return false,
            _ => {
                if t.kind == TokenKind::Ident && t.text == needle {
                    return true;
                }
            }
        }
    }
    false
}

/// Nondeterminism sources: `Type::method` pairs and bare identifiers.
const TIME_PATHS: &[(&str, &str)] = &[("Instant", "now"), ("SystemTime", "now")];
const RNG_IDENTS: &[&str] = &["thread_rng", "OsRng", "from_entropy"];

/// Rule `determinism`: wall-clock reads and ambient (OS-seeded)
/// randomness in non-test source code. Byte-identical parallel sweeps
/// (`tlc_sim::par`) depend on nothing in a result row deriving from
/// either.
pub fn determinism(file: &ScannedFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for si in 0..file.sig.len() {
        if file.sig_in_test(si) {
            continue;
        }
        let t = file.sig_tok(si);
        if t.kind != TokenKind::Ident {
            continue;
        }
        let path_call = |offset: usize, want: &str| -> bool {
            file.sig
                .get(si + offset)
                .is_some_and(|&r| file.tokens[r].is_punct(':'))
                && file
                    .sig
                    .get(si + offset + 1)
                    .is_some_and(|&r| file.tokens[r].is_punct(':'))
                && file
                    .sig
                    .get(si + offset + 2)
                    .is_some_and(|&r| file.tokens[r].is_ident(want))
        };
        for &(ty, method) in TIME_PATHS {
            if t.text == ty && path_call(1, method) {
                out.push(finding(
                    "determinism",
                    file,
                    si,
                    file.sig_item(si),
                    format!("{ty}::{method} breaks deterministic replay"),
                ));
            }
        }
        if RNG_IDENTS.contains(&t.text.as_str()) {
            out.push(finding(
                "determinism",
                file,
                si,
                file.sig_item(si),
                format!(
                    "`{}` is OS-seeded randomness; use the seeded RngSource",
                    t.text
                ),
            ));
        }
        if t.text == "rand" && path_call(1, "random") {
            out.push(finding(
                "determinism",
                file,
                si,
                file.sig_item(si),
                "rand::random draws from ambient entropy".to_string(),
            ));
        }
    }
    out
}

/// Which rules run on a file of this kind/path. Scope decisions live
/// here so `lib.rs` and the fixture tests agree exactly.
pub fn rules_for(
    file: &ScannedFile,
    no_panic_paths: &[&str],
) -> Vec<fn(&ScannedFile) -> Vec<Finding>> {
    let mut rules: Vec<fn(&ScannedFile) -> Vec<Finding>> = vec![safety_comment, unsafe_scope];
    if file.kind == FileKind::Src {
        if no_panic_paths.iter().any(|p| file.rel_path.starts_with(p)) {
            rules.push(no_panic);
        }
        rules.push(secret_hygiene);
        if !file.rel_path.starts_with("crates/bench/") {
            rules.push(determinism);
        }
    }
    rules
}
