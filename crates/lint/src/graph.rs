//! Workspace item/call-graph layer for the interprocedural passes.
//!
//! Built once per check over every [`ScannedFile`] in the workspace:
//! walks the shared token streams tracking inline `mod` nesting,
//! `impl` blocks (inherent and trait), and `fn` items, then resolves
//! call sites inside each function body back to workspace functions by
//! name, with a conservative fallback when the receiver type cannot be
//! known from tokens alone:
//!
//! * `Type::method(…)` resolves within `impl Type`/`impl … for Type`
//!   blocks when the workspace defines any; an unknown qualifier that
//!   looks like a type (`Vec::new`) is treated as external — no edge;
//! * `module::func(…)` resolves to functions whose module path, file
//!   stem, or crate matches the qualifier, falling back to every
//!   function of that name;
//! * `.method(…)` resolves to *every* workspace method of that name
//!   (the receiver's type is unknown to a lexer) — an overapproximation
//!   that can only add edges, never hide one;
//! * `func(…)` prefers same-file free functions, then any free
//!   function, then any function of that name.
//!
//! Known false negatives (DESIGN §9.1): calls fabricated inside macro
//! bodies, `dyn Trait`/function-pointer dispatch, and calls routed
//! through `std`/vendored types the workspace does not define.

use crate::scan::ScannedFile;
use std::collections::HashMap;
use syn::TokenKind;

/// Keywords that can be followed by `(` without being a call.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "else", "let", "fn",
    "impl", "where", "dyn", "ref", "mut", "box", "yield", "await", "Some", "Ok", "Err", "None",
];

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `func(…)` with no path qualifier.
    Bare,
    /// `.method(…)` on an unknown receiver.
    Method,
    /// `qual::func(…)`; the qualifier is the last path segment before
    /// the final `::`.
    Path(String),
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name token text.
    pub name: String,
    /// How the callee was named.
    pub kind: CallKind,
    /// Significant-token position of the name in the caller's file.
    pub si: usize,
    /// 1-based source line of the callee name.
    pub line: u32,
    /// 1-based source column of the callee name.
    pub col: u32,
    /// Resolved workspace candidates (function ids), possibly empty.
    pub callees: Vec<usize>,
}

/// One `fn` item somewhere in the workspace.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Function name (raw identifier text).
    pub name: String,
    /// Self type of the enclosing `impl` (or `trait`) block, if any.
    pub impl_type: Option<String>,
    /// Inline `mod` path inside the file (often empty; file-level
    /// modules come from the path instead).
    pub module: Vec<String>,
    /// Index into the workspace file list.
    pub file: usize,
    /// Significant-token range of the body, inclusive of both braces.
    /// `None` for body-less trait signatures.
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Whether the item sits inside `#[cfg(test)]`/`#[test]` code.
    pub is_test: bool,
    /// Whether the first parameter mentions `self`.
    pub is_method: bool,
}

/// The resolved workspace call graph.
pub struct CallGraph<'w> {
    /// The scanned files the graph indexes into.
    pub files: &'w [ScannedFile],
    /// Every function item found.
    pub fns: Vec<FnNode>,
    /// Call sites per function, in body order.
    pub calls: Vec<Vec<Call>>,
    /// `fn_of[file][sig position]` — innermost enclosing function id.
    pub fn_of: Vec<Vec<Option<usize>>>,
    by_name: HashMap<String, Vec<usize>>,
}

impl<'w> CallGraph<'w> {
    /// Builds the item layer and resolves every call site.
    pub fn build(files: &'w [ScannedFile]) -> CallGraph<'w> {
        let mut fns: Vec<FnNode> = Vec::new();
        let mut fn_of: Vec<Vec<Option<usize>>> = Vec::with_capacity(files.len());
        for (fi, file) in files.iter().enumerate() {
            fn_of.push(extract_items(file, fi, &mut fns));
        }
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        let mut by_impl: HashMap<(String, String), Vec<usize>> = HashMap::new();
        for (id, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(id);
            if let Some(ty) = &f.impl_type {
                by_impl
                    .entry((ty.clone(), f.name.clone()))
                    .or_default()
                    .push(id);
            }
        }
        let mut calls: Vec<Vec<Call>> = vec![Vec::new(); fns.len()];
        for (fi, file) in files.iter().enumerate() {
            extract_calls(file, &fn_of[fi], &mut calls);
        }
        for (caller, sites) in calls.iter_mut().enumerate() {
            for c in sites.iter_mut() {
                c.callees = resolve(files, &fns, &by_name, &by_impl, caller, c);
            }
        }
        CallGraph {
            files,
            fns,
            calls,
            fn_of,
            by_name,
        }
    }

    /// Workspace-relative path of the file a function lives in.
    pub fn fn_path(&self, id: usize) -> &str {
        &self.files[self.fns[id].file].rel_path
    }

    /// Functions with this exact name (any impl/module).
    pub fn fns_named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// `Type::name` display form of a function.
    pub fn fn_label(&self, id: usize) -> String {
        let f = &self.fns[id];
        match &f.impl_type {
            Some(ty) => format!("{ty}::{}", f.name),
            None => f.name.clone(),
        }
    }
}

/// Crate ident (`tlc_core`) for a workspace-relative path, if it is a
/// `crates/<name>/…` path.
fn crate_ident(rel_path: &str) -> Option<String> {
    let rest = rel_path.strip_prefix("crates/")?;
    let name = rest.split('/').next()?;
    Some(format!("tlc_{}", name.replace('-', "_")))
}

/// File stem (`wire` for `crates/net/src/wire.rs`).
fn file_stem(rel_path: &str) -> &str {
    rel_path
        .rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or("")
}

fn resolve(
    files: &[ScannedFile],
    fns: &[FnNode],
    by_name: &HashMap<String, Vec<usize>>,
    by_impl: &HashMap<(String, String), Vec<usize>>,
    caller: usize,
    call: &Call,
) -> Vec<usize> {
    let named: &[usize] = by_name.get(&call.name).map(Vec::as_slice).unwrap_or(&[]);
    if named.is_empty() {
        return Vec::new(); // external (std / vendored) — no edge
    }
    let caller_fn = &fns[caller];
    match &call.kind {
        CallKind::Method => named
            .iter()
            .copied()
            .filter(|&id| fns[id].is_method)
            .collect(),
        CallKind::Bare => {
            let same_file: Vec<usize> = named
                .iter()
                .copied()
                .filter(|&id| fns[id].file == caller_fn.file && fns[id].impl_type.is_none())
                .collect();
            if !same_file.is_empty() {
                return same_file;
            }
            // A bare call cannot name a method without a receiver or
            // `Self::`, so free functions are the only candidates.
            named
                .iter()
                .copied()
                .filter(|&id| fns[id].impl_type.is_none())
                .collect()
        }
        CallKind::Path(qual) => {
            if qual == "Self" || qual == "self" {
                if let Some(ty) = &caller_fn.impl_type {
                    if let Some(ids) = by_impl.get(&(ty.clone(), call.name.clone())) {
                        return ids.clone();
                    }
                }
                return named.to_vec();
            }
            if let Some(ids) = by_impl.get(&(qual.clone(), call.name.clone())) {
                return ids.clone();
            }
            let type_like = qual.chars().next().is_some_and(|c| c.is_ascii_uppercase());
            if type_like {
                // `Vec::new`, `String::from`, … — a type the workspace
                // does not implement. External.
                return Vec::new();
            }
            if qual == "crate" || qual == "super" {
                return named.to_vec();
            }
            // Module-ish qualifier: match module path, file stem, or
            // crate ident; fall back to every function of that name.
            let scoped: Vec<usize> = named
                .iter()
                .copied()
                .filter(|&id| {
                    let f = &fns[id];
                    let path = &files[f.file].rel_path;
                    f.module.iter().any(|m| m == qual)
                        || file_stem(path) == qual
                        || crate_ident(path).is_some_and(|c| c == *qual)
                })
                .collect();
            if !scoped.is_empty() {
                scoped
            } else {
                named.to_vec()
            }
        }
    }
}

#[derive(Debug)]
enum Scope {
    Mod(String),
    Impl(String),
    Fn(usize),
    Other,
}

/// Extracts `fn` items from one file; returns the per-significant-token
/// innermost-function map.
fn extract_items(file: &ScannedFile, file_idx: usize, fns: &mut Vec<FnNode>) -> Vec<Option<usize>> {
    let sig = &file.sig;
    let mut fn_of: Vec<Option<usize>> = vec![None; sig.len()];
    // (scope, brace depth its body opened at)
    let mut stack: Vec<(Scope, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut pending: Option<Scope> = None;
    let mut si = 0usize;
    while si < sig.len() {
        // Attribute the token to the innermost enclosing fn.
        fn_of[si] = stack.iter().rev().find_map(|(s, _)| match s {
            Scope::Fn(id) => Some(*id),
            _ => None,
        });
        let t = file.sig_tok(si);
        if t.kind == TokenKind::Ident {
            match t.text.as_str() {
                "mod" => {
                    if let Some(name) = file.sig.get(si + 1).map(|&r| &file.tokens[r]) {
                        if name.kind == TokenKind::Ident {
                            pending = Some(Scope::Mod(name.text.clone()));
                        }
                    }
                }
                "impl" => {
                    if let Some((ty, brace_si)) = impl_self_type(file, si) {
                        pending = Some(Scope::Impl(ty));
                        si = brace_si; // skip the header's type tokens
                        continue;
                    }
                }
                "trait" => {
                    // Default trait methods resolve like methods named
                    // after the trait.
                    if let Some(name) = file.sig.get(si + 1).map(|&r| &file.tokens[r]) {
                        if name.kind == TokenKind::Ident {
                            pending = Some(Scope::Impl(name.text.clone()));
                        }
                    }
                }
                "fn" => {
                    let name_tok = file.sig.get(si + 1).map(|&r| &file.tokens[r]);
                    if let Some(name) = name_tok.filter(|n| n.kind == TokenKind::Ident) {
                        let module = stack
                            .iter()
                            .filter_map(|(s, _)| match s {
                                Scope::Mod(m) => Some(m.clone()),
                                _ => None,
                            })
                            .collect();
                        let impl_type = stack.iter().rev().find_map(|(s, _)| match s {
                            Scope::Impl(ty) => Some(ty.clone()),
                            _ => None,
                        });
                        let (body_open, is_method) = fn_signature(file, si + 1);
                        let id = fns.len();
                        fns.push(FnNode {
                            name: name.text.clone(),
                            impl_type,
                            module,
                            file: file_idx,
                            body: None, // patched when the body closes
                            line: t.line,
                            col: t.col,
                            is_test: file.sig_in_test(si),
                            is_method,
                        });
                        match body_open {
                            Some(open_si) => {
                                // Fast-forward to just before the `{`
                                // so `impl Trait`-in-signature tokens
                                // can't confuse the scope walker.
                                pending = Some(Scope::Fn(id));
                                for slot in fn_of.iter_mut().take(open_si).skip(si) {
                                    if slot.is_none() {
                                        *slot = stack.iter().rev().find_map(|(s, _)| match s {
                                            Scope::Fn(f) => Some(*f),
                                            _ => None,
                                        });
                                    }
                                }
                                si = open_si;
                                continue;
                            }
                            None => {
                                // Body-less trait signature.
                            }
                        }
                    } else {
                        // `fn(u32) -> u32` type position — not an item.
                    }
                }
                _ => {}
            }
        } else if t.is_punct('{') {
            depth += 1;
            let scope = pending.take().unwrap_or(Scope::Other);
            if let Scope::Fn(id) = scope {
                fns[id].body = Some((si, si)); // end patched on close
                fn_of[si] = Some(id);
            }
            stack.push((scope, depth));
        } else if t.is_punct('}') {
            if let Some((scope, d)) = stack.last() {
                if *d == depth {
                    if let Scope::Fn(id) = scope {
                        if let Some((start, _)) = fns[*id].body {
                            fns[*id].body = Some((start, si));
                        }
                        fn_of[si] = Some(*id);
                    }
                    stack.pop();
                }
            }
            depth = depth.saturating_sub(1);
        } else if t.is_punct(';') {
            pending = None; // `mod m;`, trait fn signatures
        }
        si += 1;
    }
    fn_of
}

/// For an `impl` keyword at `si`, returns the self type name and the
/// significant position of the opening `{`.
fn impl_self_type(file: &ScannedFile, si: usize) -> Option<(String, usize)> {
    let sig = &file.sig;
    let mut angle = 0usize;
    let mut last_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    let mut i = si + 1;
    while i < sig.len() {
        let t = file.sig_tok(i);
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = angle.saturating_sub(1);
        } else if t.is_punct('{') && angle == 0 {
            let ty = after_for.or(last_ident)?;
            return Some((ty, i));
        } else if (t.is_punct(';') || t.is_punct('(')) && angle == 0 {
            // `impl Fn(u32)` bound in type position, or something that
            // is not an impl block at all — bail.
            return None;
        } else if t.kind == TokenKind::Ident && angle == 0 {
            if t.text == "for" {
                saw_for = true;
            } else if t.text != "where" {
                if saw_for {
                    // Last path segment of the self type wins
                    // (`impl ops::Deref for pool::PooledBuf` → PooledBuf).
                    after_for = Some(t.text.clone());
                } else {
                    last_ident = Some(t.text.clone());
                }
            }
        }
        i += 1;
    }
    None
}

/// From just past the `fn` keyword, finds the opening `{` of the body
/// (None for `;`-terminated signatures) and whether the first parameter
/// mentions `self`.
fn fn_signature(file: &ScannedFile, name_si: usize) -> (Option<usize>, bool) {
    let sig = &file.sig;
    let mut angle = 0usize;
    let mut paren = 0usize;
    let mut is_method = false;
    let mut seen_params = false;
    let mut i = name_si;
    while i < sig.len() {
        let t = file.sig_tok(i);
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            // `->` must not close an angle bracket.
            let prev_is_dash = i > 0 && file.sig_tok(i - 1).is_punct('-');
            if !prev_is_dash {
                angle = angle.saturating_sub(1);
            }
        } else if t.is_punct('(') {
            if paren == 0 && !seen_params && angle == 0 {
                seen_params = true;
                // Peek the first few tokens for `self`.
                for j in i + 1..(i + 5).min(sig.len()) {
                    let p = file.sig_tok(j);
                    if p.is_ident("self") {
                        is_method = true;
                        break;
                    }
                    if p.is_punct(',') || p.is_punct(')') || p.is_punct(':') {
                        break;
                    }
                }
            }
            paren += 1;
        } else if t.is_punct(')') {
            paren = paren.saturating_sub(1);
        } else if t.is_punct('{') && paren == 0 && angle == 0 {
            return (Some(i), is_method);
        } else if t.is_punct(';') && paren == 0 && angle == 0 {
            return (None, is_method);
        }
        i += 1;
    }
    (None, is_method)
}

/// Extracts call sites from one file, attributing each to its innermost
/// enclosing function.
fn extract_calls(file: &ScannedFile, fn_of: &[Option<usize>], calls: &mut [Vec<Call>]) {
    let sig = &file.sig;
    for (si, owner) in fn_of.iter().enumerate() {
        let Some(owner) = *owner else { continue };
        let t = file.sig_tok(si);
        if t.kind != TokenKind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        // Callee name must be directly followed by `(`; `name!(…)` is a
        // macro, `name::(` impossible, `name {` a struct literal.
        if !sig
            .get(si + 1)
            .is_some_and(|&r| file.tokens[r].is_punct('('))
        {
            continue;
        }
        // A definition (`fn name(`) is not a call.
        if si > 0 && file.sig_tok(si - 1).is_ident("fn") {
            continue;
        }
        let kind = if si > 0 && file.sig_tok(si - 1).is_punct('.') {
            CallKind::Method
        } else if si >= 2
            && file.sig_tok(si - 1).is_punct(':')
            && file.sig_tok(si - 2).is_punct(':')
        {
            // Walk the path back to its last qualifying segment:
            // `a::b::f(` → qualifier `b`.
            let mut qual = String::new();
            if si >= 3 {
                let q = file.sig_tok(si - 3);
                if q.kind == TokenKind::Ident {
                    qual = q.text.clone();
                }
            }
            if qual.is_empty() {
                CallKind::Bare // `::f(…)` — crate root; treat as bare
            } else {
                CallKind::Path(qual)
            }
        } else {
            CallKind::Bare
        };
        calls[owner].push(Call {
            name: t.text.clone(),
            kind,
            si,
            line: t.line,
            col: t.col,
            callees: Vec::new(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(sources: &[(&str, &str)]) -> (Vec<FnNode>, Vec<Vec<Call>>) {
        let files: Vec<ScannedFile> = sources
            .iter()
            .map(|(p, s)| ScannedFile::parse(p, s).expect("fixture parses"))
            .collect();
        let g = CallGraph::build(&files);
        (g.fns.clone(), g.calls.clone())
    }

    fn find_fn<'a>(fns: &'a [FnNode], name: &str) -> &'a FnNode {
        fns.iter().find(|f| f.name == name).expect("fn present")
    }

    #[test]
    fn items_capture_impl_and_module_context() {
        let (fns, _) = graph_of(&[(
            "crates/x/src/lib.rs",
            "mod inner {\n  pub struct S;\n  impl S { pub fn method(&self) {} }\n  pub fn free() {}\n}\nimpl std::fmt::Debug for Outer { fn fmt(&self) {} }\n",
        )]);
        let method = find_fn(&fns, "method");
        assert_eq!(method.impl_type.as_deref(), Some("S"));
        assert_eq!(method.module, vec!["inner".to_string()]);
        assert!(method.is_method);
        let free = find_fn(&fns, "free");
        assert!(free.impl_type.is_none());
        assert!(!free.is_method);
        let fmt = find_fn(&fns, "fmt");
        assert_eq!(fmt.impl_type.as_deref(), Some("Outer"));
    }

    #[test]
    fn bodies_and_nested_fns_attribute_calls_correctly() {
        let (fns, calls) = graph_of(&[(
            "crates/x/src/lib.rs",
            "fn outer() {\n  helper();\n  fn nested() { deep(); }\n  nested();\n}\nfn helper() {}\nfn deep() {}\nfn nested() {}\n",
        )]);
        let outer_id = fns.iter().position(|f| f.name == "outer").unwrap();
        let nested_id = fns
            .iter()
            .position(|f| f.name == "nested" && f.body.is_some() && f.file == 0)
            .unwrap();
        let outer_calls: Vec<&str> = calls[outer_id].iter().map(|c| c.name.as_str()).collect();
        assert!(outer_calls.contains(&"helper"));
        assert!(outer_calls.contains(&"nested"));
        assert!(!outer_calls.contains(&"deep"), "deep belongs to nested");
        let nested_calls: Vec<&str> = calls[nested_id].iter().map(|c| c.name.as_str()).collect();
        assert!(nested_calls.contains(&"deep"));
    }

    #[test]
    fn resolution_prefers_impl_then_module_and_skips_externals() {
        let (fns, calls) = graph_of(&[
            (
                "crates/a/src/caller.rs",
                "pub fn go() {\n  let v = Vec::new();\n  v.push(1);\n  Widget::spin();\n  helpers::tidy();\n}\n",
            ),
            (
                "crates/a/src/helpers.rs",
                "pub struct Widget;\nimpl Widget { pub fn spin() {} }\npub fn tidy() {}\n",
            ),
        ]);
        let go = fns.iter().position(|f| f.name == "go").unwrap();
        let by_name: std::collections::HashMap<&str, &Call> =
            calls[go].iter().map(|c| (c.name.as_str(), c)).collect();
        assert!(
            by_name["new"].callees.is_empty(),
            "Vec::new is external: {:?}",
            by_name["new"]
        );
        let spin = &by_name["spin"];
        assert_eq!(spin.callees.len(), 1);
        assert_eq!(fns[spin.callees[0]].name, "spin");
        let tidy = &by_name["tidy"];
        assert_eq!(tidy.callees.len(), 1);
        assert_eq!(fns[tidy.callees[0]].name, "tidy");
    }

    #[test]
    fn method_calls_overapproximate_across_types() {
        let (fns, calls) = graph_of(&[(
            "crates/x/src/lib.rs",
            "struct A; struct B;\nimpl A { fn tick(&self) {} }\nimpl B { fn tick(&self) {} }\nfn drive(x: &A) { x.tick(); }\n",
        )]);
        let drive = fns.iter().position(|f| f.name == "drive").unwrap();
        let tick = calls[drive].iter().find(|c| c.name == "tick").unwrap();
        assert_eq!(tick.kind, CallKind::Method);
        assert_eq!(tick.callees.len(), 2, "both impls are candidates");
    }

    #[test]
    fn trait_signatures_have_no_body_and_generic_sigs_find_theirs() {
        let (fns, _) = graph_of(&[(
            "crates/x/src/lib.rs",
            "trait T { fn sig(&self); fn dflt(&self) { work() } }\nfn generic<V: Into<Vec<u8>>>(v: V) -> Vec<u8> { v.into() }\nfn work() {}\n",
        )]);
        assert!(find_fn(&fns, "sig").body.is_none());
        assert!(find_fn(&fns, "dflt").body.is_some());
        assert_eq!(find_fn(&fns, "dflt").impl_type.as_deref(), Some("T"));
        assert!(find_fn(&fns, "generic").body.is_some());
    }
}
