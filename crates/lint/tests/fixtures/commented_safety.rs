//! Good fixture: every `unsafe` site carries its SAFETY justification.

/// Reads through a raw pointer.
///
/// # Safety
///
/// `p` must be valid for reads.
pub unsafe fn peek(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` is valid for reads.
    unsafe { *p }
}

/// Safe wrapper over a byte copy.
pub fn first(bytes: &[u8]) -> u8 {
    // SAFETY: the slice is non-empty; checked by the caller's len gate.
    unsafe { *bytes.as_ptr() }
}
