//! Bad fixture: deriving `Debug` on a struct that holds private-key
//! material would print CRT limbs into logs.

/// A bundle that embeds the secret half of a keypair.
#[derive(Debug, Clone)]
pub struct KeyBundle {
    /// The secret half; must never be `Debug`-printed.
    pub private: PrivateKey,
    /// Public counterpart (fine on its own).
    pub label: String,
}
