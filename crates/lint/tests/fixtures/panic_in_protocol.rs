//! Bad fixture: panicking operations in a protocol path. The unwraps in
//! the test module at the bottom must NOT be flagged.

/// Decodes a frame header, falling over on adversarial input.
pub fn decode(bytes: &[u8]) -> u32 {
    let first = bytes.first().unwrap();
    if *first > 8 {
        panic!("bad frame");
    }
    let tail = bytes.get(1).copied().expect("frame has a tail");
    u32::from(*first) + u32::from(tail)
}

// A comment saying .unwrap() and a string "x.unwrap()" must not trip
// the rule either.
/// Doc text mentioning panic!("nope") is also fine.
pub fn describe() -> &'static str {
    ".unwrap() in a string literal"
}

#[cfg(test)]
mod tests {
    use super::decode;

    #[test]
    fn decodes() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        assert_eq!(decode(&[1, 2]), 3);
    }
}
