//! Fixture: arithmetic on charging counters. `record` wraps silently
//! on overflow — exactly the class of bug the charge-arith audit
//! exists to catch; `record_ok` is the accepted saturating form, and
//! `lossy` narrows a 64-bit counter through an `as` cast.

pub struct Counters {
    pub sent: u64,
    pub delivered: u64,
}

impl Counters {
    pub fn record(&mut self, n: u64) {
        self.sent += n;
    }

    pub fn record_ok(&mut self, n: u64) {
        self.delivered = self.delivered.saturating_add(n);
    }

    pub fn lossy(&self) -> u32 {
        self.sent as u32
    }
}
