//! Bad fixture: an `unsafe` block with no adjacent SAFETY comment.

/// Reads through a raw pointer without justifying why that is sound.
pub fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}

/// An `unsafe fn` is equally required to carry the comment.
pub unsafe fn poke(p: *mut u8, v: u8) {
    unsafe { *p = v }
}
