//! Bad fixture: ambient wall-clock and entropy in simulation code
//! breaks byte-identical replay.

use std::time::Instant;

/// Timestamps an event with the wall clock.
pub fn stamp() -> Instant {
    Instant::now()
}

/// Wall-clock epoch time is no better.
pub fn epoch() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Ambient RNG instead of the seeded workspace PRNG.
pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
