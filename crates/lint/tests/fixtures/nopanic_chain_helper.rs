//! Fixture: helpers living *outside* the no-panic scope. The deep one
//! panics on empty input; the middle one merely forwards. A root in
//! `NO_PANIC_PATHS` that calls `helper_mid` may therefore panic two
//! hops away from its own file.

pub fn helper_mid(buf: &[u8]) -> usize {
    helper_deep(buf)
}

pub fn helper_deep(buf: &[u8]) -> usize {
    let first = buf.first().expect("non-empty frame");
    *first as usize
}
