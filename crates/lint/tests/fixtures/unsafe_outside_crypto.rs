//! Bad fixture: `unsafe` in a crate other than tlc-crypto, even with a
//! perfectly good SAFETY comment.

/// Reads through a raw pointer outside the sanctioned crate.
pub fn peek(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` is valid for reads.
    unsafe { *p }
}
