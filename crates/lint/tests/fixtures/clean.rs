//! Good fixture: passes every rule even under the strictest
//! (tlc-crypto) path.

/// Wrapping addition; no panics, no unsafe, no ambient state.
pub fn add(a: u32, b: u32) -> u32 {
    a.wrapping_add(b)
}

/// Fallible decode returning a Result instead of unwrapping.
pub fn decode(bytes: &[u8]) -> Result<u32, &'static str> {
    match bytes.first() {
        Some(b) => Ok(u32::from(*b)),
        None => Err("empty frame"),
    }
}
