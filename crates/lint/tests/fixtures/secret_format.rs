//! Bad fixture: secret material flowing into format-family macros.

/// Logs a key — straight into stdout.
pub fn log_key(private_key: &PrivateKey) {
    println!("negotiated with key {:?}", private_key);
}

/// CRT exponents as format arguments are just as bad.
pub fn trace_crt(dp: &[u64], dq: &[u64]) -> String {
    format!("dp={:?} dq={:?}", dp, dq)
}
