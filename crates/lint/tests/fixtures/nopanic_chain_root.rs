//! Fixture: a no-panic root that reaches a panic only via a two-hop
//! call chain. This file itself contains no panic token, so the v1
//! per-file `no-panic` rule sees nothing here; only the transitive
//! pass can connect it to `helper_deep`'s `.expect()`.

use super::fixture_helper::helper_mid;

pub fn verify_frame(buf: &[u8]) -> usize {
    helper_mid(buf)
}
