//! Fixture: an a->b / b->a lock-order cycle. `forward` holds `a` and
//! picks up `b` *interprocedurally* (through `bump_b`); `backward`
//! nests them directly in the opposite order. Neither path alone is a
//! bug — together they can deadlock.

use std::sync::Mutex;

pub struct Shared {
    pub a: Mutex<u64>,
    pub b: Mutex<u64>,
}

impl Shared {
    pub fn forward(&self) {
        let ga = self.a.lock().unwrap();
        self.bump_b();
        drop(ga);
    }

    fn bump_b(&self) {
        let gb = self.b.lock().unwrap();
        let _ = gb;
    }

    pub fn backward(&self) -> u64 {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        *gb + *ga
    }
}
