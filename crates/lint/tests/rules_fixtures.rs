//! Per-rule fixture tests: each known-bad snippet must produce exactly
//! the expected findings under `lint_source`, the good snippets none,
//! and `run_check` over the real workspace must be clean.

use std::path::Path;
use tlc_lint::rules::Finding;
use tlc_lint::{lint_source, run_check, ALLOWLIST_FILE};

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = findings.iter().map(|f| f.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

#[test]
fn missing_safety_comment_is_flagged() {
    let src = include_str!("fixtures/missing_safety.rs");
    let findings = lint_source("crates/crypto/src/fixture.rs", src);
    assert_eq!(rules_of(&findings), ["safety-comment"], "{findings:?}");
    // One per unjustified unsafe site: the block in `peek`, the
    // `unsafe fn poke` itself, and the block inside it.
    assert_eq!(findings.len(), 3, "{findings:?}");
    assert!(findings.iter().all(|f| f.line > 0 && f.col > 0));
}

#[test]
fn safety_comments_satisfy_the_rule() {
    let src = include_str!("fixtures/commented_safety.rs");
    let findings = lint_source("crates/crypto/src/fixture.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn unsafe_outside_crypto_is_flagged_even_with_safety_comment() {
    let src = include_str!("fixtures/unsafe_outside_crypto.rs");
    let findings = lint_source("crates/core/src/fixture.rs", src);
    assert_eq!(rules_of(&findings), ["unsafe-scope"], "{findings:?}");
    // The same source inside tlc-crypto is fine.
    assert!(lint_source("crates/crypto/src/fixture.rs", src).is_empty());
}

#[test]
fn panics_in_protocol_paths_are_flagged_but_not_in_tests() {
    let src = include_str!("fixtures/panic_in_protocol.rs");
    let findings = lint_source("crates/core/src/verify/fixture.rs", src);
    assert_eq!(rules_of(&findings), ["no-panic"], "{findings:?}");
    // unwrap + panic! + expect in `decode`; the test-module unwrap and
    // the string/comment mentions must not count.
    assert_eq!(findings.len(), 3, "{findings:?}");
    assert!(findings.iter().all(|f| f.item == "decode"), "{findings:?}");
    // Outside the no-panic scope the same file is fine.
    assert!(lint_source("crates/sim/src/fixture.rs", src).is_empty());
}

#[test]
fn derive_debug_on_private_key_holder_is_flagged() {
    let src = include_str!("fixtures/secret_debug.rs");
    let findings = lint_source("crates/core/src/fixture.rs", src);
    assert_eq!(rules_of(&findings), ["secret-hygiene"], "{findings:?}");
}

#[test]
fn secrets_in_format_macros_are_flagged() {
    let src = include_str!("fixtures/secret_format.rs");
    let findings = lint_source("crates/core/src/fixture.rs", src);
    assert_eq!(rules_of(&findings), ["secret-hygiene"], "{findings:?}");
    assert!(findings.len() >= 2, "both macros flagged: {findings:?}");
}

#[test]
fn ambient_time_and_rng_are_flagged() {
    let src = include_str!("fixtures/nondeterminism.rs");
    let findings = lint_source("crates/sim/src/fixture.rs", src);
    assert_eq!(rules_of(&findings), ["determinism"], "{findings:?}");
    assert!(
        findings.len() >= 3,
        "Instant::now, SystemTime::now, thread_rng: {findings:?}"
    );
}

#[test]
fn clean_fixture_passes_every_rule() {
    let src = include_str!("fixtures/clean.rs");
    let findings = lint_source("crates/crypto/src/fixture.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn bad_corpus_fails_as_a_whole() {
    // Acceptance criterion: the linter exits non-zero on the bad
    // corpus. Equivalent library-level statement: every bad fixture
    // yields at least one finding.
    for (name, src) in [
        (
            "missing_safety.rs",
            include_str!("fixtures/missing_safety.rs"),
        ),
        (
            "unsafe_outside_crypto.rs",
            include_str!("fixtures/unsafe_outside_crypto.rs"),
        ),
        (
            "panic_in_protocol.rs",
            include_str!("fixtures/panic_in_protocol.rs"),
        ),
        ("secret_debug.rs", include_str!("fixtures/secret_debug.rs")),
        (
            "secret_format.rs",
            include_str!("fixtures/secret_format.rs"),
        ),
        (
            "nondeterminism.rs",
            include_str!("fixtures/nondeterminism.rs"),
        ),
    ] {
        let findings = lint_source(&format!("crates/core/src/verify/{name}"), src);
        assert!(!findings.is_empty(), "{name} must fail the lint");
    }
}

#[test]
fn workspace_is_clean_under_the_checked_allowlist() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf();
    let report = run_check(&root, &root.join(ALLOWLIST_FILE)).expect("workspace scan");
    assert!(
        report.is_clean(),
        "workspace lint findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_scanned > 50,
        "scanned {}",
        report.files_scanned
    );
}
