//! Fixture tests for the three interprocedural passes (DESIGN §9.1):
//! transitive no-panic propagation, lock-order cycle detection, and
//! the charge-arithmetic audit. Each test also pins down what the v1
//! per-file rules could *not* see, so the value of the call-graph
//! layer stays demonstrated, not assumed.

use tlc_lint::rules::Finding;
use tlc_lint::{lint_source, lint_sources};

fn by_rule<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn two_hop_panic_chain_is_invisible_to_the_per_file_rule() {
    // The root file contains no panic token at all, so the v1
    // direct-token `no-panic` rule must find nothing in it — the panic
    // lives two calls away in a file outside the no-panic scope.
    let root = include_str!("fixtures/nopanic_chain_root.rs");
    let findings = lint_source("crates/core/src/verify/fixture_root.rs", root);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn two_hop_panic_chain_is_caught_transitively_with_the_chain_named() {
    let root = include_str!("fixtures/nopanic_chain_root.rs");
    let helper = include_str!("fixtures/nopanic_chain_helper.rs");
    let findings = lint_sources(&[
        ("crates/core/src/verify/fixture_root.rs", root),
        ("crates/core/src/fixture_helper.rs", helper),
    ]);
    let hits = by_rule(&findings, "transitive-no-panic");
    assert_eq!(hits.len(), 1, "{findings:?}");
    let f = hits[0];
    // The finding lands on the root (the fn that owes the guarantee)...
    assert_eq!(f.path, "crates/core/src/verify/fixture_root.rs");
    assert_eq!(f.item, "verify_frame");
    // ...and names the full chain plus the offending site.
    assert!(
        f.message
            .contains("verify_frame -> helper_mid -> helper_deep"),
        "chain not named: {}",
        f.message
    );
    assert!(
        f.message.contains("crates/core/src/fixture_helper.rs"),
        "panic site file not named: {}",
        f.message
    );
    // Nothing else fires: the helper file is outside the per-file
    // no-panic scope by design.
    assert_eq!(findings.len(), 1, "{findings:?}");
}

#[test]
fn helper_alone_outside_the_scope_stays_clean() {
    // Without a no-panic root reaching it, the panicking helper is not
    // a finding — the guarantee attaches to roots, not helpers.
    let helper = include_str!("fixtures/nopanic_chain_helper.rs");
    let findings = lint_sources(&[("crates/core/src/fixture_helper.rs", helper)]);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn opposite_order_lock_acquisition_is_a_cycle() {
    // `forward` holds a and takes b through a call; `backward` nests
    // b then a directly. The pass must stitch both edge kinds into one
    // reported cycle.
    let src = include_str!("fixtures/lock_cycle.rs");
    let findings = lint_sources(&[("crates/net/src/fixture_locks.rs", src)]);
    let hits = by_rule(&findings, "lock-order");
    assert!(!hits.is_empty(), "{findings:?}");
    let msg = &hits[0].message;
    assert!(
        msg.contains("Shared.a") && msg.contains("Shared.b"),
        "cycle locks not named: {msg}"
    );
    assert_eq!(
        findings.len(),
        hits.len(),
        "only lock-order fires: {findings:?}"
    );
}

#[test]
fn consistent_lock_order_is_clean() {
    let src = r#"
use std::sync::Mutex;

pub struct Shared {
    pub a: Mutex<u64>,
    pub b: Mutex<u64>,
}

impl Shared {
    pub fn both(&self) -> u64 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }

    pub fn both_again(&self) -> u64 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga * *gb
    }
}
"#;
    let findings = lint_sources(&[("crates/net/src/fixture_locks.rs", src)]);
    assert!(by_rule(&findings, "lock-order").is_empty(), "{findings:?}");
}

#[test]
fn unchecked_arithmetic_on_charge_counters_is_flagged() {
    // The fixture poses as a CHARGE_PATHS file; its raw `+=` and its
    // narrowing `as u32` must both fire, while the saturating form in
    // `record_ok` stays clean.
    let src = include_str!("fixtures/charge_overflow.rs");
    let findings = lint_sources(&[("crates/sim/src/soa.rs", src)]);
    let hits = by_rule(&findings, "charge-arith");
    assert_eq!(hits.len(), 2, "{findings:?}");
    assert_eq!(hits[0].item, "record");
    assert!(
        hits[0].message.contains("`+=`") && hits[0].message.contains("sent"),
        "{}",
        hits[0].message
    );
    assert_eq!(hits[1].item, "lossy");
    assert!(hits[1].message.contains("u32"), "{}", hits[1].message);
    assert!(
        !findings.iter().any(|f| f.item == "record_ok"),
        "saturating form must not fire: {findings:?}"
    );
}

#[test]
fn charge_audit_is_scoped_to_charge_paths() {
    // The same source outside CHARGE_PATHS is not audited: raw `+=`
    // on a non-charging struct is ordinary arithmetic.
    let src = include_str!("fixtures/charge_overflow.rs");
    let findings = lint_sources(&[("crates/net/src/fixture_counters.rs", src)]);
    assert!(
        by_rule(&findings, "charge-arith").is_empty(),
        "{findings:?}"
    );
}
