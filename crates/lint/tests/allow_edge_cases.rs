//! Edge-case coverage for the LINT_ALLOW parser and the checked-apply
//! semantics: wildcard items, stale-entry reporting, duplicate
//! entries, malformed lines, and trailing-comment handling.

use tlc_lint::allow::{apply, parse};
use tlc_lint::rules::Finding;

fn f(rule: &'static str, path: &str, item: &str) -> Finding {
    Finding {
        rule,
        path: path.to_string(),
        line: 7,
        col: 3,
        item: item.to_string(),
        message: String::new(),
    }
}

#[test]
fn wildcard_item_covers_every_item_in_the_file_only() {
    let (entries, errs) = parse("LINT_ALLOW", "determinism crates/a/src/x.rs *\n");
    assert!(errs.is_empty(), "{errs:?}");
    let kept = apply(
        "LINT_ALLOW",
        &entries,
        vec![
            f("determinism", "crates/a/src/x.rs", "foo"),
            f("determinism", "crates/a/src/x.rs", "bar"),
            // Same rule, different file: not covered.
            f("determinism", "crates/a/src/y.rs", "foo"),
            // Same file, different rule: not covered.
            f("no-panic", "crates/a/src/x.rs", "foo"),
        ],
    );
    let mut survived: Vec<(&str, &str)> = kept.iter().map(|k| (k.rule, k.path.as_str())).collect();
    survived.sort_unstable();
    assert_eq!(
        survived,
        [
            ("determinism", "crates/a/src/y.rs"),
            ("no-panic", "crates/a/src/x.rs"),
        ],
        "{kept:?}"
    );
}

#[test]
fn stale_entries_report_their_own_line_number() {
    let text = "\n# header comment\nno-panic crates/a/src/x.rs live # fine\nno-panic crates/a/src/x.rs gone # obsolete\n";
    let (entries, errs) = parse("LINT_ALLOW", text);
    assert!(errs.is_empty(), "{errs:?}");
    let kept = apply(
        "LINT_ALLOW",
        &entries,
        vec![f("no-panic", "crates/a/src/x.rs", "live")],
    );
    assert_eq!(kept.len(), 1, "{kept:?}");
    assert_eq!(kept[0].rule, "allowlist");
    // `gone` sits on line 4 of the file, comments and blanks included.
    assert_eq!(kept[0].line, 4);
    assert!(kept[0].message.contains("stale"), "{}", kept[0].message);
    assert!(kept[0].message.contains("gone"), "{}", kept[0].message);
}

#[test]
fn duplicate_entries_are_reported_and_not_double_counted() {
    let text = "no-panic crates/a/src/x.rs foo\nno-panic crates/a/src/x.rs foo # same again\n";
    let (entries, errs) = parse("LINT_ALLOW", text);
    // Only the first copy becomes an entry...
    assert_eq!(entries.len(), 1);
    // ...and the second is a finding pointing back at the first.
    assert_eq!(errs.len(), 1, "{errs:?}");
    assert_eq!(errs[0].rule, "allowlist");
    assert_eq!(errs[0].line, 2);
    assert!(errs[0].message.contains("duplicate"), "{}", errs[0].message);
    assert!(
        errs[0].message.contains("first on line 1"),
        "{}",
        errs[0].message
    );
    // The surviving entry still works — and produces exactly one
    // stale report when unused, not two.
    let kept = apply("LINT_ALLOW", &entries, vec![]);
    assert_eq!(kept.len(), 1, "{kept:?}");
}

#[test]
fn malformed_lines_are_findings_not_panics() {
    let text = "no-panic crates/a/src/x.rs\nno-panic a b c d\nnot-a-rule crates/a/src/x.rs foo\n";
    let (entries, errs) = parse("LINT_ALLOW", text);
    assert!(entries.is_empty(), "{entries:?}");
    assert_eq!(errs.len(), 3, "{errs:?}");
    assert!(errs[0].message.contains("malformed"), "{}", errs[0].message);
    assert!(errs[1].message.contains("malformed"), "{}", errs[1].message);
    assert!(
        errs[2].message.contains("unknown rule"),
        "{}",
        errs[2].message
    );
    assert_eq!(
        errs.iter().map(|e| e.line).collect::<Vec<_>>(),
        [1, 2, 3],
        "each malformed line is pinpointed"
    );
}

#[test]
fn trailing_comments_and_comment_only_lines_are_ignored() {
    let text = "# full-line comment\n   # indented comment\nno-panic crates/a/src/x.rs foo # trailing # nested hash\n\n";
    let (entries, errs) = parse("LINT_ALLOW", text);
    assert!(errs.is_empty(), "{errs:?}");
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].item, "foo");
    assert_eq!(entries[0].line, 3);
}

#[test]
fn interprocedural_rule_ids_are_valid_allowlist_rules() {
    // The v2 passes must be suppressible through the same mechanism.
    let text = "transitive-no-panic crates/a/src/x.rs root\nlock-order crates/a/src/x.rs forward\ncharge-arith crates/a/src/x.rs record\n";
    let (entries, errs) = parse("LINT_ALLOW", text);
    assert!(errs.is_empty(), "{errs:?}");
    assert_eq!(entries.len(), 3);
}
