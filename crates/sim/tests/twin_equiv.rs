//! Equivalence guard and churn regressions for the digital twin.
//!
//! Three contracts, pinned hard:
//!
//! 1. **Backend equivalence** — the hierarchical timer wheel and the
//!    legacy binary-heap scheduler produce byte-identical runs (same
//!    digest, same gap sweep, same event count) for equal seeds, both
//!    on random scheduler op streams and through whole twin runs.
//! 2. **Thread invariance** — the epoch-barrier loop yields the same
//!    digest at any worker thread count (shard count is a model
//!    parameter; thread count must never be).
//! 3. **Churn safety** — teardown mid-cycle settles the partial cycle
//!    exactly once, handovers crossing a cycle boundary never
//!    double-count gateway bytes, and a reused arena slot cannot be
//!    reached through a stale `SessionId`.

use proptest::prelude::*;
use tlc_net::time::SimDuration;
use tlc_sim::twin::{
    run_twin, NullSink, RoamingTwinConfig, SettleCause, Settled, SettlementSink, TwinConfig,
};
use tlc_sim::wheel::{Scheduler, Token, WheelBackend};
use tlc_sim::{Arena, GapSweep};

fn base(seed: u64) -> TwinConfig {
    let mut cfg = TwinConfig::smoke(seed);
    cfg.initial_sessions = 300;
    cfg.duration = SimDuration::from_secs(8);
    cfg
}

fn roaming_base(seed: u64) -> TwinConfig {
    let mut cfg = base(seed);
    cfg.roaming = Some(RoamingTwinConfig::paper_default());
    cfg
}

/// Collects every settlement the twin emits.
#[derive(Default)]
struct Collect(Vec<Settled>);

impl SettlementSink for Collect {
    fn settle(&mut self, s: &Settled) {
        self.0.push(*s);
    }
}

/// Fixed-seed golden digest: if this moves, the twin's event order,
/// RNG consumption, or charging arithmetic changed — which breaks
/// replayability of every recorded benchmark. Update deliberately.
#[test]
fn golden_digest_is_pinned() {
    let r = run_twin(&base(2024), &mut NullSink);
    assert_eq!(
        r.digest, GOLDEN_DIGEST,
        "twin digest moved: event order, RNG draws, or pricing changed"
    );
    assert_eq!(r.stale_events, 0);
}

const GOLDEN_DIGEST: u64 = 0xaf17_22ff_643f_2af5;

/// Same contract for a roaming-enabled run: the roaming plane's RNG
/// draws, operator-handover schedule, and three-party settlement
/// counters are all folded into this digest, so any drift in the
/// roaming event order or split arithmetic moves it.
#[test]
fn roaming_golden_digest_is_pinned() {
    let r = run_twin(&roaming_base(2024), &mut NullSink);
    assert_eq!(
        r.digest, ROAMING_GOLDEN_DIGEST,
        "roaming twin digest moved: roaming event order, RNG draws, or split arithmetic changed"
    );
    assert_eq!(r.stale_events, 0);
    // And the non-roaming golden must be wholly unaffected by the
    // roaming code existing: re-assert it next to its sibling.
    assert_eq!(run_twin(&base(2024), &mut NullSink).digest, GOLDEN_DIGEST);
}

const ROAMING_GOLDEN_DIGEST: u64 = 0x74a1_54a2_1fe8_5c31;

/// Backend and thread invariance for a roaming-enabled run, against
/// the pinned golden (wheel↔heap byte-identical, 1/2/8 threads).
#[test]
fn roaming_run_is_backend_and_thread_invariant() {
    for backend in [WheelBackend::Wheel, WheelBackend::Heap] {
        for threads in [1usize, 2, 8] {
            let mut cfg = roaming_base(2024);
            cfg.backend = backend;
            cfg.threads = threads;
            let r = run_twin(&cfg, &mut NullSink);
            assert_eq!(
                r.digest, ROAMING_GOLDEN_DIGEST,
                "{backend:?} × {threads} threads diverged"
            );
            assert_eq!(
                r.roaming
                    .home
                    .saturating_add(r.roaming.visited)
                    .saturating_add(r.roaming.vendor),
                r.roaming.charged,
                "{backend:?} × {threads} threads broke conservation"
            );
        }
    }
}

#[test]
fn wheel_and_heap_runs_are_byte_identical() {
    for seed in [7u64, 8, 9] {
        let mut w = base(seed);
        w.backend = WheelBackend::Wheel;
        let mut h = base(seed);
        h.backend = WheelBackend::Heap;
        let rw = run_twin(&w, &mut NullSink);
        let rh = run_twin(&h, &mut NullSink);
        assert_eq!(rw.digest, rh.digest, "seed {seed}");
        assert_eq!(rw.events_fired, rh.events_fired, "seed {seed}");
        assert_eq!(rw.sweep, rh.sweep, "seed {seed}");
        assert_eq!(rw.handovers, rh.handovers, "seed {seed}");
    }
}

#[test]
fn thread_count_never_changes_the_run() {
    let digests: Vec<u64> = [1usize, 2, 8]
        .iter()
        .map(|&threads| {
            let mut cfg = base(11);
            cfg.threads = threads;
            run_twin(&cfg, &mut NullSink).digest
        })
        .collect();
    assert_eq!(digests[0], digests[1]);
    assert_eq!(digests[0], digests[2]);
}

/// Teardown mid-cycle: lifetimes far shorter than the charging cycle
/// force every session to settle a partial cycle at teardown. The
/// partial cycle must settle exactly once (settlement totals equal the
/// aggregate sweep), no event may reach a freed slot, and arena slots
/// must bound at peak concurrency rather than total admissions.
#[test]
fn teardown_mid_cycle_settles_once_and_reuses_slots() {
    let mut cfg = base(21);
    cfg.cycle = SimDuration::from_secs(30); // longer than the run
    cfg.churn.mean_lifetime = SimDuration::from_secs(2);
    cfg.duration = SimDuration::from_secs(12);
    let mut sink = Collect::default();
    let r = run_twin(&cfg, &mut sink);

    assert!(r.sessions_retired > 0, "short lifetimes must retire");
    assert_eq!(r.stale_events, 0, "an event reached a freed slot");
    assert!(
        sink.0.iter().any(|s| s.cause == SettleCause::Teardown),
        "no teardown settlements recorded"
    );
    // Every settled byte settles exactly once: re-summing the sink's
    // settlements must reproduce the aggregate sweep bit for bit.
    let mut resum = GapSweep::default();
    for s in &sink.0 {
        resum.active_rows += 1;
        resum.total_sent += s.settlement.truth.edge;
        resum.total_delivered += s.settlement.truth.operator;
        resum.total_gateway += s.settlement.legacy_charge;
        resum.intended += s.settlement.intended;
        resum.legacy_gap += s.settlement.legacy_gap();
        resum.tlc_gap += s.settlement.tlc_gap();
    }
    assert_eq!(resum, r.sweep, "settlements double- or under-counted");
    assert!(
        r.peak_shard_slots * (cfg.shards as u64) < r.sessions_created,
        "churn grew the arenas instead of reusing slots: peak {} × {} shards vs {} created",
        r.peak_shard_slots,
        cfg.shards,
        r.sessions_created
    );
}

/// Handovers crossing a cycle boundary: the flush claws back only
/// bytes delivered *this* cycle (the clamp in `handover_flush`), so
/// the truth pair stays ordered and gateway bytes are never counted
/// into two cycles.
#[test]
fn handover_crossing_cycle_boundary_does_not_double_count() {
    let mut cfg = base(22);
    cfg.cycle = SimDuration::from_millis(1500); // many boundaries
    cfg.churn.handovers_per_minute = 40.0; // ~one per 1.5 s
    let mut sink = Collect::default();
    let r = run_twin(&cfg, &mut sink);

    assert!(r.handovers > 0, "handover config produced none");
    for s in &sink.0 {
        let t = s.settlement.truth;
        assert!(
            t.operator <= t.edge,
            "delivered {} > sent {} — a flush clawed back bytes from a previous cycle",
            t.operator,
            t.edge
        );
        assert!(
            s.settlement.measured.operator <= t.operator,
            "monitor lag exceeded delivered"
        );
    }
    // Gateway conservation: each gateway byte belongs to exactly one
    // settled cycle.
    let gw: u64 = sink.0.iter().map(|s| s.settlement.legacy_charge).sum();
    assert_eq!(gw, r.sweep.total_gateway);
}

/// Slot reuse safety at the data-structure level: a stale `SessionId`
/// (torn down, slot reused by a later arrival) must dereference to
/// `None`, and a stale wheel token must not cancel the slot's new
/// occupant.
#[test]
fn stale_ids_and_tokens_cannot_alias_reused_slots() {
    let mut arena: Arena<&'static str> = Arena::new();
    let a = arena.insert("first");
    assert_eq!(arena.remove(a), Some("first"));
    let b = arena.insert("second");
    assert_eq!(b.index, a.index, "free list should reuse the slot");
    assert_ne!(b.generation, a.generation);
    assert_eq!(arena.get(a), None, "stale id resolved after reuse");
    assert_eq!(arena.get(b), Some(&"second"));

    let mut sched: Scheduler<u32> = Scheduler::new(WheelBackend::Wheel);
    let t1 = sched.schedule(10, 1);
    assert!(sched.cancel(t1));
    let t2 = sched.schedule(10, 2);
    assert!(!sched.cancel(t1), "stale token cancelled the reused slot");
    assert_eq!(sched.pop_next(u64::MAX), Some((10, 1, 2)));
    let _: Token = t2;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized scheduler conformance: any interleaving of
    /// schedule/cancel/pop must fire identically on both backends.
    #[test]
    fn prop_wheel_matches_heap(
        seed in 1u64..5000,
        ops in 50usize..400,
    ) {
        let run = |backend: WheelBackend| -> Vec<(u64, u64)> {
            let mut s: Scheduler<u64> = Scheduler::new(backend);
            let mut fired = Vec::new();
            let mut tokens: Vec<Token> = Vec::new();
            let mut x = seed;
            let mut rng = move || {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                x >> 16
            };
            let mut now = 0u64;
            for op in 0..ops as u64 {
                match rng() % 8 {
                    0..=4 => {
                        let delta = match rng() % 6 {
                            0 => rng() % 16,
                            1..=2 => rng() % 4096,
                            3 => rng() % 1_000_000,
                            4 => rng() % 400_000_000,
                            _ => (1u64 << 32) + rng() % 4096,
                        };
                        tokens.push(s.schedule(now + delta, op));
                    }
                    5 => {
                        if !tokens.is_empty() {
                            let i = (rng() as usize) % tokens.len();
                            s.cancel(tokens[i]);
                        }
                    }
                    _ => {
                        now += rng() % 3000;
                        while let Some((t, _, p)) = s.pop_next(now) {
                            fired.push((t, p));
                        }
                    }
                }
            }
            while let Some((t, _, p)) = s.pop_next(u64::MAX) {
                fired.push((t, p));
            }
            fired
        };
        let w = run(WheelBackend::Wheel);
        let h = run(WheelBackend::Heap);
        prop_assert_eq!(w, h);
    }

    /// Randomized twin invariance: small random configurations must
    /// digest identically across backends and thread counts.
    #[test]
    fn prop_twin_backend_and_threads_invariant(
        seed in 1u64..1000,
        shards in 1usize..5,
        sessions in 20usize..120,
        threads in 2usize..5,
    ) {
        let mut cfg = TwinConfig::smoke(seed);
        cfg.shards = shards;
        cfg.initial_sessions = sessions;
        cfg.duration = SimDuration::from_secs(4);
        cfg.threads = 1;
        cfg.backend = WheelBackend::Wheel;
        let reference = run_twin(&cfg, &mut NullSink);

        let mut heap = cfg.clone();
        heap.backend = WheelBackend::Heap;
        prop_assert_eq!(run_twin(&heap, &mut NullSink).digest, reference.digest);

        let mut mt = cfg.clone();
        mt.threads = threads;
        prop_assert_eq!(run_twin(&mt, &mut NullSink).digest, reference.digest);
        prop_assert_eq!(reference.stale_events, 0);
    }
}
