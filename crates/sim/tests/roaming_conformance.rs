//! Conformance suite for the three-party roaming settlement plane
//! (DESIGN §14).
//!
//! Three contracts, pinned hard:
//!
//! 1. **Golden settlement splits** — a fixed-seed roaming twin run
//!    produces exactly the recorded home/visited/vendor volumes; any
//!    drift in split arithmetic or the roaming event order moves them.
//! 2. **Conservation laws** (proptest) — for arbitrary volumes,
//!    agreement shares, and handover segmentations,
//!    `home + visited + vendor == charged` holds *exactly*; and for a
//!    bonded device, the per-link CDR volumes sum to the session
//!    volume under any loss/reorder schedule, with the reconciled
//!    charge equal to the exact sum of per-link charges.
//! 3. **Equivalence axes** — roaming-enabled runs digest identically
//!    across wheel/heap backends and any thread count.

use proptest::prelude::*;
use tlc_core::plan::{charge_for, DataPlan, LossWeight, UsagePair};
use tlc_core::roaming::{
    bonded_volume, reconcile_bonded, LinkCdr, RoamingAgreement, Segment, Serving,
};
use tlc_net::time::SimDuration;
use tlc_sim::twin::{run_twin, NullSink, RoamingSweep, RoamingTwinConfig, TwinConfig};
use tlc_sim::wheel::WheelBackend;

fn roaming_cfg(seed: u64) -> TwinConfig {
    let mut cfg = TwinConfig::smoke(seed);
    cfg.initial_sessions = 250;
    cfg.duration = SimDuration::from_secs(6);
    cfg.roaming = Some(RoamingTwinConfig::paper_default());
    cfg
}

/// Fixed-seed golden splits: the exact three-party volumes a seed-42
/// roaming run settles. If any number moves, the settlement
/// arithmetic (or the event/RNG order feeding it) changed — update
/// deliberately, alongside `twin_equiv`'s roaming golden digest.
#[test]
fn golden_settlement_splits_are_pinned() {
    let r = run_twin(&roaming_cfg(42), &mut NullSink);
    let g = r.roaming;
    assert!(g.cycles_settled > 0);
    assert_eq!(
        g.home.saturating_add(g.visited).saturating_add(g.vendor),
        g.charged,
        "conservation broke before the golden even applies"
    );
    assert_eq!(
        g, GOLDEN_SWEEP,
        "golden roaming splits moved: settlement arithmetic or event order changed"
    );
}

const GOLDEN_SWEEP: RoamingSweep = RoamingSweep {
    roamers_admitted: 150,
    bonded_admitted: 84,
    operator_handovers: 94,
    cycles_settled: 1196,
    charged: 415_499_104,
    home: 322_345_285,
    visited: 10_054_504,
    vendor: 83_099_315,
    bonded_cycles: 201,
    bonded_link_charged: 88_560_693,
};

/// Both equivalence axes at once, with the conservation law asserted
/// at every point of the matrix.
#[test]
fn backends_and_threads_agree_on_settlement() {
    let reference = run_twin(&roaming_cfg(77), &mut NullSink);
    for backend in [WheelBackend::Wheel, WheelBackend::Heap] {
        for threads in [1usize, 2, 4] {
            let mut cfg = roaming_cfg(77);
            cfg.backend = backend;
            cfg.threads = threads;
            let r = run_twin(&cfg, &mut NullSink);
            assert_eq!(r.digest, reference.digest, "{backend:?} × {threads}");
            assert_eq!(r.roaming, reference.roaming, "{backend:?} × {threads}");
            assert_eq!(
                r.roaming
                    .home
                    .saturating_add(r.roaming.visited)
                    .saturating_add(r.roaming.vendor),
                r.roaming.charged,
                "{backend:?} × {threads} leaked settlement bytes"
            );
        }
    }
}

/// Strategy: a reduced-rational share in [0, 1].
fn arb_share() -> impl Strategy<Value = LossWeight> {
    (1u32..5000).prop_flat_map(|d| (0..=d).prop_map(move |n| LossWeight::new(n, d)))
}

fn arb_agreement() -> impl Strategy<Value = RoamingAgreement> {
    (arb_share(), arb_share()).prop_map(|(vendor_share, visited_wholesale)| RoamingAgreement {
        plan: DataPlan::paper_default(),
        vendor_share,
        visited_wholesale,
    })
}

/// Strategy: an ordered claim pair (operator ≤ edge).
fn arb_claims() -> impl Strategy<Value = UsagePair> {
    (0u64..2_000_000_000)
        .prop_flat_map(|edge| (0..=edge).prop_map(move |operator| UsagePair { edge, operator }))
}

fn arb_serving() -> impl Strategy<Value = Serving> {
    (0u8..2).prop_map(|b| {
        if b == 0 {
            Serving::Home
        } else {
            Serving::Visited
        }
    })
}

/// Strategy: a charged volume mixing the ordinary range with the
/// saturation edge (`u64::MAX` and just below it).
fn arb_charged() -> impl Strategy<Value = u64> {
    (0u8..4, 0u64..=1_000_000, 0u64..10_000).prop_map(|(sel, small, delta)| match sel {
        0 | 1 => small,
        2 => u64::MAX,
        _ => u64::MAX - delta,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation law 1, pure form: any volume, any agreement
    /// shares, either serving side — the split is exact.
    #[test]
    fn prop_split_conserves_exactly(
        ag in arb_agreement(),
        charged in arb_charged(),
        serving in arb_serving(),
    ) {
        let s = ag.split_volume(charged, serving);
        prop_assert_eq!(s.total(), charged);
        if serving == Serving::Home {
            prop_assert_eq!(s.visited, 0);
        }
    }

    /// Conservation law 1, cycle form: any handover segmentation of a
    /// cycle settles to the exact sum of its segments' charges, and
    /// the aggregate split conserves it byte for byte. This is the
    /// "home + visited + vendor == twin analytic volume" law — the
    /// analytic volume *is* Σ charge_for(segment claims).
    #[test]
    fn prop_segmented_cycle_settles_exactly(
        ag in arb_agreement(),
        segs in proptest::collection::vec((arb_serving(), arb_claims()), 0..6),
    ) {
        let segments: Vec<Segment> = segs
            .iter()
            .map(|&(serving, claims)| Segment { serving, claims })
            .collect();
        let analytic: u64 = segments
            .iter()
            .map(|s| charge_for(s.claims, ag.plan.loss_weight))
            .fold(0u64, |a, x| a.saturating_add(x));
        let out = ag.settle(&segments);
        prop_assert_eq!(out.charged, analytic);
        prop_assert_eq!(out.split.total(), out.charged);
        // Per-segment exactness too: each piece conserves on its own.
        for s in &out.segments {
            prop_assert_eq!(s.split.total(), s.charged);
        }
    }

    /// Conservation law 2: a bonded session's per-link CDR volumes sum
    /// to the session volume under any loss/reorder schedule, and the
    /// reconciled charge is the exact sum of per-link charges.
    #[test]
    fn prop_bonded_links_reconcile_exactly(
        volume in 0u64..1_000_000_000,
        cuts in proptest::collection::vec(0.0f64..=1.0, 1..5),
        losses in proptest::collection::vec(0.0f64..=1.0, 5),
        reorder_seed in 0u64..1000,
        c in arb_share(),
    ) {
        // Partition `volume` across the links at arbitrary cut points
        // (the striping schedule), then apply an arbitrary loss rate
        // per link (the loss schedule).
        let mut links: Vec<LinkCdr> = Vec::new();
        let mut remaining = volume;
        for (i, cut) in cuts.iter().enumerate() {
            let take = if i + 1 == cuts.len() {
                remaining
            } else {
                ((remaining as f64) * cut) as u64
            };
            remaining -= take;
            let delivered = ((take as f64) * (1.0 - losses[i % losses.len()])) as u64;
            links.push(LinkCdr {
                claims: UsagePair { edge: take, operator: delivered.min(take) },
                rtt_us: 10_000 + (i as u32) * 17_000,
                loss_bp: (losses[i % losses.len()] * 10_000.0) as u32,
            });
        }
        if remaining > 0 {
            links.push(LinkCdr {
                claims: UsagePair { edge: remaining, operator: remaining },
                rtt_us: 9_000,
                loss_bp: 0,
            });
        }
        // Reorder schedule: delivery order across links must not
        // change anything — rotate the link list arbitrarily.
        let n = links.len();
        links.rotate_left((reorder_seed as usize) % n.max(1));

        prop_assert_eq!(bonded_volume(&links), volume, "striping must partition exactly");
        let rec = reconcile_bonded(&links, c);
        let sum = rec.per_link.iter().fold(0u64, |a, x| a.saturating_add(*x));
        prop_assert_eq!(rec.charged, sum, "bonded charge must be the exact per-link sum");
        prop_assert_eq!(rec.per_link.len(), links.len());
        // Each link's charge brackets inside its own claims.
        for (l, x) in links.iter().zip(&rec.per_link) {
            prop_assert!(*x >= l.claims.operator && *x <= l.claims.edge);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Twin-level conservation and equivalence: random small roaming
    /// configurations conserve exactly and digest identically across
    /// both backends and a multi-threaded run.
    #[test]
    fn prop_roaming_twin_conserves_across_axes(
        seed in 1u64..500,
        sessions in 40usize..140,
        shards in 1usize..4,
        roamer_pct in 0u32..=10,
        bonded_pct in 0u32..=10,
        threads in 2usize..5,
    ) {
        let mut cfg = TwinConfig::smoke(seed);
        cfg.initial_sessions = sessions;
        cfg.shards = shards;
        cfg.duration = SimDuration::from_secs(4);
        cfg.roaming = Some(RoamingTwinConfig {
            agreement: RoamingAgreement::paper_default(),
            roamer_fraction: roamer_pct as f64 / 10.0,
            bonded_fraction: bonded_pct as f64 / 10.0,
            operator_handover_gap: SimDuration::from_millis(1_100),
        });
        let reference = run_twin(&cfg, &mut NullSink);
        prop_assert_eq!(reference.stale_events, 0);
        prop_assert_eq!(
            reference.roaming.home
                .saturating_add(reference.roaming.visited)
                .saturating_add(reference.roaming.vendor),
            reference.roaming.charged
        );

        let mut heap = cfg.clone();
        heap.backend = WheelBackend::Heap;
        let rh = run_twin(&heap, &mut NullSink);
        prop_assert_eq!(rh.digest, reference.digest);
        prop_assert_eq!(rh.roaming, reference.roaming);

        let mut mt = cfg.clone();
        mt.threads = threads;
        let rt = run_twin(&mt, &mut NullSink);
        prop_assert_eq!(rt.digest, reference.digest);
        prop_assert_eq!(rt.roaming, reference.roaming);
    }
}
