//! Twin-driven closed-loop soak: the digital twin generates the load,
//! and its sampled settlements run the *real* TLC machinery — signed
//! negotiation to a PoC, then submission through the verifier — so the
//! analytic pricing in `sim::soa`/`sim::measure` is checked against
//! the protocol it models, end to end. This closes the DESIGN §11
//! "soak against the digital-twin load generator once it exists" item.
//!
//! Two loops:
//!   * in-process: settlements feed a [`VerifierService`] directly;
//!   * ingress: settlements cross a real TCP socket into an
//!     [`IngressServer`] via [`RemoteVerifier`].
//!
//! In both, every sampled cycle must negotiate to **exactly** the
//! twin's analytic TLC charge (honest parties price the measured pair
//! — Eq. 1) and every PoC must verify `Valid`.

use std::collections::HashMap;
use std::net::TcpStream;
use tlc_core::messages::NONCE_LEN;
use tlc_core::plan::DataPlan;
use tlc_core::protocol::{run_negotiation, Endpoint};
use tlc_core::strategy::{HonestStrategy, Knowledge, Role};
use tlc_core::verify::remote::{IngressConfig, IngressServer, RemoteVerifier};
use tlc_core::verify::service::{RelationshipId, ServiceConfig, VerifierService};
use tlc_crypto::KeyPair;
use tlc_net::time::SimDuration;
use tlc_sim::twin::{run_twin, Settled, SettlementSink, TwinConfig};

/// Keys + plan shared by every sampled settlement (one operator↔edge
/// relationship; keygen dominates otherwise).
struct Parties {
    edge: KeyPair,
    op: KeyPair,
    plan: DataPlan,
}

impl Parties {
    fn generate(seed: u64) -> Self {
        Parties {
            edge: KeyPair::generate_for_seed(1024, 40_000 + seed * 2).expect("edge keygen"),
            op: KeyPair::generate_for_seed(1024, 40_001 + seed * 2).expect("op keygen"),
            plan: DataPlan::paper_default(),
        }
    }

    /// Runs an honest↔honest negotiation over the settlement's
    /// measured pair; returns the signed PoC.
    fn negotiate(&self, s: &Settled, nonce: u64) -> tlc_core::messages::PocMsg {
        let m = s.settlement.measured;
        let mut nonce_e = [0u8; NONCE_LEN];
        let mut nonce_o = [0u8; NONCE_LEN];
        nonce_e[..8].copy_from_slice(&nonce.to_le_bytes());
        nonce_e[8] = 1;
        nonce_o[..8].copy_from_slice(&nonce.to_le_bytes());
        nonce_o[8] = 2;
        let mut e = Endpoint::new(
            Role::Edge,
            self.plan,
            Knowledge {
                role: Role::Edge,
                own_truth: m.edge,
                inferred_peer_truth: m.operator,
            },
            Box::new(HonestStrategy),
            self.edge.private.clone(),
            self.op.public.clone(),
            nonce_e,
            32,
        );
        let mut o = Endpoint::new(
            Role::Operator,
            self.plan,
            Knowledge {
                role: Role::Operator,
                own_truth: m.operator,
                inferred_peer_truth: m.edge,
            },
            Box::new(HonestStrategy),
            self.op.private.clone(),
            self.edge.public.clone(),
            nonce_o,
            32,
        );
        run_negotiation(&mut o, &mut e)
            .expect("honest negotiation")
            .0
    }
}

fn soak_config(seed: u64) -> TwinConfig {
    let mut cfg = TwinConfig::smoke(seed);
    cfg.initial_sessions = 120;
    cfg.duration = SimDuration::from_secs(6);
    cfg.sample_rate = 0.15;
    cfg
}

/// Sink that drives the in-process service closed loop.
struct ServiceSink<'a> {
    parties: &'a Parties,
    svc: VerifierService,
    rel: RelationshipId,
    expected: HashMap<u64, u64>,
    nonce: u64,
}

impl SettlementSink for ServiceSink<'_> {
    fn settle(&mut self, s: &Settled) {
        if !s.sampled {
            return;
        }
        self.nonce += 1;
        let poc = self.parties.negotiate(s, self.nonce);
        assert_eq!(
            poc.charge, s.settlement.tlc_charge,
            "negotiated charge diverged from the twin's analytic TLC charge"
        );
        let tag = self.svc.submit(self.rel, poc).expect("submit");
        self.expected.insert(tag, s.settlement.tlc_charge);
    }
}

#[test]
fn twin_settlements_negotiate_and_verify_in_process() {
    let parties = Parties::generate(1);
    let mut svc = VerifierService::new(2);
    let rel = svc
        .register(
            parties.plan,
            parties.edge.public.clone(),
            parties.op.public.clone(),
        )
        .expect("register");
    let mut sink = ServiceSink {
        parties: &parties,
        svc,
        rel,
        expected: HashMap::new(),
        nonce: 0,
    };
    let report = run_twin(&soak_config(1), &mut sink);
    assert!(
        report.cycles_sampled > 10,
        "sample rate produced only {} settlements",
        report.cycles_sampled
    );
    assert_eq!(sink.expected.len() as u64, report.cycles_sampled);

    let results = sink.svc.collect_results().expect("collect");
    assert_eq!(results.len() as u64, report.cycles_sampled);
    for r in results {
        let verdict = r.result.expect("sampled PoC must verify");
        assert_eq!(Some(&verdict.charge), sink.expected.get(&r.tag));
    }
    sink.svc.finish();
}

/// Sink that drives the TCP ingress closed loop, draining verdicts
/// opportunistically so the submission window never stalls the twin.
struct IngressSink<'a> {
    parties: &'a Parties,
    client: RemoteVerifier<TcpStream>,
    rel: RelationshipId,
    expected: HashMap<u64, u64>,
    verdicts: Vec<(u64, u64)>,
    nonce: u64,
}

impl SettlementSink for IngressSink<'_> {
    fn settle(&mut self, s: &Settled) {
        if !s.sampled {
            return;
        }
        self.nonce += 1;
        let poc = self.parties.negotiate(s, self.nonce);
        assert_eq!(poc.charge, s.settlement.tlc_charge);
        let tag = self.client.submit(self.rel, &poc).expect("remote submit");
        self.expected.insert(tag, s.settlement.tlc_charge);
        for r in self.client.take_ready() {
            let v = r.result.expect("valid PoC rejected");
            self.verdicts.push((r.tag, v.charge));
        }
    }
}

#[test]
fn twin_soaks_the_tcp_ingress_closed_loop() {
    let parties = Parties::generate(2);
    let server = IngressServer::bind(
        ("127.0.0.1", 0),
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        IngressConfig::default(),
    )
    .expect("bind ingress");
    let handle = server.spawn().expect("spawn ingress");

    let mut client = RemoteVerifier::connect(handle.addr(), 0).expect("connect");
    let rel = client
        .register(
            parties.plan,
            parties.edge.public.clone(),
            parties.op.public.clone(),
        )
        .expect("register");
    let mut sink = IngressSink {
        parties: &parties,
        client,
        rel,
        expected: HashMap::new(),
        verdicts: Vec::new(),
        nonce: 0,
    };

    let report = run_twin(&soak_config(2), &mut sink);
    assert!(report.cycles_sampled > 10);
    assert_eq!(sink.expected.len() as u64, report.cycles_sampled);

    // Drain the tail.
    let mut verdicts = sink.verdicts;
    for r in sink.client.collect_results().expect("collect") {
        let v = r.result.expect("valid PoC rejected");
        verdicts.push((r.tag, v.charge));
    }
    assert_eq!(verdicts.len() as u64, report.cycles_sampled);
    for (tag, charge) in verdicts {
        assert_eq!(
            Some(&charge),
            sink.expected.get(&tag),
            "verdict charge mismatch for tag {tag}"
        );
    }
    sink.client.goodbye().expect("goodbye");

    let ingress = handle.shutdown().expect("ingress report");
    assert_eq!(ingress.ingress.submissions, report.cycles_sampled);
    assert_eq!(ingress.ingress.rejected_malformed, 0);
    assert_eq!(ingress.ingress.shed_overload, 0);
}
