//! Evaluation metrics: empirical CDFs and unit helpers.
//!
//! The paper reports gaps as MB/hr, ratios as percentages, and most
//! figures as CDFs over repeated experiment rounds.

use serde::{Deserialize, Serialize};

/// An empirical distribution over f64 samples.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Cdf {
    samples: Vec<f64>,
    sorted: bool,
}

impl Cdf {
    /// Empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// From a sample vector.
    pub fn from_samples(samples: Vec<f64>) -> Self {
        let mut c = Cdf {
            samples,
            sorted: false,
        };
        c.sort();
        c
    }

    /// Adds a sample.
    pub fn push(&mut self, v: f64) {
        assert!(v.is_finite(), "CDF samples must be finite");
        self.samples.push(v);
        self.sorted = false;
    }

    fn sort(&mut self) {
        if !self.sorted {
            // total_cmp is total over all f64 (NaN included), so a
            // sample that slipped past the push-time finiteness assert
            // can never abort a sort deep inside a protocol call chain.
            self.samples.sort_by(|a, b| a.total_cmp(b));
            self.sorted = true;
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were added.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sample mean (0 for empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// The `p`-quantile (0 ≤ p ≤ 1) by nearest-rank; 0 for empty.
    pub fn quantile(&mut self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p));
        self.sort();
        if self.samples.is_empty() {
            return 0.0;
        }
        let idx = ((p * self.samples.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.samples.len() - 1);
        self.samples[idx]
    }

    /// Median.
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// Minimum sample (0 for empty).
    pub fn min(&mut self) -> f64 {
        self.sort();
        self.samples.first().copied().unwrap_or(0.0)
    }

    /// Maximum sample (0 for empty).
    pub fn max(&mut self) -> f64 {
        self.sort();
        self.samples.last().copied().unwrap_or(0.0)
    }

    /// Fraction of samples ≤ `x`.
    pub fn fraction_below(&mut self, x: f64) -> f64 {
        self.sort();
        if self.samples.is_empty() {
            return 0.0;
        }
        let n = self.samples.partition_point(|&s| s <= x);
        n as f64 / self.samples.len() as f64
    }

    /// `(value, cumulative fraction)` points for plotting, at each sample.
    pub fn points(&mut self) -> Vec<(f64, f64)> {
        self.sort();
        let n = self.samples.len();
        self.samples
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n as f64))
            .collect()
    }
}

/// Bytes over a duration, expressed as the paper's MB/hr.
pub fn bytes_to_mb_per_hr(bytes: u64, duration_secs: f64) -> f64 {
    assert!(duration_secs > 0.0);
    bytes as f64 / 1e6 / (duration_secs / 3600.0)
}

/// Bytes to plain MB.
pub fn bytes_to_mb(bytes: u64) -> f64 {
    bytes as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_distribution() {
        let mut c = Cdf::from_samples((1..=100).map(|i| i as f64).collect());
        assert_eq!(c.median(), 50.0);
        assert_eq!(c.quantile(0.95), 95.0);
        assert_eq!(c.quantile(1.0), 100.0);
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.min(), 1.0);
        assert_eq!(c.max(), 100.0);
        assert_eq!(c.mean(), 50.5);
    }

    #[test]
    fn fraction_below() {
        let mut c = Cdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.fraction_below(2.5), 0.5);
        assert_eq!(c.fraction_below(0.0), 0.0);
        assert_eq!(c.fraction_below(4.0), 1.0);
    }

    #[test]
    fn push_then_query() {
        let mut c = Cdf::new();
        for v in [3.0, 1.0, 2.0] {
            c.push(v);
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.median(), 2.0);
        let pts = c.points();
        assert_eq!(pts[0], (1.0, 1.0 / 3.0));
        assert_eq!(pts[2], (3.0, 1.0));
    }

    #[test]
    fn empty_cdf_is_safe() {
        let mut c = Cdf::new();
        assert!(c.is_empty());
        assert_eq!(c.mean(), 0.0);
        assert_eq!(c.median(), 0.0);
        assert_eq!(c.fraction_below(10.0), 0.0);
        assert!(c.points().is_empty());
    }

    #[test]
    #[should_panic]
    fn non_finite_rejected() {
        Cdf::new().push(f64::NAN);
    }

    #[test]
    fn unit_conversions() {
        // 100 MB over 30 minutes = 200 MB/hr.
        assert!((bytes_to_mb_per_hr(100_000_000, 1800.0) - 200.0).abs() < 1e-9);
        assert_eq!(bytes_to_mb(2_500_000), 2.5);
    }
}
