//! Generational slab arena for twin sessions (DESIGN §13).
//!
//! A million concurrent sessions with constant churn must not mean a
//! million boxed allocations plus free-list fragmentation: sessions
//! live in one contiguous slab, keyed by a dense [`SessionId`] whose
//! index doubles as the row index into the struct-of-arrays charging
//! counters (`sim::soa`). Teardown pushes the slot onto a free list;
//! the next arrival reuses it — churn is slot reuse, not allocation.
//!
//! Ids are **generational**: every reuse bumps the slot's generation,
//! so an event scheduled against a torn-down session (still parked in
//! the wheel) dereferences to `None` instead of the unrelated session
//! that inherited the slot. That generation check is what makes
//! teardown-mid-cycle and handover-across-teardown safe (see the
//! regression tests in `tests/twin_equiv.rs`).

/// Dense generational handle to an arena slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SessionId {
    /// Slot index; also the row index into the SoA counter columns.
    pub index: u32,
    /// Slot generation at allocation time.
    pub generation: u32,
}

impl SessionId {
    /// An id that never resolves.
    pub const NONE: SessionId = SessionId {
        index: u32::MAX,
        generation: u32::MAX,
    };
}

enum Slot<T> {
    Occupied(T),
    /// Free; holds the next free slot index (`u32::MAX` = end).
    Free(u32),
}

/// Generational slab arena.
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    gens: Vec<u32>,
    free_head: u32,
    live: usize,
}

const NIL: u32 = u32::MAX;

impl<T> Arena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            gens: Vec::new(),
            free_head: NIL,
            live: 0,
        }
    }

    /// An empty arena with room for `n` sessions before regrowth.
    pub fn with_capacity(n: usize) -> Self {
        let mut a = Self::new();
        a.slots.reserve(n);
        a.gens.reserve(n);
        a
    }

    /// Live session count.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever allocated (live + free); the SoA columns are
    /// sized to this.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Inserts a session, reusing a free slot when one exists.
    pub fn insert(&mut self, value: T) -> SessionId {
        self.live += 1;
        if self.free_head != NIL {
            let index = self.free_head;
            let i = index as usize;
            if let Some(slot) = self.slots.get_mut(i) {
                if let Slot::Free(next) = *slot {
                    self.free_head = next;
                }
                *slot = Slot::Occupied(value);
            }
            let generation = self.gens.get(i).copied().unwrap_or(0);
            return SessionId { index, generation };
        }
        let index = self.slots.len() as u32;
        self.slots.push(Slot::Occupied(value));
        self.gens.push(0);
        SessionId {
            index,
            generation: 0,
        }
    }

    /// Removes the session behind `id`. `None` if the id is stale
    /// (generation mismatch) or the slot is already free.
    pub fn remove(&mut self, id: SessionId) -> Option<T> {
        let i = id.index as usize;
        if self.gens.get(i).copied() != Some(id.generation) {
            return None;
        }
        let slot = self.slots.get_mut(i)?;
        if matches!(slot, Slot::Free(_)) {
            return None;
        }
        let old = std::mem::replace(slot, Slot::Free(self.free_head));
        self.free_head = id.index;
        if let Some(g) = self.gens.get_mut(i) {
            // Wrapping keeps removal panic-free; ids only match on
            // exact generation equality, so wrapping cannot revive a
            // stale handle.
            *g = g.wrapping_add(1);
        }
        self.live -= 1;
        match old {
            Slot::Occupied(v) => Some(v),
            Slot::Free(_) => None,
        }
    }

    /// Shared access; `None` for stale ids.
    pub fn get(&self, id: SessionId) -> Option<&T> {
        if self.gens.get(id.index as usize).copied() != Some(id.generation) {
            return None;
        }
        match self.slots.get(id.index as usize) {
            Some(Slot::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Mutable access; `None` for stale ids.
    pub fn get_mut(&mut self, id: SessionId) -> Option<&mut T> {
        if self.gens.get(id.index as usize).copied() != Some(id.generation) {
            return None;
        }
        match self.slots.get_mut(id.index as usize) {
            Some(Slot::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Whether `id` still refers to a live session.
    pub fn contains(&self, id: SessionId) -> bool {
        self.get(id).is_some()
    }

    /// Iterates live sessions in slot order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (SessionId, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(i, slot)| match slot {
                Slot::Occupied(v) => Some((
                    SessionId {
                        index: i as u32,
                        generation: self.gens.get(i).copied().unwrap_or(0),
                    },
                    v,
                )),
                Slot::Free(_) => None,
            })
    }
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut a = Arena::new();
        let id = a.insert(41u32);
        assert_eq!(a.get(id), Some(&41));
        *a.get_mut(id).unwrap() += 1;
        assert_eq!(a.remove(id), Some(42));
        assert_eq!(a.get(id), None);
        assert_eq!(a.remove(id), None, "double remove");
        assert!(a.is_empty());
    }

    #[test]
    fn slot_reuse_bumps_generation() {
        let mut a = Arena::new();
        let old = a.insert(1u32);
        assert_eq!(a.remove(old), Some(1));
        let new = a.insert(2u32);
        assert_eq!(new.index, old.index, "slot must be reused");
        assert_ne!(new.generation, old.generation);
        // The stale id must not alias the new occupant.
        assert_eq!(a.get(old), None);
        assert_eq!(a.remove(old), None);
        assert_eq!(a.get(new), Some(&2));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn churn_stays_within_peak_slots() {
        let mut a = Arena::new();
        let mut ids = Vec::new();
        for wave in 0..50u32 {
            for k in 0..100u32 {
                ids.push(a.insert(wave * 1000 + k));
            }
            for id in ids.drain(..) {
                assert!(a.remove(id).is_some());
            }
        }
        assert_eq!(a.slot_count(), 100, "churn must reuse, not grow");
        assert!(a.is_empty());
    }

    #[test]
    fn iter_visits_live_in_slot_order() {
        let mut a = Arena::new();
        let a0 = a.insert(10u32);
        let a1 = a.insert(11u32);
        let a2 = a.insert(12u32);
        a.remove(a1);
        let got: Vec<(u32, u32)> = a.iter().map(|(id, v)| (id.index, *v)).collect();
        assert_eq!(got, vec![(0, 10), (2, 12)]);
        let _ = (a0, a2);
    }
}
