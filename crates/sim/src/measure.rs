//! From raw scenario counters to charging records, negotiations, and gaps.
//!
//! This is where each party's view of the cycle is assembled (§5.2 / §5.4):
//! the edge reads its app/server monitors on its own (skewed) clock, the
//! operator reads its gateway meters and RRC COUNTER CHECK history on its
//! clock — and the three charging schemes of §7.1 (honest legacy,
//! TLC-optimal, TLC-random) are priced from those records.

use crate::scenario::ScenarioResult;
use tlc_core::cancellation::{negotiate, NegotiationError, DEFAULT_MAX_ROUNDS};
use tlc_core::legacy;
use tlc_core::plan::{intended_charge, DataPlan, UsagePair};
use tlc_core::strategy::{HonestStrategy, Knowledge, OptimalStrategy, RandomSelfishStrategy, Role};
use tlc_net::packet::Direction;
use tlc_net::rng::SimRng;

/// Claim-shading margin: under measurement uncertainty (clock skew, RRC
/// report lag — Fig. 18), a rational party shades its inferred-peer-truth
/// claim slightly toward the peer's side so its first claim survives the
/// peer's cross-check; this is what makes the paper's one-round
/// convergence (Fig. 16b) hold on real records.
pub const CLAIM_SHADE: f64 = 0.003;

/// Both parties' measured records plus the ground truth, for the charged
/// direction of one cycle.
#[derive(Clone, Copy, Debug)]
pub struct CycleRecords {
    /// Ground-truth usage pair (x̂_e, x̂_o).
    pub truth: UsagePair,
    /// The edge's knowledge entering the negotiation.
    pub edge: Knowledge,
    /// The operator's knowledge entering the negotiation.
    pub operator: Knowledge,
    /// What the legacy operator's gateway CDR bills for this direction.
    pub legacy_metered: u64,
}

fn shade_up(v: u64) -> u64 {
    (v as f64 * (1.0 + CLAIM_SHADE)).round() as u64
}

fn shade_down(v: u64) -> u64 {
    (v as f64 * (1.0 - CLAIM_SHADE)).round() as u64
}

/// Extracts both parties' records from a finished scenario.
pub fn cycle_records(r: &ScenarioResult) -> CycleRecords {
    let cycle_end = r.cycle_end();
    // Each party snapshots "cycle end" on its own clock.
    let t_edge = r.edge_clock.true_time_of(cycle_end);
    let t_op = r.operator_clock.true_time_of(cycle_end);

    match r.direction {
        Direction::Uplink => {
            // Truth: device sent vs gateway/server received.
            let truth = UsagePair {
                edge: r.app.device_app_sent.bytes(),
                operator: r.app.gateway_uplink.bytes(),
            };
            // Edge: own send counter; infers x̂_o from its server monitor,
            // shaded up so the operator's cross-check accepts round one.
            let edge = Knowledge {
                role: Role::Edge,
                own_truth: r.app.device_app_sent.bytes_until(t_edge),
                inferred_peer_truth: shade_up(r.app.server_received.bytes_until(t_edge)),
            };
            // Operator: gateway meter; infers x̂_e via its billing app
            // reading the device's TrafficStats, shaded down symmetrically.
            let operator = Knowledge {
                role: Role::Operator,
                own_truth: r.app.gateway_uplink.bytes_until(t_op),
                inferred_peer_truth: shade_down(r.app.device_app_sent.bytes_until(t_op)),
            };
            CycleRecords {
                truth,
                edge,
                operator,
                legacy_metered: r.app.gateway_uplink.bytes_until(t_op),
            }
        }
        Direction::Downlink => {
            let truth = UsagePair {
                edge: r.app.server_sent.bytes(),
                operator: r.app.modem_received.bytes(),
            };
            let edge = Knowledge {
                role: Role::Edge,
                own_truth: r.app.server_sent.bytes_until(t_edge),
                inferred_peer_truth: shade_up(r.app.device_app_received.bytes_until(t_edge)),
            };
            // Operator: RRC COUNTER CHECK view (lags the modem truth by up
            // to one check interval); infers x̂_e from the gateway's
            // downlink ingress meter.
            let operator = Knowledge {
                role: Role::Operator,
                own_truth: r.rrc_view_at_cycle_end,
                inferred_peer_truth: shade_down(r.app.gateway_downlink.bytes_until(t_op)),
            };
            CycleRecords {
                truth,
                edge,
                operator,
                legacy_metered: r.app.gateway_downlink.bytes_until(t_op),
            }
        }
    }
}

/// One charging scheme's result for a cycle.
#[derive(Clone, Copy, Debug)]
pub struct SchemeOutcome {
    /// Billed volume, bytes.
    pub charge: u64,
    /// Negotiation rounds (1 for legacy — no negotiation).
    pub rounds: u32,
}

/// All schemes priced on the same cycle, plus ground truth.
#[derive(Clone, Copy, Debug)]
pub struct Comparison {
    /// Plan-intended charge x̂.
    pub intended: u64,
    /// Honest legacy 4G/5G (gateway CDR billing).
    pub legacy: SchemeOutcome,
    /// TLC with both parties playing the optimal strategy.
    pub tlc_optimal: SchemeOutcome,
    /// TLC with selfish-but-naive random strategies.
    pub tlc_random: SchemeOutcome,
    /// TLC with both parties honest.
    pub tlc_honest: SchemeOutcome,
}

impl Comparison {
    /// Absolute gap Δ = |x − x̂| for a scheme, bytes.
    pub fn gap(&self, charge: u64) -> u64 {
        legacy::absolute_gap(charge, self.intended)
    }

    /// Relative gap ratio ε = Δ/x̂.
    pub fn gap_ratio(&self, charge: u64) -> f64 {
        legacy::gap_ratio(charge, self.intended)
    }
}

/// Errors from pricing a cycle.
pub type PriceError = NegotiationError;

/// Prices one cycle under all schemes of §7.1.
pub fn compare_schemes(
    records: &CycleRecords,
    plan: &DataPlan,
    seed: u64,
) -> Result<Comparison, PriceError> {
    let intended = intended_charge(records.truth, plan.loss_weight);

    let legacy = SchemeOutcome {
        charge: legacy::legacy_charge(records.legacy_metered, legacy::LegacyOperator::Honest),
        rounds: 1,
    };

    let opt = negotiate(
        plan,
        &mut OptimalStrategy,
        &records.edge,
        &mut OptimalStrategy,
        &records.operator,
        DEFAULT_MAX_ROUNDS,
    )?;
    let rand = negotiate(
        plan,
        &mut RandomSelfishStrategy::new(SimRng::new(seed ^ 0xE1)),
        &records.edge,
        &mut RandomSelfishStrategy::new(SimRng::new(seed ^ 0x0F)),
        &records.operator,
        DEFAULT_MAX_ROUNDS,
    )?;
    let honest = negotiate(
        plan,
        &mut HonestStrategy,
        &records.edge,
        &mut HonestStrategy,
        &records.operator,
        DEFAULT_MAX_ROUNDS,
    )?;

    Ok(Comparison {
        intended,
        legacy,
        tlc_optimal: SchemeOutcome {
            charge: opt.charge,
            rounds: opt.rounds,
        },
        tlc_random: SchemeOutcome {
            charge: rand.charge,
            rounds: rand.rounds,
        },
        tlc_honest: SchemeOutcome {
            charge: honest.charge,
            rounds: honest.rounds,
        },
    })
}

/// Convenience: run the full §7.1 pipeline for a scenario result.
pub fn evaluate(r: &ScenarioResult, plan: &DataPlan, seed: u64) -> Result<Comparison, PriceError> {
    compare_schemes(&cycle_records(r), plan, seed)
}

/// One settled charging cycle of a digital-twin session: the analytic
/// counterpart of [`compare_schemes`] that the million-session twin
/// prices per cycle without running the packet datapath or the signed
/// negotiation (sampled cycles *do* run the real negotiation through
/// the closed-loop sink — see `twin::SettlementSink`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TwinSettlement {
    /// Ground-truth usage pair (x̂_e, x̂_o) for the cycle.
    pub truth: UsagePair,
    /// The pair both honest parties would claim from their monitors
    /// (edge reads exactly; the operator's view trails by its RRC
    /// COUNTER CHECK lag).
    pub measured: UsagePair,
    /// Plan-intended charge x̂ (Eq. 1 over the truth).
    pub intended: u64,
    /// What legacy gateway-CDR billing charges.
    pub legacy_charge: u64,
    /// What TLC with honest parties settles on (Eq. 1 over the
    /// measured pair).
    pub tlc_charge: u64,
}

impl TwinSettlement {
    /// Legacy absolute gap Δ = |legacy − x̂|, bytes.
    pub fn legacy_gap(&self) -> u64 {
        legacy::absolute_gap(self.legacy_charge, self.intended)
    }

    /// TLC absolute gap, bytes.
    pub fn tlc_gap(&self) -> u64 {
        legacy::absolute_gap(self.tlc_charge, self.intended)
    }
}

/// Prices one twin charging row (see `sim::soa::ChargeRow`) under
/// legacy and TLC-honest charging.
pub fn settle_twin_row(row: &crate::soa::ChargeRow, plan: &DataPlan) -> TwinSettlement {
    let w = plan.loss_weight;
    let truth = UsagePair {
        edge: row.sent,
        operator: row.delivered,
    };
    let measured = UsagePair {
        edge: row.sent,
        operator: row.delivered.saturating_sub(row.monitor_lag),
    };
    TwinSettlement {
        truth,
        measured,
        intended: tlc_core::plan::charge_for(truth, w),
        legacy_charge: legacy::legacy_charge(row.gateway, legacy::LegacyOperator::Honest),
        tlc_charge: tlc_core::plan::charge_for(measured, w),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_scenario, AppKind, RadioSpec, ScenarioConfig};
    use tlc_net::time::SimDuration;

    fn run(app: AppKind, seed: u64, bg: f64) -> ScenarioResult {
        run_scenario(
            &ScenarioConfig::new(app, seed, SimDuration::from_secs(30)).with_background(bg),
        )
    }

    #[test]
    fn records_truth_ordering_holds() {
        for app in [AppKind::WebcamRtsp, AppKind::Vr] {
            let r = run(app, 10, 120.0);
            let rec = cycle_records(&r);
            assert!(
                rec.truth.edge >= rec.truth.operator,
                "{app:?}: x̂_e {} < x̂_o {}",
                rec.truth.edge,
                rec.truth.operator
            );
        }
    }

    #[test]
    fn tlc_beats_legacy_under_congestion() {
        let mut cfg =
            ScenarioConfig::new(AppKind::Vr, 11, SimDuration::from_secs(30)).with_background(150.0);
        cfg.datapath.rrc_periodic_check = SimDuration::from_secs(5);
        let r = run_scenario(&cfg);
        let plan = DataPlan::paper_default();
        let c = evaluate(&r, &plan, 11).unwrap();
        assert!(
            c.gap(c.tlc_optimal.charge) < c.gap(c.legacy.charge),
            "TLC gap {} !< legacy gap {}",
            c.gap(c.tlc_optimal.charge),
            c.gap(c.legacy.charge)
        );
    }

    #[test]
    fn tlc_charge_bounded_by_truth() {
        // Theorem 2 end-to-end: the negotiated charge sits within the
        // measured claims, which bracket the true [x̂_o, x̂_e] up to
        // measurement error.
        let r = run(AppKind::WebcamUdp, 12, 140.0);
        let rec = cycle_records(&r);
        let plan = DataPlan::paper_default();
        let c = compare_schemes(&rec, &plan, 12).unwrap();
        // Allow a 3% measurement-error margin around the truth bounds.
        let lo = (rec.truth.operator as f64 * 0.97) as u64;
        let hi = (rec.truth.edge as f64 * 1.03) as u64;
        for charge in [
            c.tlc_optimal.charge,
            c.tlc_random.charge,
            c.tlc_honest.charge,
        ] {
            assert!(
                (lo..=hi).contains(&charge),
                "charge {charge} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn optimal_converges_fast() {
        let mut cfg = ScenarioConfig::new(AppKind::Vr, 13, SimDuration::from_secs(30));
        cfg.datapath.rrc_periodic_check = SimDuration::from_secs(5);
        let r = run_scenario(&cfg);
        let c = evaluate(&r, &DataPlan::paper_default(), 13).unwrap();
        assert!(c.tlc_optimal.rounds <= 2, "rounds {}", c.tlc_optimal.rounds);
    }

    #[test]
    fn intermittent_connectivity_gap_reduced_by_tlc() {
        let mut cfg = ScenarioConfig::new(AppKind::WebcamUdp, 14, SimDuration::from_secs(60))
            .with_radio(RadioSpec::Intermittent { eta: 0.12 });
        cfg.datapath.rrc_periodic_check = SimDuration::from_secs(5);
        let r = run_scenario(&cfg);
        let c = evaluate(&r, &DataPlan::paper_default(), 14).unwrap();
        assert!(c.gap(c.legacy.charge) > 0, "legacy should show a gap");
        assert!(c.gap(c.tlc_optimal.charge) <= c.gap(c.legacy.charge));
    }

    #[test]
    fn gap_ratio_consistency() {
        let r = run(AppKind::Vr, 15, 100.0);
        let c = evaluate(&r, &DataPlan::paper_default(), 15).unwrap();
        let eps = c.gap_ratio(c.legacy.charge);
        let delta = c.gap(c.legacy.charge);
        assert!((eps - delta as f64 / c.intended as f64).abs() < 1e-12);
    }

    #[test]
    fn twin_row_settles_like_compare_schemes() {
        // A downlink row: gateway meters before air loss, so legacy
        // overcharges; TLC trails truth only by the monitor lag.
        let row = crate::soa::ChargeRow {
            sent: 1_000_000,
            delivered: 800_000,
            gateway: 1_000_000,
            lost_air: 150_000,
            lost_congestion: 50_000,
            lost_handover: 0,
            monitor_lag: 10_000,
            cycle_start_us: 0,
        };
        let plan = DataPlan::paper_default(); // c = 0.5
        let s = settle_twin_row(&row, &plan);
        assert_eq!(s.intended, 900_000);
        assert_eq!(s.legacy_charge, 1_000_000);
        assert_eq!(s.legacy_gap(), 100_000);
        // Measured pair (1_000_000, 790_000) → 895_000 at c = 0.5.
        assert_eq!(s.tlc_charge, 895_000);
        assert_eq!(s.tlc_gap(), 5_000);
        assert!(s.tlc_gap() < s.legacy_gap());
    }

    #[test]
    fn twin_row_uplink_legacy_undercharges() {
        // Uplink: gateway sits past the loss, metering delivered bytes.
        let row = crate::soa::ChargeRow {
            sent: 500_000,
            delivered: 400_000,
            gateway: 400_000,
            lost_air: 100_000,
            lost_congestion: 0,
            lost_handover: 0,
            monitor_lag: 0,
            cycle_start_us: 0,
        };
        let s = settle_twin_row(&row, &DataPlan::paper_default());
        assert_eq!(s.intended, 450_000);
        assert!(s.legacy_charge < s.intended, "legacy undercharges uplink");
        // With zero lag, honest TLC recovers the intended charge exactly.
        assert_eq!(s.tlc_charge, s.intended);
        assert_eq!(s.tlc_gap(), 0);
    }
}
