//! Million-session charging digital twin (DESIGN §13).
//!
//! The packet-level scenario driver (`sim::scenario`) prices one
//! session at full fidelity; this module prices *populations*. Each
//! twin session is a rate/loss abstraction of a §7.1 application
//! ([`tlc_workloads::churn::SessionProfile`]) living in a generational
//! slab ([`crate::arena`]), with its charging counters in
//! struct-of-arrays columns ([`crate::soa`]) and its future — ticks,
//! cycle ends, handovers, teardown — parked in a hierarchical timer
//! wheel ([`crate::wheel`]). Schedule and cancel are O(1), so a
//! churning population of a million sessions costs per-event constant
//! work instead of a million-entry binary-heap reshuffle.
//!
//! # Sharding and determinism
//!
//! Sessions are pinned to shards round-robin at arrival; each shard
//! owns its scheduler, arena, counter columns, and RNG streams (split
//! from the twin seed by shard index). Time advances in fixed
//! **epochs**: every shard runs its wheel to the epoch boundary in
//! parallel ([`crate::par::par_map_mut`]), then a barrier merges the
//! shards' offered-load deltas **in shard-index order** into the
//! shared cell-congestion level used by the next epoch. Nothing a
//! shard computes depends on any other shard within an epoch, so the
//! run is byte-identical at any thread count — and, because both
//! scheduler backends fire in `(tick, seq)` order, identical across
//! [`WheelBackend::Wheel`] and [`WheelBackend::Heap`] too. The
//! equivalence suite (`tests/twin_equiv.rs`) pins both axes with a
//! digest over every counter that matters.
//!
//! # Closed loop
//!
//! Settled cycles flow to a [`SettlementSink`] post-barrier, in shard
//! order. A configurable sample of them carries the full measured
//! usage pair so the sink can run the *real* TLC machinery — signed
//! negotiation to a PoC, submission to the verifier service or the
//! TCP ingress — against twin-generated load (`tests/twin_soak.rs`).

use crate::arena::{Arena, SessionId};
use crate::par::par_map_mut;
use crate::soa::{ChargeColumns, ChargeRow, GapSweep};
use crate::wheel::{Scheduler, Token, WheelBackend};
use tlc_core::plan::{DataPlan, UsagePair};
use tlc_core::roaming::{reconcile_bonded, LinkCdr, RoamingAgreement, Segment, Serving};
use tlc_net::packet::Direction;
use tlc_net::rng::SimRng;
use tlc_net::time::SimDuration;
use tlc_workloads::churn::{ChurnConfig, ChurnGen, SessionProfile};

pub use crate::measure::{settle_twin_row, TwinSettlement};

/// Digital-twin run configuration.
#[derive(Clone, Debug)]
pub struct TwinConfig {
    /// Root seed; every RNG stream in the run splits from it.
    pub seed: u64,
    /// Shard count. Sessions pin to shards, so this is a *model*
    /// parameter: changing it changes the population split (thread
    /// count, by contrast, never changes results).
    pub shards: usize,
    /// Worker threads for the epoch barrier loop (1 = sequential).
    pub threads: usize,
    /// Simulated run length.
    pub duration: SimDuration,
    /// Sessions pre-admitted at t=0, spread round-robin over shards.
    pub initial_sessions: usize,
    /// Arrival/lifetime/mix/handover shape (per shard).
    pub churn: ChurnConfig,
    /// Charging-cycle length per session.
    pub cycle: SimDuration,
    /// Accounting-tick length: how often a session's counters accrue.
    pub tick: SimDuration,
    /// Epoch (barrier) length for cross-shard congestion coupling.
    pub epoch: SimDuration,
    /// Scheduler backend (equivalence axis; see `wheel`).
    pub backend: WheelBackend,
    /// Plan priced at settlement.
    pub plan: DataPlan,
    /// Fraction of settled cycles forwarded to the sink with full
    /// context for closed-loop verification (0 disables sampling).
    pub sample_rate: f64,
    /// Aggregate cell capacity in bytes per epoch before congestion
    /// loss starts to bite (the cross-shard coupling knob).
    pub cell_capacity_bytes_per_epoch: u64,
    /// Three-party roaming plane (DESIGN §14). `None` keeps the twin
    /// byte-identical to a pre-roaming run: no extra RNG draws, no
    /// extra events, and the digest folds nothing new.
    pub roaming: Option<RoamingTwinConfig>,
}

/// Roaming-plane configuration for a twin run.
#[derive(Clone, Debug)]
pub struct RoamingTwinConfig {
    /// The commercial agreement cycles settle under.
    pub agreement: RoamingAgreement,
    /// Fraction of admitted sessions that roam (and so hand over
    /// between operators mid-cycle).
    pub roamer_fraction: f64,
    /// Fraction of admitted sessions that bond multiple links.
    pub bonded_fraction: f64,
    /// Mean gap between a roamer's operator handovers (each actual
    /// gap is jittered per session, up to 2x).
    pub operator_handover_gap: SimDuration,
}

impl RoamingTwinConfig {
    /// Evaluation defaults: the paper-default agreement, 30 % roamers,
    /// 20 % bonded devices, ~3 s between operator handovers.
    pub fn paper_default() -> Self {
        RoamingTwinConfig {
            agreement: RoamingAgreement::paper_default(),
            roamer_fraction: 0.3,
            bonded_fraction: 0.2,
            operator_handover_gap: SimDuration::from_secs(3),
        }
    }
}

impl TwinConfig {
    /// A small smoke-tier default: mixed churn, 4 shards, 10 s.
    pub fn smoke(seed: u64) -> Self {
        TwinConfig {
            seed,
            shards: 4,
            threads: 1,
            duration: SimDuration::from_secs(10),
            initial_sessions: 1_000,
            churn: ChurnConfig::mixed(),
            cycle: SimDuration::from_secs(2),
            tick: SimDuration::from_millis(500),
            epoch: SimDuration::from_secs(1),
            backend: WheelBackend::Wheel,
            plan: DataPlan::paper_default(),
            sample_rate: 0.0,
            cell_capacity_bytes_per_epoch: u64::MAX,
            roaming: None,
        }
    }
}

/// Why a cycle settled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SettleCause {
    /// The charging cycle completed.
    CycleEnd,
    /// The session tore down mid-cycle (partial cycle settled).
    Teardown,
    /// The run ended with the cycle open.
    RunEnd,
}

/// One settled charging cycle handed to the sink.
#[derive(Clone, Copy, Debug)]
pub struct Settled {
    /// Owning shard.
    pub shard: usize,
    /// Arena slot index of the session (row id; reused after churn).
    pub row: u32,
    /// Twin time at settlement, µs.
    pub at_us: u64,
    /// Why the cycle closed.
    pub cause: SettleCause,
    /// The priced settlement.
    pub settlement: TwinSettlement,
    /// True for the sampled subset that should run the real
    /// negotiation/verification path.
    pub sampled: bool,
}

/// Receiver for settled cycles (post-barrier, shard order).
pub trait SettlementSink {
    /// Called once per settled cycle with non-zero traffic.
    fn settle(&mut self, s: &Settled);
}

/// Discards settlements (pure-throughput runs).
pub struct NullSink;

impl SettlementSink for NullSink {
    fn settle(&mut self, _s: &Settled) {}
}

/// What a twin run produced.
#[derive(Clone, Debug, Default)]
pub struct TwinReport {
    /// Sessions ever admitted.
    pub sessions_created: u64,
    /// Sessions torn down.
    pub sessions_retired: u64,
    /// Peak concurrent sessions across shards.
    pub peak_concurrent: u64,
    /// Live sessions at run end.
    pub final_concurrent: u64,
    /// Wheel events fired (ticks + cycles + handovers + arrivals + teardowns).
    pub events_fired: u64,
    /// Events that dereferenced a stale [`SessionId`] (cancelled
    /// late; must stay 0 — teardown cancels its tokens eagerly).
    pub stale_events: u64,
    /// Handovers executed.
    pub handovers: u64,
    /// Cycles settled (including partial teardown/run-end cycles).
    pub cycles_settled: u64,
    /// Cycles forwarded to the sink as sampled.
    pub cycles_sampled: u64,
    /// Aggregate gap accounting over every settled cycle.
    pub sweep: GapSweep,
    /// Peak arena slots in any one shard (bounds memory; churn must
    /// reuse slots, not grow this).
    pub peak_shard_slots: u64,
    /// True when the run had a roaming plane configured (folds the
    /// roaming counters into the digest).
    pub roaming_enabled: bool,
    /// Three-party settlement aggregates (all zero when roaming is
    /// disabled).
    pub roaming: RoamingSweep,
    /// Order-sensitive digest of the run: byte-identical runs — any
    /// thread count, either scheduler backend — produce the same
    /// value.
    pub digest: u64,
}

/// Aggregate three-party settlement accounting over every settled
/// cycle of a roaming-enabled run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoamingSweep {
    /// Sessions admitted as roamers (operator handovers scheduled).
    pub roamers_admitted: u64,
    /// Sessions admitted with bonded multi-link devices.
    pub bonded_admitted: u64,
    /// Operator (home↔visited) handovers executed.
    pub operator_handovers: u64,
    /// Cycles settled through the three-party agreement.
    pub cycles_settled: u64,
    /// Σ charged volume across all settled segments.
    pub charged: u64,
    /// Σ home-operator retained volume.
    pub home: u64,
    /// Σ visited-operator wholesale volume.
    pub visited: u64,
    /// Σ edge-vendor revenue-share volume.
    pub vendor: u64,
    /// Bonded cycles reconciled from per-link CDRs.
    pub bonded_cycles: u64,
    /// Σ reconciled bonded charge (exact sum of per-link charges).
    pub bonded_link_charged: u64,
}

impl RoamingSweep {
    /// Folds another sweep (shard merge, done in shard order).
    /// Saturating: a wrapped settlement tally would *be* a gap.
    pub fn merge(&mut self, other: &RoamingSweep) {
        self.roamers_admitted = self.roamers_admitted.saturating_add(other.roamers_admitted);
        self.bonded_admitted = self.bonded_admitted.saturating_add(other.bonded_admitted);
        self.operator_handovers = self
            .operator_handovers
            .saturating_add(other.operator_handovers);
        self.cycles_settled = self.cycles_settled.saturating_add(other.cycles_settled);
        self.charged = self.charged.saturating_add(other.charged);
        self.home = self.home.saturating_add(other.home);
        self.visited = self.visited.saturating_add(other.visited);
        self.vendor = self.vendor.saturating_add(other.vendor);
        self.bonded_cycles = self.bonded_cycles.saturating_add(other.bonded_cycles);
        self.bonded_link_charged = self
            .bonded_link_charged
            .saturating_add(other.bonded_link_charged);
    }
}

impl TwinReport {
    fn finish(&mut self) {
        // FNV-1a over the counters the equivalence contract covers.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        fold(self.sessions_created);
        fold(self.sessions_retired);
        fold(self.events_fired);
        fold(self.handovers);
        fold(self.cycles_settled);
        fold(self.sweep.total_sent);
        fold(self.sweep.total_delivered);
        fold(self.sweep.total_gateway);
        fold(self.sweep.intended);
        fold(self.sweep.legacy_gap);
        fold(self.sweep.tlc_gap);
        // Roaming counters only fold when the plane was configured, so
        // non-roaming runs keep their pre-roaming golden digests.
        if self.roaming_enabled {
            fold(0x524F_414D); // "ROAM" discriminator
            fold(self.roaming.roamers_admitted);
            fold(self.roaming.bonded_admitted);
            fold(self.roaming.operator_handovers);
            fold(self.roaming.cycles_settled);
            fold(self.roaming.charged);
            fold(self.roaming.home);
            fold(self.roaming.visited);
            fold(self.roaming.vendor);
            fold(self.roaming.bonded_cycles);
            fold(self.roaming.bonded_link_charged);
        }
        self.digest = h;
    }
}

/// A wheel event. `Copy` so the scheduler slab stays flat.
#[derive(Clone, Copy, Debug)]
enum Event {
    /// Admit the next churn arrival (session field unused).
    Arrival,
    /// Accrue one accounting tick for a session.
    Tick(SessionId),
    /// Close a session's charging cycle.
    CycleEnd(SessionId),
    /// Flush a session's in-flight bytes (mobility).
    Handover(SessionId),
    /// Hand a roamer over between operators (flush + serving flip).
    OperatorHandover(SessionId),
    /// Tear the session down.
    Teardown(SessionId),
}

/// One live twin session.
struct Session {
    profile: SessionProfile,
    /// Pending wheel tokens, cancelled eagerly at teardown so slot
    /// reuse never races a stale event (the generation check in
    /// [`Arena`] is the backstop, not the mechanism).
    tick_tok: Token,
    cycle_tok: Token,
    handover_tok: Token,
    op_handover_tok: Token,
    teardown_tok: Token,
    /// Operator currently carrying the session's traffic (always
    /// `Home` unless the roaming plane flips it).
    serving: Serving,
    /// True for bonded multi-link devices (roaming plane only).
    bonded: bool,
    /// Per-session loss stream, split off the shard stream at admit
    /// time so event interleaving can't perturb other sessions.
    rng: SimRng,
}

/// Per-shard twin state.
struct Shard {
    index: usize,
    sched: Scheduler<Event>,
    arena: Arena<Session>,
    cols: ChargeColumns,
    /// Per-operator counter shard: bytes carried while the *visited*
    /// operator served. Unused (never grown) when roaming is off.
    cols_visited: ChargeColumns,
    churn: ChurnGen,
    /// Congestion-loss fraction for the current epoch, set at the
    /// barrier from the *previous* epoch's global offered load.
    congestion: f64,
    /// Bytes offered this epoch (reported at the barrier).
    offered: u64,
    /// Sampling stream (separate from churn/loss streams).
    sample_rng: SimRng,
    plan: DataPlan,
    cycle: SimDuration,
    tick: SimDuration,
    sample_rate: f64,
    // Counters folded into the report at the end.
    created: u64,
    retired: u64,
    fired: u64,
    stale: u64,
    handovers: u64,
    settled_n: u64,
    sampled_n: u64,
    peak_slots: u64,
    sweep: GapSweep,
    rsweep: RoamingSweep,
    roaming: Option<RoamingTwinConfig>,
    /// Settlements produced this epoch, drained at the barrier.
    outbox: Vec<Settled>,
}

impl Shard {
    fn new(cfg: &TwinConfig, index: usize) -> Self {
        let root = SimRng::new(cfg.seed);
        let label = |what: &str| format!("twin/shard{index}/{what}");
        Shard {
            index,
            sched: Scheduler::with_capacity(cfg.backend, 1024),
            arena: Arena::with_capacity(1024),
            cols: ChargeColumns::with_capacity(1024),
            cols_visited: ChargeColumns::new(),
            churn: ChurnGen::new(cfg.churn, root.split(&label("churn"))),
            congestion: 0.0,
            offered: 0,
            sample_rng: root.split(&label("sample")),
            plan: cfg.plan,
            cycle: cfg.cycle,
            tick: cfg.tick,
            sample_rate: cfg.sample_rate,
            created: 0,
            retired: 0,
            fired: 0,
            stale: 0,
            handovers: 0,
            settled_n: 0,
            sampled_n: 0,
            peak_slots: 0,
            sweep: GapSweep::default(),
            rsweep: RoamingSweep::default(),
            roaming: cfg.roaming.clone(),
            outbox: Vec::new(),
        }
    }

    /// Admits one session at `now`, scheduling its whole future.
    fn admit(&mut self, now_us: u64, profile: SessionProfile, lifetime: SimDuration) {
        let shard = self.index;
        let n = self.created;
        let rng = self
            .churn
            .rng()
            .split(&format!("twin/shard{shard}/session{n}"));
        let id = self.arena.insert(Session {
            profile,
            tick_tok: Token::NONE,
            cycle_tok: Token::NONE,
            handover_tok: Token::NONE,
            op_handover_tok: Token::NONE,
            teardown_tok: Token::NONE,
            serving: Serving::Home,
            bonded: false,
            rng,
        });
        self.created += 1;
        self.peak_slots = self.peak_slots.max(self.arena.slot_count() as u64);
        let row = id.index as usize;
        self.cols.ensure_row(row);
        self.cols.start_cycle(row, now_us);
        if self.roaming.is_some() {
            self.cols_visited.ensure_row(row);
            self.cols_visited.start_cycle(row, now_us);
        }

        // Stagger the first tick by a per-session phase so a million
        // sessions don't all land on the same wheel slot.
        let tick_us = self.tick.as_micros().max(1);
        let cycle_us = self.cycle.as_micros().max(tick_us);
        let (phase, ho_gap, op_ho_in) = {
            let Some(s) = self.arena.get_mut(id) else {
                return;
            };
            let phase = s.rng.next_below(tick_us);
            let ho_gap = self.churn.next_handover_gap();
            // Roaming draws happen only when the plane is configured,
            // so a disabled run's RNG streams are byte-identical to a
            // pre-roaming build.
            let op_ho_in = match &self.roaming {
                Some(rc) => {
                    let roamer = s.rng.chance(rc.roamer_fraction);
                    s.bonded = s.rng.chance(rc.bonded_fraction);
                    if roamer {
                        let gap_us = rc.operator_handover_gap.as_micros().max(1);
                        Some(gap_us + s.rng.next_below(gap_us))
                    } else {
                        None
                    }
                }
                None => None,
            };
            (phase, ho_gap, op_ho_in)
        };
        if op_ho_in.is_some() {
            self.rsweep.roamers_admitted = self.rsweep.roamers_admitted.saturating_add(1);
        }
        if self.arena.get(id).map(|s| s.bonded).unwrap_or(false) {
            self.rsweep.bonded_admitted = self.rsweep.bonded_admitted.saturating_add(1);
        }
        let tick_tok = self.sched.schedule(now_us + 1 + phase, Event::Tick(id));
        let cycle_tok = self.sched.schedule(now_us + cycle_us, Event::CycleEnd(id));
        let teardown_tok = self
            .sched
            .schedule(now_us + lifetime.as_micros().max(1), Event::Teardown(id));
        let handover_tok = match ho_gap {
            Some(gap) => self
                .sched
                .schedule(now_us + gap.as_micros().max(1), Event::Handover(id)),
            None => Token::NONE,
        };
        let op_handover_tok = match op_ho_in {
            Some(gap) => self
                .sched
                .schedule(now_us + gap, Event::OperatorHandover(id)),
            None => Token::NONE,
        };
        if let Some(s) = self.arena.get_mut(id) {
            s.tick_tok = tick_tok;
            s.cycle_tok = cycle_tok;
            s.teardown_tok = teardown_tok;
            s.handover_tok = handover_tok;
            s.op_handover_tok = op_handover_tok;
        }
    }

    /// Settles the session's current cycle and restarts the row.
    fn settle(&mut self, id: SessionId, now_us: u64, cause: SettleCause) {
        if self.roaming.is_some() {
            self.settle_roaming(id, now_us, cause);
            return;
        }
        let row = id.index as usize;
        let r = self.cols.row(row);
        if r.sent > 0 || r.gateway > 0 {
            let settlement = settle_twin_row(&r, &self.plan);
            let sampled = self.sample_rate > 0.0 && self.sample_rng.chance(self.sample_rate);
            self.settled_n += 1;
            if sampled {
                self.sampled_n += 1;
            }
            // Saturating fold (charge-arith): a wrapped tally here would
            // misstate the very gap the twin exists to measure.
            self.sweep.merge(&GapSweep {
                active_rows: 1,
                total_sent: r.sent,
                total_delivered: r.delivered,
                total_gateway: r.gateway,
                intended: settlement.intended,
                legacy_gap: settlement.legacy_gap(),
                tlc_gap: settlement.tlc_gap(),
            });
            self.outbox.push(Settled {
                shard: self.index,
                row: id.index,
                at_us: now_us,
                cause,
                settlement,
                sampled,
            });
        }
        self.cols.clear_row(row);
        self.cols.start_cycle(row, now_us);
    }

    /// Roaming-plane settlement: combine the per-operator rows for the
    /// gap sweep, price each operator's segment through the three-party
    /// agreement, and reconcile bonded devices' per-link CDRs.
    fn settle_roaming(&mut self, id: SessionId, now_us: u64, cause: SettleCause) {
        let Some(rc) = self.roaming.as_ref() else {
            return;
        };
        let agreement = rc.agreement;
        let row = id.index as usize;
        let rh = self.cols.row(row);
        let rv = self.cols_visited.row(row);
        let combined = combine_rows(&rh, &rv);
        if combined.sent > 0 || combined.gateway > 0 {
            let settlement = settle_twin_row(&combined, &self.plan);
            let sampled = self.sample_rate > 0.0 && self.sample_rng.chance(self.sample_rate);
            self.settled_n += 1;
            if sampled {
                self.sampled_n += 1;
            }
            self.sweep.merge(&GapSweep {
                active_rows: 1,
                total_sent: combined.sent,
                total_delivered: combined.delivered,
                total_gateway: combined.gateway,
                intended: settlement.intended,
                legacy_gap: settlement.legacy_gap(),
                tlc_gap: settlement.tlc_gap(),
            });
            // One segment per operator that carried traffic, priced on
            // the honest measured pair (edge reads exactly, operator
            // view trails by that operator's monitor lag).
            let mut segments: Vec<Segment> = Vec::with_capacity(2);
            for (serving, r) in [(Serving::Home, &rh), (Serving::Visited, &rv)] {
                if r.sent > 0 || r.gateway > 0 {
                    segments.push(Segment {
                        serving,
                        claims: UsagePair {
                            edge: r.sent,
                            operator: r.delivered.saturating_sub(r.monitor_lag),
                        },
                    });
                }
            }
            let rs = agreement.settle(&segments);
            self.rsweep.cycles_settled = self.rsweep.cycles_settled.saturating_add(1);
            self.rsweep.charged = self.rsweep.charged.saturating_add(rs.charged);
            self.rsweep.home = self.rsweep.home.saturating_add(rs.split.home);
            self.rsweep.visited = self.rsweep.visited.saturating_add(rs.split.visited);
            self.rsweep.vendor = self.rsweep.vendor.saturating_add(rs.split.vendor);
            if self.arena.get(id).map(|s| s.bonded).unwrap_or(false) && combined.sent > 0 {
                let links = bonded_links(&combined);
                let rec = reconcile_bonded(&links, self.plan.loss_weight);
                self.rsweep.bonded_cycles = self.rsweep.bonded_cycles.saturating_add(1);
                self.rsweep.bonded_link_charged =
                    self.rsweep.bonded_link_charged.saturating_add(rec.charged);
            }
            self.outbox.push(Settled {
                shard: self.index,
                row: id.index,
                at_us: now_us,
                cause,
                settlement,
                sampled,
            });
        }
        self.cols.clear_row(row);
        self.cols.start_cycle(row, now_us);
        self.cols_visited.clear_row(row);
        self.cols_visited.start_cycle(row, now_us);
    }

    /// Runs one accounting tick for a live session.
    fn run_tick(&mut self, id: SessionId, now_us: u64) {
        let tick_us = self.tick.as_micros().max(1);
        let congestion = self.congestion;
        let Some(s) = self.arena.get_mut(id) else {
            self.stale += 1;
            return;
        };
        let p = s.profile;
        let serving = s.serving;
        // Mean bytes per tick, jittered ±p.jitter around the mean.
        let mean = p.rate_bps as f64 / 8.0 * (tick_us as f64 / 1e6);
        let jit = s.rng.range_f64(1.0 - p.jitter, 1.0 + p.jitter);
        let sent = (mean * jit).max(0.0) as u64;
        // Residual air loss plus the cell-level congestion loss set at
        // the last epoch barrier (QCI-protected gaming mostly dodges
        // congestion, mirroring the paper's QCI=7 setup).
        let air = (sent as f64 * p.base_loss * s.rng.range_f64(0.5, 1.5)) as u64;
        let cong_frac = if p.base_loss < 0.02 {
            congestion * 0.1
        } else {
            congestion
        };
        let congested = ((sent.saturating_sub(air)) as f64 * cong_frac) as u64;
        // Downlink: the gateway meters upstream of the lossy leg.
        let gw_before = p.direction == Direction::Downlink;
        // The operator's monitor trails by up to one tick of delivered
        // bytes (RRC COUNTER CHECK cadence), refreshed every tick.
        let delivered_rate = sent.saturating_sub(air).saturating_sub(congested);
        let lag = (delivered_rate as f64 * s.rng.range_f64(0.0, 0.05)) as u64;
        let row = id.index as usize;
        self.offered = self.offered.saturating_add(sent);
        // Counters accrue on whichever operator currently serves; with
        // roaming off that is always `cols` (the home bank).
        let cols = match serving {
            Serving::Home => &mut self.cols,
            Serving::Visited => &mut self.cols_visited,
        };
        cols.accrue(row, sent, air, congested, gw_before);
        cols.set_monitor_lag(row, lag);
        let tok = self.sched.schedule(now_us + tick_us, Event::Tick(id));
        if let Some(s) = self.arena.get_mut(id) {
            s.tick_tok = tok;
        }
    }

    /// Executes a handover: claw back in-flight bytes, reschedule.
    fn run_handover(&mut self, id: SessionId, now_us: u64) {
        let tick_us = self.tick.as_micros().max(1);
        let (flush, gap, serving) = {
            let Some(s) = self.arena.get_mut(id) else {
                self.stale += 1;
                return;
            };
            // The cell flushes up to ~half a tick of in-flight bytes.
            let rate = s.profile.rate_bps as f64 / 8.0 * (tick_us as f64 / 1e6);
            let flush = (rate * s.rng.range_f64(0.1, 0.5)) as u64;
            (flush, self.churn.next_handover_gap(), s.serving)
        };
        self.handovers += 1;
        let cols = match serving {
            Serving::Home => &mut self.cols,
            Serving::Visited => &mut self.cols_visited,
        };
        cols.handover_flush(id.index as usize, flush);
        let tok = match gap {
            Some(g) => self
                .sched
                .schedule(now_us + g.as_micros().max(1), Event::Handover(id)),
            None => Token::NONE,
        };
        if let Some(s) = self.arena.get_mut(id) {
            s.handover_tok = tok;
        }
    }

    /// Hands a roamer over between operators: flush in-flight bytes on
    /// the operator being left (same link-layer mobility loss as an
    /// intra-operator handover), flip the serving side, reschedule.
    fn run_operator_handover(&mut self, id: SessionId, now_us: u64) {
        let Some(rc) = self.roaming.as_ref() else {
            self.stale += 1;
            return;
        };
        let base_gap_us = rc.operator_handover_gap.as_micros().max(1);
        let tick_us = self.tick.as_micros().max(1);
        let (flush, leaving, gap_us) = {
            let Some(s) = self.arena.get_mut(id) else {
                self.stale += 1;
                return;
            };
            let rate = s.profile.rate_bps as f64 / 8.0 * (tick_us as f64 / 1e6);
            let flush = (rate * s.rng.range_f64(0.1, 0.5)) as u64;
            let leaving = s.serving;
            s.serving = match leaving {
                Serving::Home => Serving::Visited,
                Serving::Visited => Serving::Home,
            };
            (flush, leaving, base_gap_us + s.rng.next_below(base_gap_us))
        };
        self.rsweep.operator_handovers = self.rsweep.operator_handovers.saturating_add(1);
        let cols = match leaving {
            Serving::Home => &mut self.cols,
            Serving::Visited => &mut self.cols_visited,
        };
        cols.handover_flush(id.index as usize, flush);
        let tok = self
            .sched
            .schedule(now_us + gap_us, Event::OperatorHandover(id));
        if let Some(s) = self.arena.get_mut(id) {
            s.op_handover_tok = tok;
        }
    }

    /// Tears a session down: settle the partial cycle, cancel every
    /// pending token, free the slot (O(1) throughout).
    fn run_teardown(&mut self, id: SessionId, now_us: u64) {
        self.settle(id, now_us, SettleCause::Teardown);
        let Some(s) = self.arena.remove(id) else {
            self.stale += 1;
            return;
        };
        self.sched.cancel(s.tick_tok);
        self.sched.cancel(s.cycle_tok);
        self.sched.cancel(s.handover_tok);
        self.sched.cancel(s.op_handover_tok);
        // teardown_tok is the event being fired; cancelling is a no-op
        // but harmless on the heap backend's tombstone path.
        self.sched.cancel(s.teardown_tok);
        self.cols.clear_row(id.index as usize);
        if self.roaming.is_some() {
            self.cols_visited.clear_row(id.index as usize);
        }
        self.retired += 1;
    }

    /// Runs this shard's wheel up to (not including) `epoch_end_us`.
    fn run_epoch(&mut self, epoch_end_us: u64) {
        self.offered = 0;
        while let Some((tick, _seq, ev)) = self.sched.pop_next(epoch_end_us) {
            self.fired += 1;
            match ev {
                Event::Arrival => {
                    if let Some(a) = self.churn.next_arrival() {
                        self.admit(tick, a.profile, a.lifetime);
                        let gap = a.inter_arrival.as_micros().max(1);
                        self.sched.schedule(tick + gap, Event::Arrival);
                    }
                }
                Event::Tick(id) => self.run_tick(id, tick),
                Event::CycleEnd(id) => {
                    if self.arena.contains(id) {
                        self.settle(id, tick, SettleCause::CycleEnd);
                        let cycle_us = self.cycle.as_micros().max(1);
                        let tok = self.sched.schedule(tick + cycle_us, Event::CycleEnd(id));
                        if let Some(s) = self.arena.get_mut(id) {
                            s.cycle_tok = tok;
                        }
                    } else {
                        self.stale += 1;
                    }
                }
                Event::Handover(id) => self.run_handover(id, tick),
                Event::OperatorHandover(id) => self.run_operator_handover(id, tick),
                Event::Teardown(id) => self.run_teardown(id, tick),
            }
        }
    }

    /// Settles every still-open cycle at run end.
    fn finish(&mut self, now_us: u64) {
        let live: Vec<SessionId> = self.arena.iter().map(|(id, _)| id).collect();
        for id in live {
            self.settle(id, now_us, SettleCause::RunEnd);
        }
    }
}

/// Sums the per-operator rows into one session-level row (the gap
/// sweep and the sink see the whole cycle, not per-operator slices).
fn combine_rows(home: &ChargeRow, visited: &ChargeRow) -> ChargeRow {
    ChargeRow {
        sent: home.sent.saturating_add(visited.sent),
        delivered: home.delivered.saturating_add(visited.delivered),
        gateway: home.gateway.saturating_add(visited.gateway),
        lost_air: home.lost_air.saturating_add(visited.lost_air),
        lost_congestion: home.lost_congestion.saturating_add(visited.lost_congestion),
        lost_handover: home.lost_handover.saturating_add(visited.lost_handover),
        monitor_lag: home.monitor_lag.saturating_add(visited.monitor_lag),
        cycle_start_us: home.cycle_start_us.min(visited.cycle_start_us),
    }
}

/// Derives a bonded device's per-link CDRs from its cycle row: a
/// low-RTT primary carrying ~2/3 of the volume and a high-RTT, lossier
/// secondary with the remainder. Deterministic (no RNG), and the link
/// volumes partition the row exactly, so
/// `Σ per-link edge claims == session volume` by construction.
fn bonded_links(r: &ChargeRow) -> [LinkCdr; 2] {
    let e_secondary = r.sent / 3;
    let e_primary = r.sent.saturating_sub(e_secondary);
    let o_secondary = r.delivered / 3;
    let o_primary = r.delivered.saturating_sub(o_secondary);
    [
        LinkCdr {
            claims: UsagePair {
                edge: e_primary,
                operator: o_primary,
            },
            rtt_us: 15_000,
            loss_bp: 150,
        },
        LinkCdr {
            claims: UsagePair {
                edge: e_secondary,
                operator: o_secondary,
            },
            rtt_us: 45_000,
            loss_bp: 800,
        },
    ]
}

/// Runs the twin, feeding settled cycles to `sink`.
pub fn run_twin(cfg: &TwinConfig, sink: &mut dyn SettlementSink) -> TwinReport {
    let shards = cfg.shards.max(1);
    let mut state: Vec<Shard> = (0..shards).map(|i| Shard::new(cfg, i)).collect();

    // Initial population, round-robin so every shard starts balanced.
    for (i, shard) in state.iter_mut().enumerate() {
        let mut n = cfg.initial_sessions / shards;
        if i < cfg.initial_sessions % shards {
            n += 1;
        }
        for _ in 0..n {
            let profile = shard.churn.draw_profile();
            let lifetime = shard.churn.draw_lifetime();
            shard.admit(0, profile, lifetime);
        }
        // Seed the churn arrival chain: the Arrival handler draws the
        // session arriving *now* plus the gap to the next arrival, so
        // the chain self-perpetuates from one seed event.
        if shard.churn.config().arrivals_per_sec > 0.0 {
            shard.sched.schedule(1, Event::Arrival);
        }
    }

    let mut report = TwinReport::default();
    let epoch_us = cfg.epoch.as_micros().max(1);
    let end_us = cfg.duration.as_micros();
    let mut peak: u64 = state.iter().map(|s| s.arena.len() as u64).sum();
    let mut now = 0u64;
    while now < end_us {
        let next = (now + epoch_us).min(end_us);
        // Parallel phase: each shard runs its own wheel to the epoch
        // boundary. Results (offered load) return in shard order.
        let offered: Vec<u64> = par_map_mut(cfg.threads.max(1), &mut state, |_, sh| {
            sh.run_epoch(next);
            sh.offered
        });
        // Barrier: merge offered load in shard order, derive the next
        // epoch's congestion level for every shard identically.
        let total: u64 = offered.iter().sum();
        let cap = cfg.cell_capacity_bytes_per_epoch.max(1);
        let over = total.saturating_sub(cap) as f64 / cap as f64;
        let congestion = (over / (1.0 + over) * 0.5).min(0.5);
        for sh in state.iter_mut() {
            sh.congestion = congestion;
            for s in sh.outbox.drain(..) {
                sink.settle(&s);
            }
        }
        let live: u64 = state.iter().map(|s| s.arena.len() as u64).sum();
        peak = peak.max(live);
        now = next;
    }
    for sh in state.iter_mut() {
        sh.finish(end_us);
        for s in sh.outbox.drain(..) {
            sink.settle(&s);
        }
    }

    for sh in &state {
        report.sessions_created += sh.created;
        report.sessions_retired += sh.retired;
        report.events_fired += sh.fired;
        report.stale_events += sh.stale;
        report.handovers += sh.handovers;
        report.cycles_settled += sh.settled_n;
        report.cycles_sampled += sh.sampled_n;
        report.sweep.merge(&sh.sweep);
        report.roaming.merge(&sh.rsweep);
        report.peak_shard_slots = report.peak_shard_slots.max(sh.peak_slots);
        report.final_concurrent += sh.arena.len() as u64;
    }
    report.peak_concurrent = peak;
    report.roaming_enabled = cfg.roaming.is_some();
    report.finish();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(seed: u64) -> TwinConfig {
        let mut cfg = TwinConfig::smoke(seed);
        cfg.initial_sessions = 200;
        cfg.duration = SimDuration::from_secs(6);
        cfg
    }

    #[test]
    fn twin_runs_and_settles() {
        let r = run_twin(&small(1), &mut NullSink);
        assert!(r.sessions_created >= 200);
        assert!(r.cycles_settled > 0, "no cycles settled");
        assert!(r.events_fired > 0);
        assert_eq!(r.stale_events, 0, "teardown must cancel its tokens");
        assert!(r.sweep.intended > 0);
    }

    #[test]
    fn thread_count_is_not_an_equivalence_axis_violation() {
        let mut a = small(2);
        a.threads = 1;
        let mut b = small(2);
        b.threads = 4;
        let ra = run_twin(&a, &mut NullSink);
        let rb = run_twin(&b, &mut NullSink);
        assert_eq!(ra.digest, rb.digest, "threads changed the run");
        assert_eq!(ra.sweep, rb.sweep);
    }

    #[test]
    fn wheel_and_heap_backends_are_byte_identical() {
        let mut a = small(3);
        a.backend = WheelBackend::Wheel;
        let mut b = small(3);
        b.backend = WheelBackend::Heap;
        let ra = run_twin(&a, &mut NullSink);
        let rb = run_twin(&b, &mut NullSink);
        assert_eq!(ra.digest, rb.digest, "scheduler backend changed the run");
        assert_eq!(ra.events_fired, rb.events_fired);
        assert_eq!(ra.sweep, rb.sweep);
    }

    #[test]
    fn congestion_coupling_responds_to_capacity() {
        let mut tight = small(4);
        tight.cell_capacity_bytes_per_epoch = 100_000;
        let mut loose = small(4);
        loose.cell_capacity_bytes_per_epoch = u64::MAX;
        let rt = run_twin(&tight, &mut NullSink);
        let rl = run_twin(&loose, &mut NullSink);
        assert!(
            rt.sweep.total_delivered < rl.sweep.total_delivered,
            "capacity cap should cost delivered bytes: {} !< {}",
            rt.sweep.total_delivered,
            rl.sweep.total_delivered
        );
    }

    #[test]
    fn sink_sees_sampled_and_unsampled_cycles() {
        struct Count {
            total: u64,
            sampled: u64,
        }
        impl SettlementSink for Count {
            fn settle(&mut self, s: &Settled) {
                self.total += 1;
                if s.sampled {
                    self.sampled += 1;
                }
            }
        }
        let mut cfg = small(5);
        cfg.sample_rate = 0.25;
        let mut sink = Count {
            total: 0,
            sampled: 0,
        };
        let r = run_twin(&cfg, &mut sink);
        assert_eq!(sink.total, r.cycles_settled);
        assert_eq!(sink.sampled, r.cycles_sampled);
        assert!(sink.sampled > 0 && sink.sampled < sink.total);
    }

    fn roaming_cfg(seed: u64) -> TwinConfig {
        let mut cfg = small(seed);
        cfg.roaming = Some(RoamingTwinConfig::paper_default());
        cfg
    }

    #[test]
    fn roaming_twin_conserves_three_party_charges() {
        let r = run_twin(&roaming_cfg(7), &mut NullSink);
        assert!(r.roaming_enabled);
        assert!(r.roaming.roamers_admitted > 0, "no roamers admitted");
        assert!(r.roaming.bonded_admitted > 0, "no bonded devices");
        assert!(r.roaming.operator_handovers > 0, "no operator handovers");
        assert!(r.roaming.cycles_settled > 0);
        assert!(r.roaming.visited > 0, "visited operator never earned");
        // The conservation law: every cycle splits exactly, and the
        // sums are saturating-but-unsaturated at this scale.
        assert_eq!(
            r.roaming
                .home
                .saturating_add(r.roaming.visited)
                .saturating_add(r.roaming.vendor),
            r.roaming.charged,
            "home + visited + vendor must equal the charged volume"
        );
        assert!(r.roaming.bonded_cycles > 0);
        assert!(r.roaming.bonded_link_charged > 0);
    }

    #[test]
    fn roaming_twin_is_backend_and_thread_invariant() {
        let mut wheel1 = roaming_cfg(8);
        wheel1.backend = WheelBackend::Wheel;
        wheel1.threads = 1;
        let mut heap4 = roaming_cfg(8);
        heap4.backend = WheelBackend::Heap;
        heap4.threads = 4;
        let ra = run_twin(&wheel1, &mut NullSink);
        let rb = run_twin(&heap4, &mut NullSink);
        assert_eq!(
            ra.digest, rb.digest,
            "backend/threads changed a roaming run"
        );
        assert_eq!(ra.roaming, rb.roaming);
        assert_eq!(ra.sweep, rb.sweep);
    }

    #[test]
    fn disabling_roaming_leaves_the_run_untouched() {
        // A roaming config whose knobs are all zero still takes the
        // roaming settlement path; only `None` preserves the original
        // event and RNG schedule. Verify `None` matches `None`.
        let ra = run_twin(&small(9), &mut NullSink);
        let rb = run_twin(&small(9), &mut NullSink);
        assert_eq!(ra.digest, rb.digest);
        assert!(!ra.roaming_enabled);
        assert_eq!(ra.roaming, RoamingSweep::default());
    }

    #[test]
    fn churn_reuses_slots() {
        let mut cfg = small(6);
        cfg.churn.mean_lifetime = SimDuration::from_secs(2);
        cfg.duration = SimDuration::from_secs(12);
        let r = run_twin(&cfg, &mut NullSink);
        assert!(r.sessions_retired > 0, "short lifetimes must retire");
        // Slots bound by peak concurrency, not total created.
        assert!(
            r.peak_shard_slots < r.sessions_created,
            "slots {} !< created {}",
            r.peak_shard_slots,
            r.sessions_created
        );
    }
}
