//! # tlc-sim
//!
//! Experiment harness for the TLC reproduction of *"Bridging the Data
//! Charging Gap in the Cellular Edge"* (SIGCOMM '19): wires the emulated
//! LTE cell (`tlc-cell`), the workloads (`tlc-workloads`), and the TLC
//! protocol (`tlc-core`) into the paper's §7 evaluation.
//!
//! * [`scenario`] — one experiment round: app + background + radio
//!   condition over a charging cycle,
//! * [`measure`] — party record extraction and the three charging schemes
//!   (honest legacy, TLC-optimal, TLC-random),
//! * [`metrics`] — CDFs and unit conversions,
//! * [`experiments`] — one module per paper table/figure, each emitting
//!   the same rows/series the paper reports,
//! * [`par`] — the deterministic parallel sweep runner (order-preserving
//!   scoped thread pool; `TLC_SWEEP_THREADS` override),
//! * [`multiop`] — the §8 multi-operator extension: per-operator TLC
//!   instances over classified traffic,
//! * [`wheel`] / [`arena`] / [`soa`] / [`twin`] — the million-session
//!   charging digital twin (DESIGN §13): hierarchical timer wheel with
//!   O(1) schedule/cancel, generational session slab, struct-of-arrays
//!   charging counters, and the sharded epoch-barrier run loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod experiments;
pub mod measure;
pub mod metrics;
pub mod multiop;
pub mod par;
pub mod scenario;
pub mod soa;
pub mod twin;
pub mod wheel;

pub use arena::{Arena, SessionId};
pub use measure::{
    compare_schemes, cycle_records, evaluate, settle_twin_row, Comparison, CycleRecords,
    SchemeOutcome, TwinSettlement,
};
pub use metrics::{bytes_to_mb, bytes_to_mb_per_hr, Cdf};
pub use multiop::{run_multi_operator, MultiOperatorOutcome, OperatorOutcome, OperatorSlice};
pub use scenario::{
    build_radio, run_scenario, AppKind, RadioSpec, ScenarioConfig, ScenarioResult, ALL_APPS,
    APP_FLOW, BG_FLOW,
};
pub use soa::{ChargeColumns, ChargeRow, GapSweep};
pub use twin::{
    run_twin, NullSink, RoamingSweep, RoamingTwinConfig, Settled, SettlementSink, TwinConfig,
    TwinReport,
};
pub use wheel::{Scheduler, Token, WheelBackend};
