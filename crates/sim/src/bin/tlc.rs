//! `tlc` — command-line front end to the TLC reproduction.
//!
//! ```text
//! tlc eval [--full]                 regenerate every paper table/figure
//! tlc experiment <name> [--full]    one experiment (fig03..fig18, table2,
//!                                   dataset, generic, ablation, mobility,
//!                                   roaming, strawman, twin)
//! tlc negotiate --sent B --received B [--c F] [--strategy optimal|honest|random]
//!               [--loss P] [--dup P] [--reorder P] [--seed N]
//!                                   price one cycle, print the PoC (hex);
//!                                   loss/dup/reorder run the negotiation
//!                                   through the loss-tolerant session layer
//!                                   over a faulty signaling channel
//! tlc verify --poc HEXFILE [--c F]  verify a PoC produced by `negotiate`
//! tlc keygen --seed N               print a deterministic RSA-1024 public key
//! ```
//!
//! No external arg-parsing crates: flags are simple `--key value` pairs.

use std::collections::HashMap;
use std::process::ExitCode;
use tlc_core::messages::{PocMsg, NONCE_LEN};
use tlc_core::plan::{DataPlan, LossWeight};
use tlc_core::protocol::{run_negotiation, Endpoint};
use tlc_core::session::{run_session_pair, Session, SessionConfig, SessionOutcome};
use tlc_core::strategy::{
    HonestStrategy, Knowledge, OptimalStrategy, RandomSelfishStrategy, Role, Strategy,
};
use tlc_core::verify::verify_poc;
use tlc_crypto::encoding::encode_public_key;
use tlc_crypto::KeyPair;
use tlc_net::channel::{FaultSpec, FaultyChannel};
use tlc_net::loss::{LossModel, NoLoss, UniformLoss};
use tlc_net::rng::SimRng;
use tlc_net::time::{SimDuration, SimTime};
use tlc_sim::experiments::{
    ablation, dataset, fig03, fig04, fig12, fig13, fig14, fig15, fig16, fig17, fig18, generic,
    mobility, roaming, robustness, strawman, sweep, table2, twin, RunScale,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(&args[1..]);
    let scale = if flags.contains_key("full") {
        RunScale::Full
    } else {
        RunScale::Quick
    };
    match cmd.as_str() {
        "eval" => eval(scale),
        "experiment" => {
            let Some(name) = args.get(1).filter(|a| !a.starts_with("--")) else {
                eprintln!("usage: tlc experiment <name> [--full]");
                return ExitCode::FAILURE;
            };
            return experiment(name, scale);
        }
        "negotiate" => return negotiate_cmd(&flags),
        "verify" => return verify_cmd(&flags),
        "keygen" => {
            let seed = flag_u64(&flags, "seed").unwrap_or(0);
            match KeyPair::generate_for_seed(1024, seed) {
                Ok(kp) => println!("{}", hex(&encode_public_key(&kp.public))),
                Err(e) => {
                    eprintln!("keygen failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        other => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

const USAGE: &str = "usage: tlc <eval|experiment|negotiate|verify|keygen> [flags]\n\
  tlc eval [--full]\n\
  tlc experiment <fig03|fig04|fig12|fig13|fig14|fig15|fig16|fig17|fig18|table2|dataset|generic|ablation|mobility|roaming|robustness|strawman|twin> [--full]\n\
  tlc negotiate --sent BYTES --received BYTES [--c 0.5] [--strategy optimal|honest|random]\n\
                [--loss 0.2] [--dup 0.05] [--reorder 0.05] [--seed N]   (lossy control plane)\n\
  tlc verify --poc HEX [--c 0.5]\n\
  tlc keygen --seed N";

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let value = args
                .get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .cloned()
                .unwrap_or_default();
            if value.is_empty() {
                out.insert(key.to_string(), "true".to_string());
                i += 1;
            } else {
                out.insert(key.to_string(), value);
                i += 2;
            }
        } else {
            i += 1;
        }
    }
    out
}

fn flag_u64(flags: &HashMap<String, String>, key: &str) -> Option<u64> {
    flags.get(key).and_then(|v| v.parse().ok())
}

fn flag_f64(flags: &HashMap<String, String>, key: &str) -> Option<f64> {
    flags.get(key).and_then(|v| v.parse().ok())
}

fn eval(scale: RunScale) {
    fig03::print(&fig03::run(scale));
    let (rows, summary) = fig04::run(scale);
    fig04::print(&rows, &summary);
    let samples = sweep::congestion_sweep(scale);
    dataset::print(&dataset::from_samples(&samples));
    fig12::print(&mut fig12::from_samples(&samples));
    table2::print(&table2::from_samples(&samples));
    fig13::print(&fig13::from_samples(&samples));
    fig14::print(&fig14::run(scale));
    fig15::print(&mut fig15::from_samples(&samples));
    let rtt = fig16::run_rtt(scale);
    fig16::print(&rtt, &fig16::rounds_from_samples(&samples));
    match fig17::run(5) {
        Ok(r) => fig17::print(&r),
        Err(e) => eprintln!("fig17 skipped: negotiation failed: {e}"),
    }
    fig18::print(&mut fig18::run(scale));
    generic::print(&generic::run(scale));
    ablation::print(&ablation::run(scale));
    mobility::print(&mobility::run(scale));
    strawman::print(&strawman::run(scale));
    robustness::print(&robustness::run(scale));
    twin::print(&twin::run(scale));
    roaming::print(&roaming::run(scale));
}

fn experiment(name: &str, scale: RunScale) -> ExitCode {
    match name {
        "fig03" => fig03::print(&fig03::run(scale)),
        "fig04" => {
            let (rows, summary) = fig04::run(scale);
            fig04::print(&rows, &summary);
        }
        "fig12" => fig12::print(&mut fig12::run(scale)),
        "fig13" => fig13::print(&fig13::run(scale)),
        "fig14" => fig14::print(&fig14::run(scale)),
        "fig15" => fig15::print(&mut fig15::run(scale)),
        "fig16" => {
            let samples = sweep::congestion_sweep(scale);
            fig16::print(
                &fig16::run_rtt(scale),
                &fig16::rounds_from_samples(&samples),
            );
        }
        "fig17" => match fig17::run(10) {
            Ok(r) => fig17::print(&r),
            Err(e) => {
                eprintln!("fig17 failed: {e}");
                return ExitCode::FAILURE;
            }
        },
        "fig18" => fig18::print(&mut fig18::run(scale)),
        "table2" => table2::print(&table2::run(scale)),
        "dataset" => dataset::print(&dataset::from_samples(&sweep::congestion_sweep(scale))),
        "generic" => generic::print(&generic::run(scale)),
        "ablation" => ablation::print(&ablation::run(scale)),
        "mobility" => mobility::print(&mobility::run(scale)),
        "robustness" => robustness::print(&robustness::run(scale)),
        "strawman" => strawman::print(&strawman::run(scale)),
        "twin" => twin::print(&twin::run(scale)),
        "roaming" => roaming::print(&roaming::run(scale)),
        other => {
            eprintln!("unknown experiment `{other}`");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn plan_from(flags: &HashMap<String, String>) -> DataPlan {
    let c = flag_f64(flags, "c").unwrap_or(0.5);
    DataPlan {
        loss_weight: LossWeight::from_f64(c),
        ..DataPlan::paper_default()
    }
}

fn negotiate_cmd(flags: &HashMap<String, String>) -> ExitCode {
    let (Some(sent), Some(received)) = (flag_u64(flags, "sent"), flag_u64(flags, "received"))
    else {
        eprintln!("negotiate needs --sent and --received (bytes)");
        return ExitCode::FAILURE;
    };
    if received > sent {
        eprintln!("received ({received}) cannot exceed sent ({sent})");
        return ExitCode::FAILURE;
    }
    let plan = plan_from(flags);
    let strategy = flags
        .get("strategy")
        .map(String::as_str)
        .unwrap_or("optimal");
    let mk = |seed: u64| -> Box<dyn Strategy> {
        match strategy {
            "honest" => Box::new(HonestStrategy),
            "random" => Box::new(RandomSelfishStrategy::new(SimRng::new(seed))),
            _ => Box::new(OptimalStrategy),
        }
    };
    let ek = KeyPair::generate_for_seed(1024, 1001).expect("keygen");
    let ok = KeyPair::generate_for_seed(1024, 1002).expect("keygen");
    let mut edge = Endpoint::new(
        Role::Edge,
        plan,
        Knowledge {
            role: Role::Edge,
            own_truth: sent,
            inferred_peer_truth: received,
        },
        mk(11),
        ek.private.clone(),
        ok.public.clone(),
        [0xAA; NONCE_LEN],
        64,
    );
    let mut op = Endpoint::new(
        Role::Operator,
        plan,
        Knowledge {
            role: Role::Operator,
            own_truth: received,
            inferred_peer_truth: sent,
        },
        mk(22),
        ok.private.clone(),
        ek.public.clone(),
        [0xBB; NONCE_LEN],
        64,
    );
    let faulty = ["loss", "dup", "reorder", "seed"]
        .iter()
        .any(|k| flags.contains_key(*k));
    if faulty {
        return negotiate_faulty(flags, edge, op);
    }
    match run_negotiation(&mut op, &mut edge) {
        Ok((poc, msgs)) => {
            eprintln!(
                "negotiated charge: {} bytes in {} messages (claims: edge {}, operator {})",
                poc.charge,
                msgs,
                poc.edge_usage(),
                poc.operator_usage()
            );
            println!("{}", hex(&poc.encode()));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("negotiation failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Runs `negotiate` through the loss-tolerant session layer over a pair of
/// faulty signaling channels (`--loss`, `--dup`, `--reorder`, `--seed`).
fn negotiate_faulty(flags: &HashMap<String, String>, edge: Endpoint, op: Endpoint) -> ExitCode {
    let loss = flag_f64(flags, "loss").unwrap_or(0.0);
    let dup = flag_f64(flags, "dup").unwrap_or(0.0);
    let reorder = flag_f64(flags, "reorder").unwrap_or(0.0);
    let seed = flag_u64(flags, "seed").unwrap_or(1);
    for (name, p) in [("loss", loss), ("dup", dup), ("reorder", reorder)] {
        if !(0.0..=1.0).contains(&p) {
            eprintln!("--{name} must be a probability in [0, 1]");
            return ExitCode::FAILURE;
        }
    }
    let spec = FaultSpec::with_faults(dup, reorder, 0.0);
    let mut rng = SimRng::new(seed);
    let mk = |rng: &mut SimRng| -> FaultyChannel {
        let model: Box<dyn LossModel> = if loss == 0.0 {
            Box::new(NoLoss)
        } else {
            Box::new(UniformLoss::new(loss))
        };
        FaultyChannel::new(spec.clone(), model, SimRng::new(rng.next_u64()))
    };
    let mut fwd = mk(&mut rng);
    let mut back = mk(&mut rng);
    let mut initiator = Session::new(op, SessionConfig::default());
    let mut responder = Session::new(edge, SessionConfig::default());
    let report = match run_session_pair(
        &mut initiator,
        &mut responder,
        &mut fwd,
        &mut back,
        SimTime::from_millis(0),
        SimDuration::from_secs(300),
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("negotiation failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "session: loss {loss} dup {dup} reorder {reorder} seed {seed} -> \
         {} frames, {} retransmits, {:.1} ms virtual latency",
        report.frames_sent,
        report.retransmits,
        report.elapsed.as_secs_f64() * 1e3
    );
    match (&report.initiator, &report.responder) {
        (SessionOutcome::Proof(poc), _) | (_, SessionOutcome::Proof(poc)) => {
            eprintln!(
                "negotiated charge: {} bytes (claims: edge {}, operator {})",
                poc.charge,
                poc.edge_usage(),
                poc.operator_usage()
            );
            println!("{}", hex(&poc.encode()));
            ExitCode::SUCCESS
        }
        (SessionOutcome::Fallback { reason, charge }, _) => {
            eprintln!("negotiation abandoned ({reason:?}); legacy fallback charge: {charge} bytes");
            ExitCode::SUCCESS
        }
    }
}

fn verify_cmd(flags: &HashMap<String, String>) -> ExitCode {
    let Some(poc_hex) = flags.get("poc") else {
        eprintln!("verify needs --poc HEX (as printed by `tlc negotiate`)");
        return ExitCode::FAILURE;
    };
    let Some(bytes) = unhex(poc_hex) else {
        eprintln!("--poc is not valid hex");
        return ExitCode::FAILURE;
    };
    let poc = match PocMsg::decode(&bytes) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("malformed PoC: {e}");
            return ExitCode::FAILURE;
        }
    };
    let plan = plan_from(flags);
    // The CLI's negotiate command uses fixed deterministic identities.
    let ek = KeyPair::generate_for_seed(1024, 1001).expect("keygen");
    let ok = KeyPair::generate_for_seed(1024, 1002).expect("keygen");
    match verify_poc(&poc, &plan, &ek.public, &ok.public) {
        Ok(v) => {
            println!(
                "VALID: charge {} bytes (edge claim {}, operator claim {}, {} round(s))",
                v.charge, v.edge_claim, v.operator_claim, v.rounds
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            println!("INVALID: {e}");
            ExitCode::FAILURE
        }
    }
}

fn hex(data: &[u8]) -> String {
    data.iter().map(|b| format!("{b:02x}")).collect()
}

fn unhex(s: &str) -> Option<Vec<u8>> {
    let s = s.trim();
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}
