//! Multi-access edge across several operators (§8).
//!
//! "Some edge scenarios combine multiple operators' 4G/5G to improve
//! coverage. TLC can be extended to this scenario: for each 4G/5G
//! operator, the edge nodes run TLC to negotiate the per-operator
//! charging. ... the edge should classify its data traffic by operators
//! when generating the charging records."
//!
//! Each operator gets its own emulated cell, its own tamper-resilient
//! monitors, its own TLC instance — and the edge's total bill is the sum
//! of independently negotiated, independently verifiable charges.

use crate::measure::{compare_schemes, cycle_records, Comparison, CycleRecords};
use crate::scenario::{run_scenario, AppKind, RadioSpec, ScenarioConfig};
use tlc_core::plan::DataPlan;
use tlc_net::time::SimDuration;

/// One operator's slice of the edge deployment.
#[derive(Clone, Debug)]
pub struct OperatorSlice {
    /// Operator name (for reporting).
    pub name: &'static str,
    /// The radio condition of this operator's cell at the device.
    pub radio: RadioSpec,
    /// Congestion on this operator's cell, Mbps.
    pub background_mbps: f64,
    /// The data plan agreed with this operator (plans may differ!).
    pub plan: DataPlan,
}

/// The per-operator outcome.
pub struct OperatorOutcome {
    /// Operator name.
    pub name: &'static str,
    /// That cell's cycle records.
    pub records: CycleRecords,
    /// Priced schemes under that operator's plan.
    pub comparison: Comparison,
}

/// The combined multi-operator cycle result.
pub struct MultiOperatorOutcome {
    /// One outcome per operator, in input order.
    pub per_operator: Vec<OperatorOutcome>,
}

impl MultiOperatorOutcome {
    /// The edge's total TLC-negotiated bill across operators.
    pub fn total_tlc_charge(&self) -> u64 {
        self.per_operator
            .iter()
            .map(|o| o.comparison.tlc_optimal.charge)
            .sum()
    }

    /// The total legacy bill across operators.
    pub fn total_legacy_charge(&self) -> u64 {
        self.per_operator
            .iter()
            .map(|o| o.comparison.legacy.charge)
            .sum()
    }

    /// The total plan-intended charge.
    pub fn total_intended(&self) -> u64 {
        self.per_operator
            .iter()
            .map(|o| o.comparison.intended)
            .sum()
    }
}

/// Runs one edge application's charging cycle across several operators.
///
/// The edge classifies its traffic per operator; here each operator
/// carries an independent instance of the application stream (its share
/// of the classified traffic), over its own cell conditions, with its
/// own plan — and TLC negotiates per operator.
pub fn run_multi_operator(
    app: AppKind,
    cycle: SimDuration,
    operators: &[OperatorSlice],
    seed: u64,
) -> MultiOperatorOutcome {
    let per_operator = operators
        .iter()
        .enumerate()
        .map(|(i, op)| {
            let mut cfg = ScenarioConfig::new(app, seed ^ (0x0b0 + i as u64 * 7919), cycle)
                .with_background(op.background_mbps)
                .with_radio(op.radio);
            cfg.datapath.rrc_periodic_check = crate::experiments::sweep::rrc_period_for(cycle);
            let r = run_scenario(&cfg);
            let records = cycle_records(&r);
            let comparison =
                compare_schemes(&records, &op.plan, cfg.seed).expect("pricing converges");
            OperatorOutcome {
                name: op.name,
                records,
                comparison,
            }
        })
        .collect();
    MultiOperatorOutcome { per_operator }
}

#[cfg(test)]
impl OperatorOutcome {
    /// Test helper: the paper-default plan (operator A's).
    fn comparison_plan(&self) -> DataPlan {
        DataPlan::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlc_core::plan::LossWeight;

    fn operators() -> Vec<OperatorSlice> {
        vec![
            OperatorSlice {
                name: "Operator A",
                radio: RadioSpec::Good,
                background_mbps: 140.0,
                plan: DataPlan::paper_default(),
            },
            OperatorSlice {
                name: "Operator B",
                radio: RadioSpec::Intermittent { eta: 0.10 },
                background_mbps: 0.0,
                plan: DataPlan {
                    loss_weight: LossWeight::from_f64(0.25),
                    ..DataPlan::paper_default()
                },
            },
        ]
    }

    #[test]
    fn per_operator_charges_are_independent_and_bounded() {
        let out = run_multi_operator(AppKind::Vr, SimDuration::from_secs(30), &operators(), 0xAB);
        assert_eq!(out.per_operator.len(), 2);
        for o in &out.per_operator {
            let lo = (o.records.truth.operator as f64 * 0.99) as u64;
            let hi = (o.records.truth.edge as f64 * 1.01) as u64;
            assert!(
                (lo..=hi).contains(&o.comparison.tlc_optimal.charge),
                "{}: charge out of bounds",
                o.name
            );
        }
        // Different conditions and plans: charges differ.
        assert_ne!(
            out.per_operator[0].comparison.tlc_optimal.charge,
            out.per_operator[1].comparison.tlc_optimal.charge
        );
    }

    #[test]
    fn totals_sum_per_operator() {
        let out = run_multi_operator(
            AppKind::WebcamUdp,
            SimDuration::from_secs(30),
            &operators(),
            0xAC,
        );
        let sum: u64 = out
            .per_operator
            .iter()
            .map(|o| o.comparison.tlc_optimal.charge)
            .sum();
        assert_eq!(out.total_tlc_charge(), sum);
        assert!(out.total_intended() > 0);
        // Aggregate TLC bill closer to intended than aggregate legacy.
        let tlc_gap = out.total_tlc_charge().abs_diff(out.total_intended());
        let legacy_gap = out.total_legacy_charge().abs_diff(out.total_intended());
        assert!(tlc_gap <= legacy_gap);
    }

    #[test]
    fn plans_apply_per_operator() {
        // Operator B's c = 0.25 discounts lost data more than A's 0.5:
        // same truths would price differently. We check via the intended
        // values directly.
        let out = run_multi_operator(AppKind::Vr, SimDuration::from_secs(30), &operators(), 0xAD);
        let a = &out.per_operator[0];
        let b = &out.per_operator[1];
        // Reprice B's records under A's plan: must differ when loss > 0.
        let b_under_a = compare_schemes(&b.records, &a.comparison_plan(), 1)
            .unwrap()
            .intended;
        if b.records.truth.edge > b.records.truth.operator {
            assert_ne!(b_under_a, b.comparison.intended);
        }
    }
}
