//! Extension: the link-layer mobility gap (§3.1 cause 2).
//!
//! "The moving device may switch its base stations or radio
//! technologies, in which the data can be lost." The paper taxonomises
//! this loss cause but evaluates stationary devices; this extension
//! sweeps the handover rate and shows the same TLC result holds: the
//! mobility-induced gap inflates the legacy bill and cancels out in the
//! negotiation.

use super::sweep::rrc_period_for;
use super::RunScale;
use crate::measure::{compare_schemes, cycle_records};
use crate::scenario::{run_scenario, AppKind, ScenarioConfig};
use serde::Serialize;
use tlc_core::plan::DataPlan;

/// One mobility level's outcome.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct MobilityRow {
    /// Handover rate, events/minute.
    pub handovers_per_minute: f64,
    /// Mean loss fraction of the app's traffic.
    pub loss_fraction: f64,
    /// Legacy gap ratio ε.
    pub legacy_ratio: f64,
    /// TLC-optimal gap ratio ε.
    pub tlc_ratio: f64,
}

/// Sweeps handover rates for the downlink VR stream (buffered bursts are
/// the most handover-exposed traffic).
pub fn run(scale: RunScale) -> Vec<MobilityRow> {
    let plan = DataPlan::paper_default();
    let rates = match scale {
        RunScale::Quick => vec![0.0, 6.0, 20.0],
        RunScale::Full => vec![0.0, 2.0, 6.0, 12.0, 20.0, 30.0],
    };
    rates
        .into_iter()
        .map(|rate| {
            let mut loss = 0.0;
            let mut legacy = 0.0;
            let mut tlc = 0.0;
            let rounds = scale.rounds();
            for round in 0..rounds {
                let mut cfg = ScenarioConfig::new(
                    AppKind::Vr,
                    0x0B11 + round * 31 + rate as u64,
                    scale.cycle(),
                )
                .with_handovers_per_minute(rate);
                // A slower cell keeps a standing queue, so handovers have
                // something to flush (as in a loaded commercial cell).
                cfg.datapath.dl_capacity_bps = 12_000_000;
                cfg.datapath.rrc_periodic_check = rrc_period_for(scale.cycle());
                let r = run_scenario(&cfg);
                let records = cycle_records(&r);
                let cmp = compare_schemes(&records, &plan, cfg.seed).expect("pricing");
                loss += (records.truth.edge - records.truth.operator) as f64
                    / records.truth.edge.max(1) as f64;
                legacy += cmp.gap_ratio(cmp.legacy.charge);
                tlc += cmp.gap_ratio(cmp.tlc_optimal.charge);
            }
            let n = rounds as f64;
            MobilityRow {
                handovers_per_minute: rate,
                loss_fraction: loss / n,
                legacy_ratio: legacy / n,
                tlc_ratio: tlc / n,
            }
        })
        .collect()
}

/// Prints the sweep.
pub fn print(rows: &[MobilityRow]) {
    println!("Extension — handover (mobility) gap, downlink VR");
    println!(
        "{:>8} {:>8} {:>10} {:>9}",
        "HO/min", "loss %", "legacy ε", "TLC ε"
    );
    for r in rows {
        println!(
            "{:>8.0} {:>7.1}% {:>9.2}% {:>8.3}%",
            r.handovers_per_minute,
            r.loss_fraction * 100.0,
            r.legacy_ratio * 100.0,
            r.tlc_ratio * 100.0,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handovers_grow_the_legacy_gap_not_tlcs() {
        let rows = run(RunScale::Quick);
        let at = |rate: f64| {
            rows.iter()
                .find(|r| r.handovers_per_minute == rate)
                .unwrap()
        };
        assert!(
            at(20.0).loss_fraction > at(0.0).loss_fraction,
            "mobility must add loss: {} vs {}",
            at(20.0).loss_fraction,
            at(0.0).loss_fraction
        );
        assert!(at(20.0).legacy_ratio > at(0.0).legacy_ratio);
        for r in &rows {
            assert!(
                r.tlc_ratio < 0.02,
                "TLC ε {} at {} HO/min",
                r.tlc_ratio,
                r.handovers_per_minute
            );
        }
    }
}
