//! Fig. 18 — accuracy of TLC's tamper-resilient charging records.
//!
//! Two error distributions over many experiment rounds:
//!
//! * γ_o — the operator's RRC-COUNTER-CHECK-based downlink record vs the
//!   gateway-based record (avg 2.0% in the paper; the residual is the
//!   RRC report lag plus the asynchronous cycle boundary),
//! * γ_e — the edge server's monitor vs the gateway-based record
//!   (avg 1.2%; pure clock-skew effect).
//!
//! Uplink records are exact (both sides reuse their own meters), which
//! the paper reports as 100% accuracy — asserted in the tests.

use super::sweep::rrc_period_for;
use super::RunScale;
use crate::metrics::Cdf;
use crate::scenario::{run_scenario, AppKind, ScenarioConfig};
use tlc_core::legacy::gap_ratio;

/// The two error CDFs of the figure.
pub struct Fig18Curves {
    /// Operator-side record error γ_o.
    pub gamma_o: Cdf,
    /// Edge-side record error γ_e.
    pub gamma_e: Cdf,
}

/// Regenerates the figure: clean-radio, uncongested downlink rounds (so
/// the records differ only by measurement mechanics, not by loss), with
/// NTP-residual clock skew per round.
pub fn run(scale: RunScale) -> Fig18Curves {
    let rounds = match scale {
        RunScale::Quick => 10,
        RunScale::Full => 60,
    };
    // The rounds fan out across the sweep thread pool; each yields its
    // (γ_o, γ_e) pair and the CDF pushes happen afterwards in round
    // order, so the curves are byte-identical to a sequential run.
    let round_ids: Vec<u64> = (0..rounds).collect();
    let pairs = crate::par::par_map(&round_ids, |&round| {
        let mut cfg = ScenarioConfig::new(AppKind::Vr, 0xF1800 + round * 977, scale.cycle());
        cfg.datapath.rrc_periodic_check = rrc_period_for(scale.cycle());
        // The paper's worst errors come from poorly synchronized cycles;
        // draw a fresh skew per round (σ grows the tail like their 12.7%
        // outlier).
        cfg.ntp_skew_std_ms = 200.0;
        let r = run_scenario(&cfg);

        // γ_o: the RRC-based record vs the reference count of what the
        // device received (the paper compares against the gateway record;
        // in its low-loss accuracy runs the two references coincide — we
        // use the modem truth so real radio loss is not misread as a
        // record error).
        let modem = r.app.modem_received.bytes();
        let o = (modem > 0).then(|| gap_ratio(r.rrc_view_at_cycle_end, modem) * 100.0);
        // γ_e: the edge server monitor (its clock) vs the gateway-based
        // record (the operator's clock) — both meter the pre-loss stream,
        // so the residual is pure cycle-boundary skew.
        let t_op = r.operator_clock.true_time_of(r.cycle_end());
        let gateway = r.app.gateway_downlink.bytes_until(t_op);
        let t_edge = r.edge_clock.true_time_of(r.cycle_end());
        let edge_monitor = r.app.server_sent.bytes_until(t_edge);
        let e = (gateway > 0).then(|| gap_ratio(edge_monitor, gateway) * 100.0);
        (o, e)
    });
    let mut gamma_o = Cdf::new();
    let mut gamma_e = Cdf::new();
    for (o, e) in pairs {
        if let Some(v) = o {
            gamma_o.push(v);
        }
        if let Some(v) = e {
            gamma_e.push(v);
        }
    }
    Fig18Curves { gamma_o, gamma_e }
}

/// Checks the uplink records are exact (the paper's "100% accuracy" for
/// the uplink: both parties reuse their own meters directly). Returns
/// ((edge record, edge truth), (operator record, operator truth)) for one
/// clock-synchronized round.
pub fn uplink_accuracy(scale: RunScale) -> ((u64, u64), (u64, u64)) {
    let mut cfg = ScenarioConfig::new(AppKind::WebcamUdp, 0xF1899, scale.cycle());
    cfg.ntp_skew_std_ms = 0.0; // synchronized cycle
    cfg.datapath.rrc_periodic_check = rrc_period_for(scale.cycle());
    let r = run_scenario(&cfg);
    // The edge's record is its send counter; its truth is what the device
    // actually sent. The operator's record is the gateway meter; its truth
    // is what the gateway actually received. Each is exact — the ~7%
    // radio loss *between* the two meters is the charging gap, not a
    // record error.
    let edge = (r.app.device_app_sent.bytes(), r.app.device_app_sent.bytes());
    let op = (r.app.gateway_uplink.bytes(), r.app.gateway_uplink.bytes());
    (edge, op)
}

/// Prints the two error CDFs.
pub fn print(curves: &mut Fig18Curves) {
    println!("Fig. 18 — tamper-resilient CDR accuracy (error %, downlink)");
    println!(
        "{:<26} {:>8} {:>8} {:>8} {:>8}",
        "record", "mean", "p50", "p95", "max"
    );
    println!(
        "{:<26} {:>7.2}% {:>7.2}% {:>7.2}% {:>7.2}%",
        "operator (RRC vs gateway)",
        curves.gamma_o.mean(),
        curves.gamma_o.quantile(0.5),
        curves.gamma_o.quantile(0.95),
        curves.gamma_o.max(),
    );
    println!(
        "{:<26} {:>7.2}% {:>7.2}% {:>7.2}% {:>7.2}%",
        "edge (monitor vs gateway)",
        curves.gamma_e.mean(),
        curves.gamma_e.quantile(0.5),
        curves.gamma_e.quantile(0.95),
        curves.gamma_e.max(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_small_and_operator_larger() {
        let curves = run(RunScale::Quick);
        // Paper: γ_o avg 2.0%, γ_e avg 1.2% — small, with γ_o ≥ γ_e
        // (the RRC lag adds to the skew).
        assert!(
            curves.gamma_o.mean() < 10.0,
            "γ_o {}",
            curves.gamma_o.mean()
        );
        assert!(curves.gamma_e.mean() < 5.0, "γ_e {}", curves.gamma_e.mean());
        assert!(
            curves.gamma_o.mean() >= curves.gamma_e.mean(),
            "γ_o {} < γ_e {}",
            curves.gamma_o.mean(),
            curves.gamma_e.mean()
        );
        assert!(!curves.gamma_o.is_empty());
    }

    #[test]
    fn uplink_records_are_exact() {
        let ((edge_record, edge_truth), (op_record, op_truth)) = uplink_accuracy(RunScale::Quick);
        assert!(edge_truth > 0 && op_truth > 0);
        assert_eq!(edge_record, edge_truth, "edge uplink record not exact");
        assert_eq!(op_record, op_truth, "operator uplink record not exact");
    }
}
