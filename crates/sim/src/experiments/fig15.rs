//! Fig. 15 — TLC-optimal's gap reduction under different data plans `c`.
//!
//! µ = (Δ_legacy − Δ_TLC)/Δ_legacy, as a CDF across experiment rounds,
//! for c ∈ {0, 0.25, 0.5, 0.75, 1}. Smaller c (less charging weight on
//! lost data) leaves legacy with larger gaps, so TLC reduces more; at
//! c = 1 the legacy downlink billing *is* the plan-intended charge and
//! the remaining reduction comes from measurement differences only.

use super::sweep::{sweep_over, SweepSample};
use super::RunScale;
use crate::metrics::Cdf;
use crate::scenario::AppKind;
use tlc_core::legacy::gap_reduction;
use tlc_core::plan::LossWeight;

/// The plan weights of the figure.
pub const C_VALUES: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// One curve: the reduction distribution at a plan weight.
pub struct Fig15Curve {
    /// Plan weight c.
    pub c: f64,
    /// Distribution of µ across rounds.
    pub cdf: Cdf,
}

/// Regenerates the figure. Uses downlink apps (where legacy billing sits
/// before the loss, the paper's dominant case) across congestion levels.
pub fn run(scale: RunScale) -> Vec<Fig15Curve> {
    let samples = sweep_over(
        scale,
        &[AppKind::Vr, AppKind::Gaming],
        super::sweep::background_levels(scale),
    );
    from_samples(&samples)
}

/// Re-prices precomputed samples at each plan weight.
pub fn from_samples(samples: &[SweepSample]) -> Vec<Fig15Curve> {
    C_VALUES
        .iter()
        .map(|&c| {
            let w = LossWeight::from_f64(c);
            let mut cdf = Cdf::new();
            for s in samples {
                let cmp = s.reprice(w);
                let legacy_gap = cmp.gap(cmp.legacy.charge);
                let tlc_gap = cmp.gap(cmp.tlc_optimal.charge);
                // At c = 1 the legacy downlink bill *is* the plan-intended
                // charge (the paper: "TLC is the same as the honest legacy
                // 4G/5G"); reduction is only meaningful when legacy has a
                // material gap to reduce.
                if legacy_gap as f64 > cmp.intended as f64 * 0.002 {
                    cdf.push(gap_reduction(legacy_gap, tlc_gap) * 100.0);
                }
            }
            Fig15Curve { c, cdf }
        })
        .collect()
}

/// Prints each curve's quantiles.
pub fn print(curves: &mut [Fig15Curve]) {
    println!("Fig. 15 — TLC-optimal gap reduction µ (%) by plan weight c");
    println!(
        "{:>5} {:>8} {:>8} {:>8} {:>8}",
        "c", "p25", "p50", "p75", "mean"
    );
    for cu in curves.iter_mut() {
        println!(
            "{:>5.2} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            cu.c,
            cu.cdf.quantile(0.25),
            cu.cdf.quantile(0.50),
            cu.cdf.quantile(0.75),
            cu.cdf.mean(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::sweep::sweep_over;

    #[test]
    fn smaller_c_means_more_reduction() {
        let samples = sweep_over(RunScale::Quick, &[AppKind::Vr], &[150.0]);
        let curves = from_samples(&samples);
        let mean = |c: f64| curves.iter().find(|cu| cu.c == c).unwrap().cdf.mean();
        // Downlink: legacy gap = (1−c)·loss, so reduction shrinks as c→1.
        assert!(
            mean(0.0) >= mean(0.75),
            "c=0 mean {} !>= c=0.75 mean {}",
            mean(0.0),
            mean(0.75)
        );
    }

    #[test]
    fn reductions_are_mostly_positive() {
        let samples = sweep_over(RunScale::Quick, &[AppKind::Vr], &[120.0]);
        let curves = from_samples(&samples);
        for cu in &curves {
            if cu.c < 1.0 && !cu.cdf.is_empty() {
                assert!(
                    cu.cdf.mean() > 0.0,
                    "c={}: mean reduction {}",
                    cu.c,
                    cu.cdf.mean()
                );
            }
        }
    }
}
