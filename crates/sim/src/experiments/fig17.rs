//! Fig. 17 — Proof-of-Charging cost: negotiation time, verification time,
//! message sizes, and verifier throughput.
//!
//! The crypto cost is measured for real on this host (RSA-1024 PKCS#1
//! signing/verification from `tlc-crypto`), then projected onto the
//! paper's devices via their crypto-speed factors; the network half of
//! the negotiation time is the simulated device↔core round trip (the
//! paper attributes 54.9% of negotiation to crypto, 45.1% to the RTT).

use super::devices::{DeviceProfile, ALL_DEVICES, EDGE_DEVICES, Z840};
use serde::Serialize;
use std::time::Instant;
use tlc_core::messages::NONCE_LEN;
use tlc_core::plan::DataPlan;
use tlc_core::protocol::{run_negotiation, Endpoint, ProtocolError};
use tlc_core::strategy::{Knowledge, OptimalStrategy, Role};
use tlc_core::verify::service::VerifierService;
use tlc_core::verify::{verify_poc, verify_poc_batch};
use tlc_crypto::KeyPair;

/// Proofs per timed batch in the batched-verification measurement —
/// large enough to fill the widest signature kernel several times over.
pub const BATCH_MEASURE_SIZE: usize = 32;

/// Message-size table (the bottom of Fig. 17).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct MessageSizes {
    /// Legacy binary LTE CDR (from the paper, for comparison).
    pub legacy_cdr: usize,
    /// TLC CDR on the wire.
    pub tlc_cdr: usize,
    /// TLC CDA on the wire.
    pub tlc_cda: usize,
    /// TLC PoC on the wire.
    pub tlc_poc: usize,
    /// Whole negotiation: CDR + CDA + PoC.
    pub total: usize,
}

/// Timing results for one device.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Fig17Row {
    /// Device name.
    pub device: &'static str,
    /// Estimated PoC negotiation time, ms (crypto scaled + simulated RTT).
    pub negotiation_ms: f64,
    /// Estimated PoC verification time, ms.
    pub verification_ms: f64,
}

/// Full figure output.
#[derive(Clone, Debug, Serialize)]
pub struct Fig17Report {
    /// Per-device timings.
    pub rows: Vec<Fig17Row>,
    /// Wire sizes.
    pub sizes: MessageSizes,
    /// Host-measured crypto time for one full negotiation's signatures, ms.
    pub host_crypto_ms: f64,
    /// Host-measured single PoC verification, ms.
    pub host_verify_ms: f64,
    /// Host-measured per-PoC verification inside a signature batch
    /// ([`verify_poc_batch`] at [`BATCH_MEASURE_SIZE`] proofs), ms.
    pub host_verify_batched_ms: f64,
    /// PoC verifications per hour on this host (the paper: 230K/hr on
    /// a Z840).
    pub verifications_per_hour: f64,
    /// Batched counterpart of `verifications_per_hour`.
    pub batched_verifications_per_hour: f64,
    /// Worker threads used by the sharded verification service run.
    pub service_workers: usize,
    /// Signature-batch size the service flushes at.
    pub service_batch_size: usize,
    /// Batch throughput through [`VerifierService`] (submit → drain),
    /// including queueing and result collection — the deployable-path
    /// counterpart of `verifications_per_hour`.
    pub service_pocs_per_hour: f64,
}

/// One complete negotiation, returning the artifacts and wall-clock time.
///
/// Propagates [`ProtocolError`] instead of panicking: a non-converging
/// negotiation (misconfigured strategies, exhausted rounds) surfaces as an
/// error the caller can report.
fn negotiate_once(
    edge: &KeyPair,
    op: &KeyPair,
    seed: u8,
) -> Result<(tlc_core::messages::PocMsg, f64), ProtocolError> {
    let plan = DataPlan::paper_default();
    let mut e = Endpoint::new(
        Role::Edge,
        plan,
        Knowledge {
            role: Role::Edge,
            own_truth: 1_000_000,
            inferred_peer_truth: 900_000,
        },
        Box::new(OptimalStrategy),
        edge.private.clone(),
        op.public.clone(),
        [seed; NONCE_LEN],
        16,
    );
    let mut o = Endpoint::new(
        Role::Operator,
        plan,
        Knowledge {
            role: Role::Operator,
            own_truth: 900_000,
            inferred_peer_truth: 1_000_000,
        },
        Box::new(OptimalStrategy),
        op.private.clone(),
        edge.public.clone(),
        [seed ^ 0xFF; NONCE_LEN],
        16,
    );
    let t0 = Instant::now();
    let (poc, _) = run_negotiation(&mut o, &mut e)?;
    Ok((poc, t0.elapsed().as_secs_f64() * 1e3))
}

/// Runs the measurement. `reps` controls how many timed repetitions to
/// average (the paper negotiates per experiment round).
///
/// Errors if any negotiation fails to converge rather than panicking.
pub fn run(reps: usize) -> Result<Fig17Report, ProtocolError> {
    let edge = KeyPair::generate_for_seed(1024, 0xF17E).expect("keygen");
    let op = KeyPair::generate_for_seed(1024, 0xF170).expect("keygen");
    let plan = DataPlan::paper_default();

    // Warm-up + timed negotiations on this host. Every proof carries a
    // distinct nonce pair, so the batch below survives replay filtering.
    let mut crypto_ms = 0.0;
    let mut pocs = Vec::with_capacity(reps.max(1));
    for i in 0..reps.max(1) {
        let (p, ms) = negotiate_once(&edge, &op, i as u8)?;
        crypto_ms += ms;
        pocs.push(p);
    }
    let host_crypto_ms = crypto_ms / reps.max(1) as f64;
    let poc = pocs.last().expect("at least one negotiation ran").clone();

    // Timed verifications.
    let t0 = Instant::now();
    for _ in 0..reps.max(1) {
        verify_poc(&poc, &plan, &edge.public, &op.public).expect("valid PoC verifies");
    }
    let host_verify_ms = t0.elapsed().as_secs_f64() * 1e3 / reps.max(1) as f64;

    // Timed batched verification: the same crypto work pushed through
    // the batch entry point at a kernel-filling size. Signature checks
    // are stateless, so cycling the negotiated proofs is equivalent to a
    // stream of distinct submissions.
    let batch_refs: Vec<&tlc_core::messages::PocMsg> = (0..BATCH_MEASURE_SIZE)
        .map(|i| &pocs[i % pocs.len()])
        .collect();
    let t0 = Instant::now();
    let batched = verify_poc_batch(&batch_refs, &plan, &edge.public, &op.public);
    let host_verify_batched_ms = t0.elapsed().as_secs_f64() * 1e3 / BATCH_MEASURE_SIZE as f64;
    debug_assert!(batched.iter().all(|r| r.is_ok()));

    // Deployable path: the same proofs batched through the sharded
    // verification service (§5.3.4), measured submit → drain.
    let service_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut svc = VerifierService::new(service_workers);
    let svc_config = svc.config();
    let rel = svc
        .register(plan, edge.public.clone(), op.public.clone())
        .unwrap();
    svc.submit_batch(rel, pocs.iter().cloned()).unwrap();
    let results = svc.collect_results().unwrap();
    debug_assert!(results.iter().all(|r| r.result.is_ok()));
    let service_report = svc.finish();

    // Simulated device<->core RTT contribution (Fig. 16a's datapath).
    let rtt_of = |d: &DeviceProfile| {
        let samples = super::fig16::ping_rtt_ms(d, 20, false, 0xF17);
        samples.iter().sum::<f64>() / samples.len().max(1) as f64
    };

    let mut rows: Vec<Fig17Row> = EDGE_DEVICES
        .iter()
        .map(|d| Fig17Row {
            device: d.name,
            // Crypto scaled by the device factor plus 1.5 negotiation RTTs
            // (CDR -> CDA -> PoC is three one-way trips).
            negotiation_ms: host_crypto_ms * d.crypto_factor + rtt_of(d) * 1.5,
            verification_ms: host_verify_ms * d.crypto_factor,
        })
        .collect();
    rows.push(Fig17Row {
        device: Z840.name,
        negotiation_ms: host_crypto_ms + 1.0, // server-local negotiation
        verification_ms: host_verify_ms,
    });

    let sizes = measure_sizes(&poc);
    Ok(Fig17Report {
        rows,
        sizes,
        host_crypto_ms,
        host_verify_ms,
        host_verify_batched_ms,
        verifications_per_hour: 3600.0 * 1e3 / host_verify_ms.max(1e-9),
        batched_verifications_per_hour: 3600.0 * 1e3 / host_verify_batched_ms.max(1e-9),
        service_workers,
        service_batch_size: svc_config.batch_size,
        service_pocs_per_hour: service_report.pocs_per_hour,
    })
}

fn measure_sizes(poc: &tlc_core::messages::PocMsg) -> MessageSizes {
    let tlc_poc = poc.encode().len();
    let tlc_cda = poc.cda.encode().len();
    let tlc_cdr = poc.cda.peer_cdr.encode().len();
    MessageSizes {
        legacy_cdr: tlc_cell::cdr::LEGACY_CDR_WIRE_BYTES,
        tlc_cdr,
        tlc_cda,
        tlc_poc,
        total: tlc_cdr + tlc_cda + tlc_poc,
    }
}

/// Prints the figure's tables.
pub fn print(r: &Fig17Report) {
    println!("Fig. 17 — Proof-of-Charging cost (TLC-optimal)");
    println!(
        "{:<12} {:>16} {:>17}",
        "device", "negotiation ms", "verification ms"
    );
    for row in &r.rows {
        println!(
            "{:<12} {:>16.2} {:>17.3}",
            row.device, row.negotiation_ms, row.verification_ms
        );
    }
    println!(
        "sizes: legacy CDR {} B | TLC CDR {} B | CDA {} B | PoC {} B | total {} B / 3 msgs",
        r.sizes.legacy_cdr, r.sizes.tlc_cdr, r.sizes.tlc_cda, r.sizes.tlc_poc, r.sizes.total
    );
    println!(
        "host: negotiation crypto {:.2} ms, verification {:.3} ms -> {:.0} PoC verifications/hour",
        r.host_crypto_ms, r.host_verify_ms, r.verifications_per_hour
    );
    println!(
        "host batched (x{}): {:.3} ms/PoC -> {:.0} PoC verifications/hour ({:.2}x single)",
        BATCH_MEASURE_SIZE,
        r.host_verify_batched_ms,
        r.batched_verifications_per_hour,
        r.host_verify_ms / r.host_verify_batched_ms.max(1e-9),
    );
    println!(
        "sharded service ({} workers, batch {}): {:.0} PoCs/hour submit->drain",
        r.service_workers, r.service_batch_size, r.service_pocs_per_hour
    );
    let _ = ALL_DEVICES;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shape_and_scaling() {
        let r = run(2).expect("optimal pair converges");
        assert_eq!(r.rows.len(), 4);
        // Device ordering by crypto factor: Z840 fastest verification.
        let verify = |name: &str| {
            r.rows
                .iter()
                .find(|x| x.device == name)
                .unwrap()
                .verification_ms
        };
        assert!(verify("Z840") <= verify("EL20"));
        assert!(verify("EL20") < verify("Pixel 2XL"));
        assert!(r.host_crypto_ms > 0.0);
        assert!(
            r.verifications_per_hour > 100_000.0,
            "{}",
            r.verifications_per_hour
        );
        assert!(r.service_workers >= 1);
        assert!(r.service_batch_size >= 1);
        assert!(r.service_pocs_per_hour > 0.0, "{}", r.service_pocs_per_hour);
        assert!(r.host_verify_batched_ms > 0.0);
        assert!(
            r.batched_verifications_per_hour > 100_000.0,
            "{}",
            r.batched_verifications_per_hour
        );
    }

    #[test]
    fn sizes_match_paper_scale() {
        let r = run(1).expect("optimal pair converges");
        // Paper: 199 / 398 / 796 / 1393 bytes. Our leaner binary framing
        // lands below but within 2x on every row, preserving the ratios.
        assert!(
            (150..=220).contains(&r.sizes.tlc_cdr),
            "CDR {}",
            r.sizes.tlc_cdr
        );
        assert!(
            (300..=440).contains(&r.sizes.tlc_cda),
            "CDA {}",
            r.sizes.tlc_cda
        );
        assert!(
            (500..=900).contains(&r.sizes.tlc_poc),
            "PoC {}",
            r.sizes.tlc_poc
        );
        assert!(r.sizes.tlc_cda > r.sizes.tlc_cdr);
        assert!(r.sizes.tlc_poc > r.sizes.tlc_cda);
        assert_eq!(r.sizes.legacy_cdr, 34);
    }
}
