//! Extension: three-party roaming settlement at twin scale
//! (DESIGN §14).
//!
//! Runs the roaming-enabled digital twin over a small scenario pack —
//! a home-only baseline, mid-cycle operator handovers, bonded
//! dual-link devices, and a congested visited network — and reports
//! the numbers a settlement auditor would check: how the charged
//! volume divides across home operator / visited operator / edge
//! vendor, the conservation residual (must be exactly zero), and the
//! same legacy-vs-TLC gap closure the two-party figures report.

use super::RunScale;
use crate::twin::{run_twin, NullSink, RoamingTwinConfig, TwinConfig, TwinReport};
use crate::wheel::WheelBackend;
use serde::Serialize;
use tlc_net::time::SimDuration;

/// One roaming scenario's outcome.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct RoamingRow {
    /// Scenario name.
    pub scenario: &'static str,
    /// Cycles settled through the three-party agreement.
    pub cycles: u64,
    /// Operator (home↔visited) handovers executed.
    pub operator_handovers: u64,
    /// Bonded cycles reconciled from per-link CDRs.
    pub bonded_cycles: u64,
    /// Total charged volume, bytes.
    pub charged: u64,
    /// Home operator's share of the charged volume.
    pub home_share: f64,
    /// Visited operator's share of the charged volume.
    pub visited_share: f64,
    /// Edge vendor's share of the charged volume.
    pub vendor_share: f64,
    /// `|home + visited + vendor − charged|` — conservation demands 0.
    pub conservation_residual: u64,
    /// Aggregate legacy gap ratio ε.
    pub legacy_ratio: f64,
    /// Aggregate TLC gap ratio ε.
    pub tlc_ratio: f64,
}

fn row(scenario: &'static str, r: &TwinReport) -> RoamingRow {
    let charged = r.roaming.charged;
    let share = |part: u64| {
        if charged == 0 {
            0.0
        } else {
            part as f64 / charged as f64
        }
    };
    let split_total = r
        .roaming
        .home
        .saturating_add(r.roaming.visited)
        .saturating_add(r.roaming.vendor);
    RoamingRow {
        scenario,
        cycles: r.roaming.cycles_settled,
        operator_handovers: r.roaming.operator_handovers,
        bonded_cycles: r.roaming.bonded_cycles,
        charged,
        home_share: share(r.roaming.home),
        visited_share: share(r.roaming.visited),
        vendor_share: share(r.roaming.vendor),
        conservation_residual: split_total.abs_diff(charged),
        legacy_ratio: r.sweep.legacy_gap_ratio(),
        tlc_ratio: r.sweep.tlc_gap_ratio(),
    }
}

fn base_config(scale: RunScale, seed: u64) -> TwinConfig {
    let mut cfg = TwinConfig::smoke(seed);
    cfg.roaming = Some(RoamingTwinConfig::paper_default());
    // Honor the CI matrix knobs the twin experiment honors: scheduler
    // backend (TLC_TWIN_SCHED) and worker threads (TLC_TWIN_THREADS).
    // Neither may change a single settled byte — the conformance
    // suite pins the digest across both axes.
    cfg.backend = WheelBackend::from_env();
    if let Ok(t) = std::env::var("TLC_TWIN_THREADS") {
        if let Ok(t) = t.parse::<usize>() {
            cfg.threads = t.clamp(1, 64);
        }
    }
    match scale {
        RunScale::Quick => {
            cfg.initial_sessions = 400;
            cfg.duration = SimDuration::from_secs(8);
        }
        RunScale::Full => {
            cfg.initial_sessions = 10_000;
            cfg.shards = 8;
            cfg.duration = SimDuration::from_secs(30);
        }
    }
    cfg
}

fn with_roaming(cfg: &mut TwinConfig, f: impl FnOnce(&mut RoamingTwinConfig)) {
    if let Some(rc) = cfg.roaming.as_mut() {
        f(rc);
    }
}

/// The scenario pack.
pub fn run(scale: RunScale) -> Vec<RoamingRow> {
    let seed = 0x4F_4D;
    let mut out = Vec::with_capacity(4);

    // Home-only baseline: nobody roams, so the visited operator must
    // earn exactly zero and the split is a pure vendor/home carve.
    let mut home_only = base_config(scale, seed);
    with_roaming(&mut home_only, |rc| {
        rc.roamer_fraction = 0.0;
        rc.bonded_fraction = 0.0;
    });
    out.push(row("home-only", &run_twin(&home_only, &mut NullSink)));

    // Every device roams and hands over mid-cycle.
    let mut handover = base_config(scale, seed + 1);
    with_roaming(&mut handover, |rc| {
        rc.roamer_fraction = 1.0;
        rc.bonded_fraction = 0.0;
        rc.operator_handover_gap = SimDuration::from_millis(900);
    });
    out.push(row(
        "mid-cycle-handover",
        &run_twin(&handover, &mut NullSink),
    ));

    // Bonded dual-link devices (half of them roaming too).
    let mut bonded = base_config(scale, seed + 2);
    with_roaming(&mut bonded, |rc| {
        rc.roamer_fraction = 0.5;
        rc.bonded_fraction = 1.0;
    });
    out.push(row("bonded-dual-link", &run_twin(&bonded, &mut NullSink)));

    // Roamers on a congested (lossy) visited network: the cell
    // capacity cap forces congestion loss, widening the legacy gap
    // that TLC then closes.
    let mut lossy = base_config(scale, seed + 3);
    lossy.cell_capacity_bytes_per_epoch = (lossy.initial_sessions as u64) * 40_000;
    with_roaming(&mut lossy, |rc| {
        rc.roamer_fraction = 1.0;
        rc.operator_handover_gap = SimDuration::from_millis(1_200);
    });
    out.push(row("visited-lossy", &run_twin(&lossy, &mut NullSink)));

    out
}

/// Prints the scenario pack in the evaluation's figure style.
pub fn print(rows: &[RoamingRow]) {
    println!("Extension — three-party roaming settlement (gap closure and split conservation)");
    println!(
        "{:>20} {:>8} {:>8} {:>8} {:>14} {:>7} {:>8} {:>7} {:>6} {:>9} {:>8}",
        "scenario",
        "cycles",
        "op-HOs",
        "bonded",
        "charged B",
        "home",
        "visited",
        "vendor",
        "resid",
        "legacy ε",
        "TLC ε"
    );
    for r in rows {
        println!(
            "{:>20} {:>8} {:>8} {:>8} {:>14} {:>6.1}% {:>7.1}% {:>6.1}% {:>6} {:>8.2}% {:>7.3}%",
            r.scenario,
            r.cycles,
            r.operator_handovers,
            r.bonded_cycles,
            r.charged,
            r.home_share * 100.0,
            r.visited_share * 100.0,
            r.vendor_share * 100.0,
            r.conservation_residual,
            r.legacy_ratio * 100.0,
            r.tlc_ratio * 100.0,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_pack_conserves_and_closes_the_gap() {
        let rows = run(RunScale::Quick);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.cycles > 0, "{}: no cycles settled", r.scenario);
            assert_eq!(
                r.conservation_residual, 0,
                "{}: split leaked {} bytes",
                r.scenario, r.conservation_residual
            );
            assert!(
                r.tlc_ratio <= r.legacy_ratio,
                "{}: TLC ε {} must not exceed legacy ε {}",
                r.scenario,
                r.tlc_ratio,
                r.legacy_ratio
            );
        }
        let by_name = |n: &str| rows.iter().find(|r| r.scenario == n).copied();
        let home_only = by_name("home-only").expect("home-only row");
        assert_eq!(home_only.visited_share, 0.0, "nobody roamed");
        assert_eq!(home_only.operator_handovers, 0);
        let handover = by_name("mid-cycle-handover").expect("handover row");
        assert!(handover.operator_handovers > 0);
        assert!(handover.visited_share > 0.0);
        let bonded = by_name("bonded-dual-link").expect("bonded row");
        assert!(bonded.bonded_cycles > 0);
        let lossy = by_name("visited-lossy").expect("lossy row");
        assert!(
            lossy.legacy_ratio > home_only.legacy_ratio,
            "congestion must widen the legacy gap: {} !> {}",
            lossy.legacy_ratio,
            home_only.legacy_ratio
        );
    }
}
