//! The paper's device fleet (Fig. 11b) as performance profiles.
//!
//! Fig. 16a and Fig. 17 break results down by hardware: an HPE EL20 IoT
//! gateway, a Google Pixel 2 XL, a Samsung S7 Edge, and the HP Z840
//! workstation hosting the LTE core + edge server. We model each as a
//! processing-latency constant (for RTT) and a crypto-speed factor
//! relative to the workstation (for PoC negotiation/verification cost),
//! both derived from the paper's published numbers.

/// A device's performance profile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceProfile {
    /// Device name as in the paper.
    pub name: &'static str,
    /// Extra per-RTT processing latency (device stack + modem), ms.
    pub processing_ms: f64,
    /// RSA cost multiplier relative to the Z840 workstation
    /// (from Fig. 17's verification times: 23.2/75.6/58.3 vs 15.7 ms).
    pub crypto_factor: f64,
}

/// HPE EL20 IoT gateway.
pub const EL20: DeviceProfile = DeviceProfile {
    name: "EL20",
    processing_ms: 12.0,
    crypto_factor: 23.2 / 15.7,
};

/// Google Pixel 2 XL.
pub const PIXEL_2XL: DeviceProfile = DeviceProfile {
    name: "Pixel 2XL",
    processing_ms: 22.0,
    crypto_factor: 75.6 / 15.7,
};

/// Samsung Galaxy S7 Edge.
pub const S7_EDGE: DeviceProfile = DeviceProfile {
    name: "S7 Edge",
    processing_ms: 32.0,
    crypto_factor: 58.3 / 15.7,
};

/// HP Z840 workstation (LTE core + edge server + public verifier).
pub const Z840: DeviceProfile = DeviceProfile {
    name: "Z840",
    processing_ms: 0.5,
    crypto_factor: 1.0,
};

/// The edge devices of Fig. 16a / Fig. 17, in the paper's order.
pub const EDGE_DEVICES: [DeviceProfile; 3] = [EL20, PIXEL_2XL, S7_EDGE];

/// All verifier hosts of Fig. 17's verification plot.
pub const ALL_DEVICES: [DeviceProfile; 4] = [EL20, PIXEL_2XL, S7_EDGE, Z840];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crypto_factors_ordered_like_paper() {
        // Z840 fastest; Pixel slowest (per Fig. 17's verification times).
        let ordered = [&Z840, &EL20, &S7_EDGE, &PIXEL_2XL];
        for pair in ordered.windows(2) {
            assert!(
                pair[0].crypto_factor < pair[1].crypto_factor,
                "{} should be faster than {}",
                pair[0].name,
                pair[1].name
            );
        }
    }

    #[test]
    fn device_lists_consistent() {
        assert_eq!(EDGE_DEVICES.len(), 3);
        assert_eq!(ALL_DEVICES.len(), 4);
        assert!(ALL_DEVICES.iter().any(|d| d.name == "Z840"));
    }
}
