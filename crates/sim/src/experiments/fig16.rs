//! Fig. 16 — TLC's impact on data latency.
//!
//! (a) Round-trip time with and without TLC, per device: TLC runs only at
//! the end of the charging cycle and adds no per-packet processing, so
//! in-cycle RTT is unchanged (the "with TLC" run literally executes the
//! same datapath; differences are sampling noise).
//!
//! (b) Negotiation rounds after the cycle: TLC-optimal converges in one
//! round (Theorem 4); TLC-random needs a few.

use super::devices::{DeviceProfile, EDGE_DEVICES};
use super::sweep::{congestion_sweep, SweepSample};
use super::RunScale;

use serde::Serialize;
use tlc_cell::datapath::{Datapath, DatapathConfig};
use tlc_net::packet::{Direction, FlowId, Packet, PacketIdAlloc, Qci};
use tlc_net::radio::RadioTimeline;
use tlc_net::rng::SimRng;
use tlc_net::time::{SimDuration, SimTime};

/// One device's RTT distribution with/without TLC.
#[derive(Clone, Debug, Serialize)]
pub struct Fig16aRow {
    /// Device name.
    pub device: &'static str,
    /// Mean RTT without TLC, ms.
    pub rtt_without_ms: f64,
    /// Mean RTT with TLC, ms.
    pub rtt_with_ms: f64,
}

/// One application's mean negotiation rounds per strategy.
#[derive(Clone, Debug, Serialize)]
pub struct Fig16bRow {
    /// Application name.
    pub app: &'static str,
    /// Mean rounds for TLC-random.
    pub random_rounds: f64,
    /// Mean rounds for TLC-optimal.
    pub optimal_rounds: f64,
}

/// The ping flow used for RTT probing.
const PING_FLOW: FlowId = FlowId(7);

/// Measures in-simulation ping RTT through the datapath for one device,
/// `n` rounds. `with_tlc` selects the (identical) TLC-enabled datapath —
/// kept as a parameter to make the "no in-cycle difference" claim an
/// executable statement rather than an assumption.
pub fn ping_rtt_ms(device: &DeviceProfile, n: usize, with_tlc: bool, seed: u64) -> Vec<f64> {
    let duration = SimDuration::from_secs((n as u64 / 4).max(30));
    let radio = RadioTimeline::constant(duration, -85.0);
    let mut dp = Datapath::new(DatapathConfig::default(), radio, SimRng::new(seed));
    dp.mark_probe(PING_FLOW);
    // TLC's in-cycle footprint is empty: nothing to install on the
    // datapath. The negotiation runs after the cycle (see fig16b).
    let _ = with_tlc;
    let mut alloc = PacketIdAlloc::new();
    let mut rng = SimRng::new(seed ^ 0x9999);
    let mut rtts = Vec::with_capacity(n);
    let mut t = SimTime::from_millis(10);
    for _ in 0..n {
        // Echo request up, echo reply down (64-byte ICMP-sized).
        let up = Packet::new(
            alloc.next_id(),
            PING_FLOW,
            Direction::Uplink,
            64,
            Qci::DEFAULT,
            t,
        );
        dp.send_uplink(t, up);
        let t2 = t + SimDuration::from_millis(15);
        let down = Packet::new(
            alloc.next_id(),
            PING_FLOW,
            Direction::Downlink,
            64,
            Qci::DEFAULT,
            t2,
        );
        dp.send_downlink(t2, down);
        t += SimDuration::from_millis(200);
    }
    // Drain.
    let mut now = t;
    while let Some(next) = dp.next_event_time(now) {
        if next > t + SimDuration::from_secs(5) {
            break;
        }
        now = next;
        dp.poll(now);
    }
    // Pair consecutive (UL, DL) one-way delays into RTTs, adding the
    // device's processing constant and per-ping OS jitter.
    let delays = dp.probe_delays();
    for pair in delays.chunks(2) {
        if let [a, b] = pair {
            let one_way = (a.1 - a.0).as_secs_f64() + (b.1 - b.0).as_secs_f64();
            let jitter = rng.normal(0.0, 1.5).abs();
            rtts.push(one_way * 1e3 + device.processing_ms + jitter);
        }
    }
    rtts
}

/// Regenerates Fig. 16a.
pub fn run_rtt(scale: RunScale) -> Vec<Fig16aRow> {
    let n = match scale {
        RunScale::Quick => 50,
        RunScale::Full => 200, // the paper pings 200 rounds per device
    };
    EDGE_DEVICES
        .iter()
        .map(|d| {
            let without: Vec<f64> = ping_rtt_ms(d, n, false, 0x1611);
            let with: Vec<f64> = ping_rtt_ms(d, n, true, 0x1612);
            Fig16aRow {
                device: d.name,
                rtt_without_ms: mean(&without),
                rtt_with_ms: mean(&with),
            }
        })
        .collect()
}

/// Regenerates Fig. 16b from a congestion sweep.
pub fn run_rounds(scale: RunScale) -> Vec<Fig16bRow> {
    rounds_from_samples(&congestion_sweep(scale))
}

/// Computes Fig. 16b rows from precomputed samples.
pub fn rounds_from_samples(samples: &[SweepSample]) -> Vec<Fig16bRow> {
    let mut rows = Vec::new();
    let mut apps: Vec<_> = samples.iter().map(|s| s.app).collect();
    apps.dedup();
    apps.sort_by_key(|a| a.name());
    apps.dedup();
    for app in apps {
        let mine: Vec<_> = samples.iter().filter(|s| s.app == app).collect();
        let n = mine.len().max(1) as f64;
        rows.push(Fig16bRow {
            app: app.name(),
            random_rounds: mine
                .iter()
                .map(|s| s.comparison.tlc_random.rounds as f64)
                .sum::<f64>()
                / n,
            optimal_rounds: mine
                .iter()
                .map(|s| s.comparison.tlc_optimal.rounds as f64)
                .sum::<f64>()
                / n,
        });
    }
    rows
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

/// Prints both subfigures.
pub fn print(rtt: &[Fig16aRow], rounds: &[Fig16bRow]) {
    println!("Fig. 16a — RTT within the charging cycle (ms)");
    println!("{:<12} {:>10} {:>10}", "device", "w/o TLC", "w/ TLC");
    for r in rtt {
        println!(
            "{:<12} {:>10.1} {:>10.1}",
            r.device, r.rtt_without_ms, r.rtt_with_ms
        );
    }
    println!("Fig. 16b — negotiation rounds after the cycle");
    println!("{:<18} {:>12} {:>12}", "app", "TLC-random", "TLC-optimal");
    for r in rounds {
        println!(
            "{:<18} {:>12.1} {:>12.1}",
            r.app, r.random_rounds, r.optimal_rounds
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::sweep::sweep_over;
    use crate::scenario::{AppKind, APP_FLOW, BG_FLOW};

    #[test]
    fn tlc_does_not_change_rtt() {
        let rows = run_rtt(RunScale::Quick);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            let diff = (r.rtt_with_ms - r.rtt_without_ms).abs();
            // Same datapath, different noise seeds: within a ms or two.
            assert!(diff < 3.0, "{}: diff {diff} ms", r.device);
            assert!(r.rtt_without_ms > 10.0, "{}: implausibly low RTT", r.device);
        }
    }

    #[test]
    fn devices_have_distinct_rtt() {
        let rows = run_rtt(RunScale::Quick);
        // Fig. 16a: EL20 < Pixel < S7 (processing constants dominate).
        assert!(rows[0].rtt_without_ms < rows[1].rtt_without_ms);
        assert!(rows[1].rtt_without_ms < rows[2].rtt_without_ms);
    }

    #[test]
    fn optimal_rounds_near_one_random_more() {
        let samples = sweep_over(RunScale::Quick, &[AppKind::WebcamUdp], &[0.0, 140.0]);
        let rows = rounds_from_samples(&samples);
        let row = &rows[0];
        assert!(row.optimal_rounds <= 2.0, "optimal {}", row.optimal_rounds);
        assert!(
            row.random_rounds >= row.optimal_rounds,
            "random {} < optimal {}",
            row.random_rounds,
            row.optimal_rounds
        );
    }

    // The APP_FLOW/BG_FLOW constants are part of this module's contract
    // with the scenario driver; the ping flow must not collide.
    #[test]
    fn ping_flow_distinct_from_scenario_flows() {
        assert_ne!(PING_FLOW, APP_FLOW);
        assert_ne!(PING_FLOW, BG_FLOW);
    }
}
