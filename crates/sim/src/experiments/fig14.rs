//! Fig. 14 — gap ratio vs intermittent disconnectivity ratio η.
//!
//! UDP-based WebCam streaming under η ∈ [5%, 15%] with ~1.93 s mean
//! outages: the legacy gap grows with η while TLC holds its small
//! residual, so "TLC reduces more gaps with heavier intermittent
//! connectivity levels".

use super::fig12::{Scheme, SCHEMES};
use super::sweep::rrc_period_for;
use super::RunScale;
use crate::measure::{compare_schemes, cycle_records};
use crate::scenario::{run_scenario, AppKind, RadioSpec, ScenarioConfig};
use serde::Serialize;
use tlc_core::plan::DataPlan;

/// One point: mean gap ratio at a disconnectivity level.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Fig14Row {
    /// Target η (%).
    pub eta_pct: f64,
    /// Realised mean η (%).
    pub realised_eta_pct: f64,
    /// Scheme label.
    pub scheme: &'static str,
    /// Mean gap ratio ε.
    pub gap_ratio: f64,
}

/// The η sweep of the figure.
pub fn eta_levels(scale: RunScale) -> Vec<f64> {
    match scale {
        RunScale::Quick => vec![0.05, 0.10, 0.15],
        RunScale::Full => (5..=15).map(|p| p as f64 / 100.0).collect(),
    }
}

/// Regenerates the figure. The η levels fan out across the sweep thread
/// pool; each level's rounds stay sequential, so its three rows are
/// byte-identical to the single-threaded runner's.
pub fn run(scale: RunScale) -> Vec<Fig14Row> {
    let plan = DataPlan::paper_default();
    let levels = eta_levels(scale);
    let per_level = crate::par::par_map(&levels, |&eta| {
        let mut realised = 0.0;
        let mut sums = [0.0f64; 3];
        // Short cycles need more repetitions for the realised η to
        // concentrate (each 60 s cycle sees only a handful of outages).
        let rounds = match scale {
            RunScale::Quick => scale.rounds() * 3,
            RunScale::Full => scale.rounds(),
        };
        for round in 0..rounds {
            let mut cfg = ScenarioConfig::new(
                AppKind::WebcamUdp,
                0xF1614 + round * 733 + (eta * 1000.0) as u64,
                scale.cycle(),
            )
            .with_radio(RadioSpec::Intermittent { eta });
            cfg.datapath.rrc_periodic_check = rrc_period_for(scale.cycle());
            let r = run_scenario(&cfg);
            realised += r.eta;
            let records = cycle_records(&r);
            let cmp = compare_schemes(&records, &plan, cfg.seed).expect("pricing converges");
            for (i, scheme) in SCHEMES.iter().enumerate() {
                let charge = match scheme {
                    Scheme::Legacy => cmp.legacy.charge,
                    Scheme::TlcRandom => cmp.tlc_random.charge,
                    Scheme::TlcOptimal => cmp.tlc_optimal.charge,
                };
                sums[i] += cmp.gap_ratio(charge);
            }
        }
        let mut rows = Vec::with_capacity(SCHEMES.len());
        for (i, scheme) in SCHEMES.iter().enumerate() {
            rows.push(Fig14Row {
                eta_pct: eta * 100.0,
                realised_eta_pct: realised / rounds as f64 * 100.0,
                scheme: scheme.name(),
                gap_ratio: sums[i] / rounds as f64,
            });
        }
        rows
    });
    per_level.into_iter().flatten().collect()
}

/// Prints the figure's series.
pub fn print(rows: &[Fig14Row]) {
    println!("Fig. 14 — gap ratio vs intermittent disconnectivity η (UDP WebCam)");
    println!(
        "{:>7} {:>10} {:<14} {:>9}",
        "η tgt %", "η real %", "scheme", "ratio %"
    );
    for r in rows {
        println!(
            "{:>7.0} {:>10.1} {:<14} {:>8.2}%",
            r.eta_pct,
            r.realised_eta_pct,
            r.scheme,
            r.gap_ratio * 100.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_grows_with_eta_and_tlc_wins() {
        let rows = run(RunScale::Quick);
        let pick = |scheme: &str, eta: f64| {
            rows.iter()
                .find(|r| r.scheme == scheme && (r.eta_pct - eta).abs() < 0.1)
                .unwrap()
                .gap_ratio
        };
        assert!(
            pick("Legacy 4G/5G", 15.0) > pick("Legacy 4G/5G", 5.0),
            "legacy must grow with η"
        );
        for eta in [5.0, 10.0, 15.0] {
            assert!(
                pick("TLC-optimal", eta) <= pick("Legacy 4G/5G", eta),
                "TLC must not exceed legacy at η={eta}"
            );
        }
    }

    #[test]
    fn realised_eta_tracks_target() {
        let rows = run(RunScale::Quick);
        for r in rows {
            assert!(
                (r.realised_eta_pct - r.eta_pct).abs() < 7.0,
                "target {} realised {}",
                r.eta_pct,
                r.realised_eta_pct
            );
        }
    }
}
