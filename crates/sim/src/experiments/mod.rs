//! One module per table/figure of the paper's evaluation (§7).
//!
//! Each experiment exposes a `run(scale) -> rows` function returning
//! serializable rows matching the paper's reported series, plus a
//! formatter that prints them in the paper's shape. `RunScale` trades
//! fidelity for time: `Full` matches the paper (1-hour cycles, full
//! sweeps); `Quick` shrinks cycles for CI and Criterion benches.

use tlc_net::time::SimDuration;

pub mod ablation;
pub mod dataset;
pub mod devices;
pub mod fig03;
pub mod fig04;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod generic;
pub mod mobility;
pub mod roaming;
pub mod robustness;
pub mod strawman;
pub mod sweep;
pub mod table2;
pub mod twin;

/// How big to run an experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunScale {
    /// CI/bench scale: short cycles, few repetitions.
    Quick,
    /// Paper scale: 1-hour cycles, full sweeps.
    Full,
}

impl RunScale {
    /// The charging-cycle length for this scale.
    pub fn cycle(&self) -> SimDuration {
        match self {
            RunScale::Quick => SimDuration::from_secs(60),
            RunScale::Full => SimDuration::from_secs(3600),
        }
    }

    /// Number of repeated rounds (seeds) per configuration.
    pub fn rounds(&self) -> u64 {
        match self {
            RunScale::Quick => 3,
            RunScale::Full => 20,
        }
    }
}
