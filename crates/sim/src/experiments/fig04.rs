//! Fig. 4 — the charging gap under intermittent connectivity, over time.
//!
//! "The data charging gap by the intermittent connection (downlink UDP
//! WebCam, no background traffic). The gray areas indicate no uplink and
//! downlink service." Three stacked time series over a 300 s run:
//! per-second delivery rate (edge device vs cellular network), cumulative
//! gap in MB, and RSS in dBm.

use super::RunScale;
use crate::scenario::{run_scenario, AppKind, RadioSpec, ScenarioConfig};
use serde::{Deserialize, Serialize};
use tlc_net::time::{SimDuration, SimTime};

/// One 1-second sample of the three stacked series.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Fig04Row {
    /// Seconds since the start.
    pub t_secs: u64,
    /// Rate metered by the cellular network (gateway ingress), Mbps.
    pub network_rate_mbps: f64,
    /// Rate seen by the edge device (modem deliveries), Mbps.
    pub device_rate_mbps: f64,
    /// Cumulative gap (network-metered − device-received), MB.
    pub cumulative_gap_mb: f64,
    /// Received signal strength, dBm.
    pub rss_dbm: f64,
    /// Whether the device had service this second.
    pub connected: bool,
}

/// Summary of the run (the paper quotes mean outage 1.93 s, 10.6 MB gap
/// in 300 s).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Fig04Summary {
    /// Realised disconnectivity ratio η.
    pub eta: f64,
    /// Mean outage duration in seconds.
    pub mean_outage_secs: f64,
    /// Final cumulative gap, MB.
    pub total_gap_mb: f64,
    /// Run length, seconds.
    pub duration_secs: u64,
}

/// Regenerates the figure: the UDP WebCam stream sent downlink through an
/// intermittent channel (the paper's exact Fig. 4 setup).
pub fn run(scale: RunScale) -> (Vec<Fig04Row>, Fig04Summary) {
    let duration = match scale {
        RunScale::Quick => SimDuration::from_secs(120),
        RunScale::Full => SimDuration::from_secs(300),
    };
    let mut cfg = ScenarioConfig::new(AppKind::WebcamUdpDownlink, 0xF1604, duration)
        .with_radio(RadioSpec::Intermittent { eta: 0.10 });
    cfg.datapath.rrc_periodic_check = SimDuration::from_secs(5);
    // Moderate base-station buffer: buffering partially absorbs outages
    // (the paper's gap dip at t=240 s) but overflows on longer ones.
    cfg.datapath.bs_buffer_bytes = 256 * 1024;
    let r = run_scenario(&cfg);

    // Reconstruct the same radio timeline for the RSS series (the builder
    // is deterministic in the split seed).
    let radio = crate::scenario::build_radio(
        cfg.radio,
        duration,
        &mut tlc_net::rng::SimRng::new(cfg.seed).split("radio"),
    );

    let secs = duration.as_micros() / 1_000_000;
    let mut rows = Vec::with_capacity(secs as usize);
    let mut cum_network = 0u64;
    let mut cum_device = 0u64;
    for s in 0..secs {
        let start = SimTime::from_secs(s);
        let end = SimTime::from_secs(s + 1);
        let net =
            r.app.gateway_downlink.bytes_until(end) - r.app.gateway_downlink.bytes_until(start);
        let dev = r.app.modem_received.bytes_until(end) - r.app.modem_received.bytes_until(start);
        cum_network += net;
        cum_device += dev;
        let mid = SimTime::from_millis(s * 1000 + 500);
        rows.push(Fig04Row {
            t_secs: s,
            network_rate_mbps: net as f64 * 8.0 / 1e6,
            device_rate_mbps: dev as f64 * 8.0 / 1e6,
            cumulative_gap_mb: (cum_network.saturating_sub(cum_device)) as f64 / 1e6,
            rss_dbm: radio.rss_at(mid),
            connected: radio.connected_at(mid),
        });
    }
    let summary = Fig04Summary {
        eta: r.eta,
        mean_outage_secs: r.mean_outage_secs,
        total_gap_mb: rows.last().map(|x| x.cumulative_gap_mb).unwrap_or(0.0),
        duration_secs: secs,
    };
    (rows, summary)
}

/// Prints the three stacked series (downsampled) plus the summary.
pub fn print(rows: &[Fig04Row], summary: &Fig04Summary) {
    println!("Fig. 4 — intermittent-connectivity gap timeline");
    println!(
        "{:>5} {:>10} {:>10} {:>9} {:>8} {:>5}",
        "t(s)", "net Mbps", "dev Mbps", "gap MB", "RSS", "svc"
    );
    for r in rows.iter().step_by(10) {
        println!(
            "{:>5} {:>10.2} {:>10.2} {:>9.2} {:>8.1} {:>5}",
            r.t_secs,
            r.network_rate_mbps,
            r.device_rate_mbps,
            r.cumulative_gap_mb,
            r.rss_dbm,
            if r.connected { "yes" } else { "-" }
        );
    }
    println!(
        "summary: eta={:.1}% mean_outage={:.2}s total_gap={:.1}MB over {}s",
        summary.eta * 100.0,
        summary.mean_outage_secs,
        summary.total_gap_mb,
        summary.duration_secs
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outages_visible_and_gap_accumulates() {
        let (rows, summary) = run(RunScale::Quick);
        assert!(!rows.is_empty());
        // Some seconds have no service.
        assert!(rows.iter().any(|r| !r.connected));
        assert!(rows.iter().any(|r| r.connected));
        // The gap grows over the run.
        assert!(summary.total_gap_mb > 0.0);
        // Cumulative gap is non-decreasing except for buffer drain effects;
        // overall trend: final >= any early value minus drain slack.
        let early = rows[rows.len() / 4].cumulative_gap_mb;
        assert!(summary.total_gap_mb >= early * 0.5);
        assert!(summary.eta > 0.03, "eta {}", summary.eta);
        assert!(summary.mean_outage_secs > 0.3);
    }

    #[test]
    fn rss_drops_during_outage_seconds() {
        let (rows, _) = run(RunScale::Quick);
        for r in &rows {
            if !r.connected {
                assert!(r.rss_dbm < tlc_net::radio::NO_SERVICE_THRESHOLD_DBM);
            }
        }
    }

    #[test]
    fn device_rate_dips_when_disconnected() {
        let (rows, _) = run(RunScale::Quick);
        // Average device rate during outage seconds must be well below
        // the average during connected seconds.
        let (mut out_sum, mut out_n, mut in_sum, mut in_n) = (0.0, 0u32, 0.0, 0u32);
        for r in &rows {
            if r.connected {
                in_sum += r.device_rate_mbps;
                in_n += 1;
            } else {
                out_sum += r.device_rate_mbps;
                out_n += 1;
            }
        }
        if out_n > 0 && in_n > 0 {
            let out_avg = out_sum / out_n as f64;
            let in_avg = in_sum / in_n as f64;
            assert!(
                out_avg < in_avg,
                "outage avg {out_avg} !< service avg {in_avg}"
            );
        }
    }
}
