//! Fig. 12 — CDFs of the per-hour charging gap for each application under
//! legacy 4G/5G, TLC-random, and TLC-optimal (c = 0.5).

use super::sweep::{congestion_sweep, SweepSample};
use super::RunScale;
use crate::metrics::{bytes_to_mb_per_hr, Cdf};
use crate::scenario::{AppKind, ALL_APPS};

/// The three schemes compared throughout §7.1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scheme {
    /// Honest legacy 4G/5G (gateway CDR billing).
    Legacy,
    /// TLC with random-selfish parties.
    TlcRandom,
    /// TLC with rational (optimal) parties.
    TlcOptimal,
}

/// All schemes, in the paper's legend order.
pub const SCHEMES: [Scheme; 3] = [Scheme::Legacy, Scheme::TlcRandom, Scheme::TlcOptimal];

impl Scheme {
    /// Legend label.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Legacy => "Legacy 4G/5G",
            Scheme::TlcRandom => "TLC-random",
            Scheme::TlcOptimal => "TLC-optimal",
        }
    }

    /// This scheme's charge in a sample.
    pub fn charge(&self, s: &SweepSample) -> u64 {
        match self {
            Scheme::Legacy => s.comparison.legacy.charge,
            Scheme::TlcRandom => s.comparison.tlc_random.charge,
            Scheme::TlcOptimal => s.comparison.tlc_optimal.charge,
        }
    }

    /// This scheme's gap (MB/hr) in a sample.
    pub fn gap_mb_per_hr(&self, s: &SweepSample) -> f64 {
        bytes_to_mb_per_hr(s.comparison.gap(self.charge(s)), s.cycle_secs)
    }
}

/// One (app, scheme) CDF of gap/hr.
pub struct Fig12Curve {
    /// Application.
    pub app: AppKind,
    /// Scheme.
    pub scheme: Scheme,
    /// Distribution of gap MB/hr across rounds and congestion levels.
    pub cdf: Cdf,
}

/// Regenerates the figure from a congestion sweep.
pub fn run(scale: RunScale) -> Vec<Fig12Curve> {
    from_samples(&congestion_sweep(scale))
}

/// Builds the curves from precomputed sweep samples.
pub fn from_samples(samples: &[SweepSample]) -> Vec<Fig12Curve> {
    let mut out = Vec::new();
    for app in ALL_APPS {
        for scheme in SCHEMES {
            let mut cdf = Cdf::new();
            for s in samples.iter().filter(|s| s.app == app) {
                cdf.push(scheme.gap_mb_per_hr(s));
            }
            out.push(Fig12Curve { app, scheme, cdf });
        }
    }
    out
}

/// Prints per-curve quantiles in the paper's subfigure order.
pub fn print(curves: &mut [Fig12Curve]) {
    println!("Fig. 12 — charging-gap/hr CDFs (c = 0.5)");
    println!(
        "{:<18} {:<14} {:>9} {:>9} {:>9} {:>9}",
        "app", "scheme", "p25 MB", "p50 MB", "p75 MB", "p95 MB"
    );
    for c in curves.iter_mut() {
        println!(
            "{:<18} {:<14} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            c.app.name(),
            c.scheme.name(),
            c.cdf.quantile(0.25),
            c.cdf.quantile(0.50),
            c.cdf.quantile(0.75),
            c.cdf.quantile(0.95),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::sweep::sweep_over;

    #[test]
    fn tlc_optimal_dominates_legacy() {
        // One congested configuration per app family is enough to see the
        // ordering the figure shows.
        let samples = sweep_over(
            RunScale::Quick,
            &[AppKind::WebcamUdp, AppKind::Vr],
            &[150.0],
        );
        let curves = from_samples(&samples);
        for app in [AppKind::WebcamUdp, AppKind::Vr] {
            let mean = |scheme: Scheme| {
                curves
                    .iter()
                    .find(|c| c.app == app && c.scheme == scheme)
                    .unwrap()
                    .cdf
                    .mean()
            };
            assert!(
                mean(Scheme::TlcOptimal) < mean(Scheme::Legacy),
                "{app:?}: optimal {} !< legacy {}",
                mean(Scheme::TlcOptimal),
                mean(Scheme::Legacy)
            );
        }
    }

    #[test]
    fn curves_cover_all_apps_and_schemes() {
        let samples = sweep_over(RunScale::Quick, &[AppKind::Gaming], &[0.0]);
        let curves = from_samples(&samples);
        assert_eq!(curves.len(), ALL_APPS.len() * SCHEMES.len());
        // Apps not in the sample set have empty CDFs; Gaming has data.
        let gaming_legacy = curves
            .iter()
            .find(|c| c.app == AppKind::Gaming && c.scheme == Scheme::Legacy)
            .unwrap();
        assert!(!gaming_legacy.cdf.is_empty());
    }
}
