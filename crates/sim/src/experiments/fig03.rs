//! Fig. 3 — the raw charging gap under various congestion levels.
//!
//! "The data charging gap in various congestion levels (RSS ≥ −95 dBm,
//! iperf UDP background traffic)." The y-axis is the per-hour gap between
//! the operator's gateway meter and the edge's endpoint meter — i.e. the
//! loss volume — for WebCam (RTSP, UL), WebCam (UDP, UL), and VRidge
//! (GVSP, DL), at background loads of 0–160 Mbps.

use super::sweep::run_one;
use super::RunScale;
use crate::metrics::bytes_to_mb_per_hr;
use crate::scenario::AppKind;
use serde::Serialize;
use tlc_core::plan::DataPlan;

/// Applications shown in Fig. 3.
pub const FIG03_APPS: [AppKind; 3] = [AppKind::WebcamRtsp, AppKind::WebcamUdp, AppKind::Vr];

/// One point of the figure.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Fig03Row {
    /// Application name.
    pub app: &'static str,
    /// Background traffic, Mbps.
    pub background_mbps: f64,
    /// Mean raw gap (loss volume), MB per hour.
    pub gap_mb_per_hr: f64,
    /// Mean gap as a fraction of the edge-side volume.
    pub gap_fraction: f64,
}

/// Regenerates the figure's series. The (app, background) cells fan out
/// across the sweep thread pool; each cell's rounds stay sequential, so
/// every row is byte-identical to the single-threaded runner's.
pub fn run(scale: RunScale) -> Vec<Fig03Row> {
    let plan = DataPlan::paper_default();
    let mut cells = Vec::new();
    for app in FIG03_APPS {
        for &bg in super::sweep::background_levels(scale) {
            cells.push((app, bg));
        }
    }
    crate::par::par_map(&cells, |&(app, bg)| {
        let mut gap_mb = 0.0;
        let mut frac = 0.0;
        let rounds = scale.rounds();
        for round in 0..rounds {
            let s = run_one(
                app,
                bg,
                0xF1603 + round * 977 + bg as u64,
                scale.cycle(),
                &plan,
            );
            let loss = s.records.truth.edge - s.records.truth.operator;
            gap_mb += bytes_to_mb_per_hr(loss, s.cycle_secs);
            frac += loss as f64 / s.records.truth.edge.max(1) as f64;
        }
        Fig03Row {
            app: app.name(),
            background_mbps: bg,
            gap_mb_per_hr: gap_mb / rounds as f64,
            gap_fraction: frac / rounds as f64,
        }
    })
}

/// Prints the series in the paper's layout.
pub fn print(rows: &[Fig03Row]) {
    println!("Fig. 3 — charging gap/hr (MB) vs background traffic (Mbps)");
    println!(
        "{:<18} {:>8} {:>14} {:>8}",
        "app", "bg Mbps", "gap MB/hr", "gap %"
    );
    for r in rows {
        println!(
            "{:<18} {:>8.0} {:>14.2} {:>7.1}%",
            r.app,
            r.background_mbps,
            r.gap_mb_per_hr,
            r.gap_fraction * 100.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_grows_with_congestion() {
        let rows = run(RunScale::Quick);
        // For each app: gap at the top background level exceeds gap at 0.
        for app in FIG03_APPS {
            let series: Vec<_> = rows.iter().filter(|r| r.app == app.name()).collect();
            let at0 = series
                .iter()
                .find(|r| r.background_mbps == 0.0)
                .expect("bg=0 present");
            let at_max = series
                .iter()
                .max_by(|a, b| a.background_mbps.total_cmp(&b.background_mbps))
                .expect("nonempty");
            assert!(
                at_max.gap_mb_per_hr > at0.gap_mb_per_hr,
                "{}: {} !> {}",
                app.name(),
                at_max.gap_mb_per_hr,
                at0.gap_mb_per_hr
            );
        }
    }

    #[test]
    fn baseline_gap_is_small_in_good_radio() {
        let rows = run(RunScale::Quick);
        for r in rows.iter().filter(|r| r.background_mbps == 0.0) {
            // Paper: ~7-8% loss fraction in good radio; ours is residual
            // air loss only, well under 10%.
            assert!(r.gap_fraction < 0.10, "{}: {}", r.app, r.gap_fraction);
        }
    }
}
