//! Ablation: scheduler discipline vs congestion gap.
//!
//! DESIGN.md flags our biggest known deviation from the testbed: under a
//! shared drop-tail queue, a thin flow shares fate with an iperf flood,
//! overstating the congestion gap relative to an eNodeB's
//! proportional-fair scheduler. This ablation quantifies the choice by
//! running the same congested cycles under both disciplines:
//!
//! * **FIFO/drop-tail** (the default, worst case for the thin flow),
//! * **DRR per-flow fair queueing** (`tlc_net::fair`, the PF-like case).
//!
//! The paper's qualitative claims must hold under *both* — TLC's
//! negotiated charge tracks x̂ regardless of how much the cell loses.

use super::sweep::rrc_period_for;
use super::RunScale;
use crate::measure::{compare_schemes, cycle_records};
use crate::scenario::{run_scenario, AppKind, ScenarioConfig};
use serde::Serialize;
use tlc_core::plan::DataPlan;

/// One ablation cell.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct AblationRow {
    /// Application.
    pub app: &'static str,
    /// Background load, Mbps.
    pub background_mbps: f64,
    /// Scheduler under test.
    pub scheduler: &'static str,
    /// The app's raw loss fraction (the congestion gap's source).
    pub loss_fraction: f64,
    /// Legacy 4G/5G gap ratio ε.
    pub legacy_ratio: f64,
    /// TLC-optimal gap ratio ε.
    pub tlc_ratio: f64,
}

/// Runs the ablation for the two uplink webcams and VR under load.
pub fn run(scale: RunScale) -> Vec<AblationRow> {
    let plan = DataPlan::paper_default();
    let mut rows = Vec::new();
    for app in [AppKind::WebcamUdp, AppKind::Vr] {
        for bg in [120.0, 160.0] {
            for fair in [false, true] {
                let mut cfg =
                    ScenarioConfig::new(app, 0xAB1A + bg as u64, scale.cycle()).with_background(bg);
                if fair {
                    cfg = cfg.with_fair_queueing();
                }
                cfg.datapath.rrc_periodic_check = rrc_period_for(scale.cycle());
                let r = run_scenario(&cfg);
                let records = cycle_records(&r);
                let cmp = compare_schemes(&records, &plan, cfg.seed).expect("pricing");
                let loss = (records.truth.edge - records.truth.operator) as f64
                    / records.truth.edge.max(1) as f64;
                rows.push(AblationRow {
                    app: app.name(),
                    background_mbps: bg,
                    scheduler: if fair { "DRR fair" } else { "FIFO drop-tail" },
                    loss_fraction: loss,
                    legacy_ratio: cmp.gap_ratio(cmp.legacy.charge),
                    tlc_ratio: cmp.gap_ratio(cmp.tlc_optimal.charge),
                });
            }
        }
    }
    rows
}

/// Prints the ablation table.
pub fn print(rows: &[AblationRow]) {
    println!("Ablation — scheduler discipline vs congestion gap");
    println!(
        "{:<18} {:>8} {:<15} {:>8} {:>10} {:>9}",
        "app", "bg Mbps", "scheduler", "loss %", "legacy ε", "TLC ε"
    );
    for r in rows {
        println!(
            "{:<18} {:>8.0} {:<15} {:>7.1}% {:>9.2}% {:>8.3}%",
            r.app,
            r.background_mbps,
            r.scheduler,
            r.loss_fraction * 100.0,
            r.legacy_ratio * 100.0,
            r.tlc_ratio * 100.0,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_queueing_softens_congestion_loss() {
        let rows = run(RunScale::Quick);
        for app in ["WebCam (UDP)", "VRidge (GVSP)"] {
            for bg in [120.0, 160.0] {
                let get = |sched: &str| {
                    rows.iter()
                        .find(|r| r.app == app && r.background_mbps == bg && r.scheduler == sched)
                        .unwrap()
                };
                let fifo = get("FIFO drop-tail");
                let fair = get("DRR fair");
                assert!(
                    fair.loss_fraction < fifo.loss_fraction,
                    "{app}@{bg}: fair {} !< fifo {}",
                    fair.loss_fraction,
                    fifo.loss_fraction
                );
            }
        }
    }

    #[test]
    fn tlc_tracks_intended_under_both_schedulers() {
        // The paper's claim must be scheduler-independent.
        for r in run(RunScale::Quick) {
            assert!(
                r.tlc_ratio < 0.02,
                "{} / {}: TLC ε {}",
                r.app,
                r.scheduler,
                r.tlc_ratio
            );
            assert!(r.tlc_ratio < r.legacy_ratio);
        }
    }
}
