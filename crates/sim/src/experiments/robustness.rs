//! Control-plane robustness — negotiation over a lossy signaling channel
//! (robustness extension of Fig. 16b).
//!
//! The paper evaluates negotiation rounds under *data-plane* loss; here we
//! subject the *control plane itself* to impairment. Honest/optimal pairs
//! negotiate through two [`FaultyChannel`]s (one per direction) while the
//! control-channel loss rate sweeps 0–30%, with fixed low rates of
//! duplication and reordering on top. Per loss point we report the
//! convergence rate (sessions ending in a PoC rather than the legacy
//! fallback), negotiation latency percentiles on the virtual clock, and
//! the retransmission overhead. Every session terminates: the session
//! layer's retry budget turns persistent loss into a deterministic
//! fallback, never a hang.

use super::RunScale;
use serde::Serialize;
use tlc_core::messages::NONCE_LEN;
use tlc_core::plan::DataPlan;
use tlc_core::protocol::Endpoint;
use tlc_core::session::{run_session_pair, Session, SessionConfig};
use tlc_core::strategy::{Knowledge, OptimalStrategy, Role};
use tlc_crypto::KeyPair;
use tlc_net::channel::{FaultSpec, FaultyChannel};
use tlc_net::loss::{NoLoss, UniformLoss};
use tlc_net::rng::SimRng;
use tlc_net::time::{SimDuration, SimTime};

/// Control-channel loss rates swept, in percent.
pub const LOSS_PCTS: [u32; 7] = [0, 5, 10, 15, 20, 25, 30];

/// Duplication probability applied at every loss point.
pub const DUPLICATE_P: f64 = 0.05;
/// Reordering probability applied at every loss point.
pub const REORDER_P: f64 = 0.05;

/// One loss point of the sweep.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct RobustnessRow {
    /// Control-channel loss rate, percent.
    pub loss_pct: u32,
    /// Sessions run at this point.
    pub sessions: u64,
    /// Sessions that converged to a PoC.
    pub converged: u64,
    /// Sessions that fell back to the legacy charge.
    pub fallbacks: u64,
    /// `converged / sessions`.
    pub convergence_rate: f64,
    /// Mean virtual-clock negotiation latency, ms.
    pub mean_latency_ms: f64,
    /// 95th-percentile latency, ms.
    pub p95_latency_ms: f64,
    /// Mean first-transmission frames per session.
    pub mean_frames: f64,
    /// Total retransmissions across all sessions at this point.
    pub retransmits: u64,
}

/// Runs one negotiation session over faulty channels and reports
/// `(converged, latency, frames, retransmits)`.
fn run_one(
    edge_keys: &KeyPair,
    op_keys: &KeyPair,
    loss: f64,
    spec: &FaultSpec,
    seed: u64,
    nonce_tag: u64,
) -> (bool, SimDuration, u64, u64) {
    let plan = DataPlan::paper_default();
    let mut nonce_e = [0u8; NONCE_LEN];
    let mut nonce_o = [0xFFu8; NONCE_LEN];
    nonce_e[..8].copy_from_slice(&nonce_tag.to_be_bytes());
    nonce_o[..8].copy_from_slice(&nonce_tag.to_be_bytes());
    let edge = Endpoint::new(
        Role::Edge,
        plan,
        Knowledge {
            role: Role::Edge,
            own_truth: 1_000_000,
            inferred_peer_truth: 900_000,
        },
        Box::new(OptimalStrategy),
        edge_keys.private.clone(),
        op_keys.public.clone(),
        nonce_e,
        32,
    );
    let op = Endpoint::new(
        Role::Operator,
        plan,
        Knowledge {
            role: Role::Operator,
            own_truth: 900_000,
            inferred_peer_truth: 1_000_000,
        },
        Box::new(OptimalStrategy),
        op_keys.private.clone(),
        edge_keys.public.clone(),
        nonce_o,
        32,
    );
    let mut initiator = Session::new(op, SessionConfig::default());
    let mut responder = Session::new(edge, SessionConfig::default());
    let mut rng = SimRng::new(seed);
    let mk = |rng: &mut SimRng| -> FaultyChannel {
        let model: Box<dyn tlc_net::loss::LossModel> = if loss == 0.0 {
            Box::new(NoLoss)
        } else {
            Box::new(UniformLoss::new(loss))
        };
        FaultyChannel::new(spec.clone(), model, SimRng::new(rng.next_u64()))
    };
    let mut fwd = mk(&mut rng);
    let mut back = mk(&mut rng);
    let report = run_session_pair(
        &mut initiator,
        &mut responder,
        &mut fwd,
        &mut back,
        SimTime::from_millis(0),
        SimDuration::from_secs(120),
    )
    .expect("initiate cannot fail for a fresh optimal endpoint");
    (
        report.converged(),
        report.elapsed,
        report.frames_sent,
        report.retransmits,
    )
}

/// Runs the sweep: `scale` controls sessions per loss point
/// (Quick: 20, Full: 200). Loss points fan out across the sweep thread
/// pool; each point's sessions stay sequential with per-session seeds,
/// so every row is byte-identical to a single-threaded run.
pub fn run(scale: RunScale) -> Vec<RobustnessRow> {
    let sessions = match scale {
        RunScale::Quick => 20u64,
        RunScale::Full => 200u64,
    };
    let edge_keys = KeyPair::generate_for_seed(1024, 0x10B1).expect("keygen");
    let op_keys = KeyPair::generate_for_seed(1024, 0x10B2).expect("keygen");
    let spec = FaultSpec::with_faults(DUPLICATE_P, REORDER_P, 0.0);
    crate::par::par_map(&LOSS_PCTS, |&pct| {
        let loss = pct as f64 / 100.0;
        let mut latencies_ms = Vec::with_capacity(sessions as usize);
        let mut converged = 0u64;
        let mut frames = 0u64;
        let mut retransmits = 0u64;
        for i in 0..sessions {
            let seed = 0xC0DE_0000 + (pct as u64) * 10_000 + i;
            let (ok, elapsed, f, r) = run_one(&edge_keys, &op_keys, loss, &spec, seed, seed);
            if ok {
                converged += 1;
            }
            latencies_ms.push(elapsed.as_secs_f64() * 1e3);
            frames += f;
            retransmits += r;
        }
        latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mean = latencies_ms.iter().sum::<f64>() / sessions as f64;
        let p95_idx = ((sessions as f64 * 0.95).ceil() as usize).min(latencies_ms.len()) - 1;
        RobustnessRow {
            loss_pct: pct,
            sessions,
            converged,
            fallbacks: sessions - converged,
            convergence_rate: converged as f64 / sessions as f64,
            mean_latency_ms: mean,
            p95_latency_ms: latencies_ms[p95_idx],
            mean_frames: frames as f64 / sessions as f64,
            retransmits,
        }
    })
}

/// Prints the sweep as a table plus one JSON row per loss point.
pub fn print(rows: &[RobustnessRow]) {
    println!("Control-plane robustness — negotiation vs signaling loss");
    println!(
        "{:<9} {:>9} {:>10} {:>10} {:>14} {:>13} {:>12} {:>12}",
        "loss %",
        "sessions",
        "converged",
        "conv rate",
        "mean lat ms",
        "p95 lat ms",
        "frames",
        "retransmits"
    );
    for r in rows {
        println!(
            "{:<9} {:>9} {:>10} {:>10.3} {:>14.1} {:>13.1} {:>12.1} {:>12}",
            r.loss_pct,
            r.sessions,
            r.converged,
            r.convergence_rate,
            r.mean_latency_ms,
            r.p95_latency_ms,
            r.mean_frames,
            r.retransmits
        );
    }
    for r in rows {
        println!("{}", serde_json::to_string(r).expect("row serializes"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_point_always_converges_fast() {
        let rows = run(RunScale::Quick);
        assert_eq!(rows.len(), LOSS_PCTS.len());
        let clean = &rows[0];
        assert_eq!(clean.loss_pct, 0);
        assert_eq!(clean.convergence_rate, 1.0);
        assert!(clean.mean_latency_ms < 100.0, "{}", clean.mean_latency_ms);
        // Lossy points never beat the clean point on latency.
        for r in &rows[1..] {
            assert!(r.mean_latency_ms >= clean.mean_latency_ms - 1e-9);
            assert_eq!(r.sessions, r.converged + r.fallbacks);
        }
    }

    #[test]
    fn rows_serialize_to_json() {
        let row = RobustnessRow {
            loss_pct: 20,
            sessions: 10,
            converged: 9,
            fallbacks: 1,
            convergence_rate: 0.9,
            mean_latency_ms: 42.0,
            p95_latency_ms: 99.0,
            mean_frames: 3.4,
            retransmits: 7,
        };
        let json = serde_json::to_string(&row).unwrap();
        assert!(json.contains("\"loss_pct\":20"), "{json}");
        assert!(json.contains("\"convergence_rate\":0.9"), "{json}");
    }
}
