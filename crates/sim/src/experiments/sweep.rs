//! The shared congestion × application sweep behind Fig. 12, Table 2,
//! Fig. 13, and Fig. 16b.
//!
//! §7.1 runs every application under background loads of 0–160 Mbps and
//! repeats each configuration over many one-hour rounds; the charging
//! schemes are then priced on each round's records. One simulated round
//! here feeds *all* schemes (the negotiation operates on end-of-cycle
//! aggregates, so schemes never perturb the packet trace).

use super::RunScale;
use crate::measure::{compare_schemes, cycle_records, Comparison, CycleRecords};
use crate::scenario::{run_scenario, AppKind, ScenarioConfig, ALL_APPS};
use tlc_core::plan::{DataPlan, LossWeight};
use tlc_net::time::SimDuration;

/// One (app, background, seed) simulation round with its priced schemes.
pub struct SweepSample {
    /// Application under test.
    pub app: AppKind,
    /// Background load, Mbps.
    pub bg_mbps: f64,
    /// Seed of the round.
    pub seed: u64,
    /// Cycle length in seconds.
    pub cycle_secs: f64,
    /// Both parties' records and ground truth.
    pub records: CycleRecords,
    /// Priced schemes at the default plan (c = 0.5).
    pub comparison: Comparison,
    /// COUNTER CHECK messages exchanged during the cycle.
    pub counter_check_msgs: u64,
}

impl SweepSample {
    /// Re-prices this round under a different loss weight `c` — the
    /// records do not depend on the plan, so no re-simulation is needed
    /// (used by Fig. 15).
    pub fn reprice(&self, c: LossWeight) -> Comparison {
        let plan = DataPlan {
            loss_weight: c,
            ..DataPlan::paper_default()
        };
        compare_schemes(&self.records, &plan, self.seed).expect("pricing converges")
    }
}

/// The background levels of Fig. 3 / Fig. 13.
pub fn background_levels(scale: RunScale) -> &'static [f64] {
    match scale {
        RunScale::Quick => &[0.0, 120.0, 160.0],
        RunScale::Full => &[0.0, 100.0, 120.0, 140.0, 160.0],
    }
}

/// Runs the full congestion sweep at the given scale.
pub fn congestion_sweep(scale: RunScale) -> Vec<SweepSample> {
    sweep_over(scale, &ALL_APPS, background_levels(scale))
}

/// The (app, background, seed) cross product of a sweep, in the
/// canonical (sequential) order. Seeds are a pure function of the point,
/// so the parallel and sequential runners price identical rounds.
pub fn sweep_points(scale: RunScale, apps: &[AppKind], bgs: &[f64]) -> Vec<(AppKind, f64, u64)> {
    let mut points = Vec::with_capacity(apps.len() * bgs.len() * scale.rounds() as usize);
    for &app in apps {
        for &bg in bgs {
            for round in 0..scale.rounds() {
                points.push((app, bg, seed_for(app, bg, round)));
            }
        }
    }
    points
}

/// Runs a sweep over chosen apps and background levels, fanning the
/// points across a scoped thread pool ([`crate::par::par_map`]). Results
/// come back in canonical point order, so the output is byte-identical
/// to [`sweep_over_sequential`] for the same inputs.
pub fn sweep_over(scale: RunScale, apps: &[AppKind], bgs: &[f64]) -> Vec<SweepSample> {
    let plan = DataPlan::paper_default();
    let points = sweep_points(scale, apps, bgs);
    crate::par::par_map(&points, |&(app, bg, seed)| {
        run_one(app, bg, seed, scale.cycle(), &plan)
    })
}

/// The sequential twin of [`sweep_over`]: same points, same seeds, same
/// order, one thread. Kept for determinism audits and profiling.
pub fn sweep_over_sequential(scale: RunScale, apps: &[AppKind], bgs: &[f64]) -> Vec<SweepSample> {
    let plan = DataPlan::paper_default();
    sweep_points(scale, apps, bgs)
        .into_iter()
        .map(|(app, bg, seed)| run_one(app, bg, seed, scale.cycle(), &plan))
        .collect()
}

/// Runs a single sweep round.
pub fn run_one(
    app: AppKind,
    bg_mbps: f64,
    seed: u64,
    cycle: SimDuration,
    plan: &DataPlan,
) -> SweepSample {
    let mut cfg = ScenarioConfig::new(app, seed, cycle).with_background(bg_mbps);
    // Keep the RRC record reasonably fresh relative to short cycles.
    cfg.datapath.rrc_periodic_check = rrc_period_for(cycle);
    let r = run_scenario(&cfg);
    let records = cycle_records(&r);
    let comparison = compare_schemes(&records, plan, seed).expect("pricing converges");
    SweepSample {
        app,
        bg_mbps,
        seed,
        cycle_secs: cycle.as_secs_f64(),
        records,
        comparison,
        counter_check_msgs: r.counter_check_msgs,
    }
}

/// The periodic COUNTER CHECK interval: the paper-scale 30 s for hour
/// cycles, proportionally less for shortened test cycles so the RRC
/// record keeps the same relative freshness (~1% of the cycle).
pub fn rrc_period_for(cycle: SimDuration) -> SimDuration {
    let secs = (cycle.as_secs_f64() / 120.0).clamp(0.5, 30.0);
    SimDuration::from_secs_f64(secs)
}

fn seed_for(app: AppKind, bg: f64, round: u64) -> u64 {
    let app_ix = ALL_APPS.iter().position(|a| *a == app).unwrap_or(7) as u64;
    0x51EE_D000 + app_ix * 1000 + bg as u64 * 3 + round * 131
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_round_prices_all_schemes() {
        let s = run_one(
            AppKind::WebcamUdp,
            120.0,
            42,
            SimDuration::from_secs(20),
            &DataPlan::paper_default(),
        );
        assert!(s.records.truth.edge > 0);
        assert!(s.comparison.intended > 0);
        assert!(s.comparison.tlc_optimal.charge > 0);
    }

    #[test]
    fn reprice_changes_with_c() {
        let s = run_one(
            AppKind::Vr,
            150.0,
            43,
            SimDuration::from_secs(20),
            &DataPlan::paper_default(),
        );
        let c0 = s.reprice(LossWeight::ZERO);
        let c1 = s.reprice(LossWeight::ONE);
        // With loss present, intended charge grows with c.
        assert!(c1.intended > c0.intended);
    }

    #[test]
    fn rrc_period_scales_with_cycle() {
        assert_eq!(
            rrc_period_for(SimDuration::from_secs(3600)),
            SimDuration::from_secs(30)
        );
        assert!(rrc_period_for(SimDuration::from_secs(30)) < SimDuration::from_secs(1));
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_sequential() {
        // Force real multi-threading (the host may report 1 CPU) and
        // check the parallel runner reproduces the sequential twin
        // exactly, down to the serialized experiment JSON.
        let apps = [AppKind::Gaming];
        let bgs = [150.0];
        let plan = DataPlan::paper_default();
        let points = sweep_points(RunScale::Quick, &apps, &bgs);
        let par = crate::par::par_map_threads(3, &points, |&(app, bg, seed)| {
            run_one(app, bg, seed, RunScale::Quick.cycle(), &plan)
        });
        let seq = sweep_over_sequential(RunScale::Quick, &apps, &bgs);
        assert_eq!(par.len(), seq.len());
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.app, s.app);
            assert_eq!(p.seed, s.seed);
            assert_eq!(p.counter_check_msgs, s.counter_check_msgs);
            assert_eq!(format!("{:?}", p.records), format!("{:?}", s.records));
            assert_eq!(format!("{:?}", p.comparison), format!("{:?}", s.comparison));
        }
        let rows_par = crate::experiments::fig13::from_samples(&par);
        let rows_seq = crate::experiments::fig13::from_samples(&seq);
        assert_eq!(
            serde_json::to_string(&rows_par).unwrap(),
            serde_json::to_string(&rows_seq).unwrap(),
            "experiment JSON must be byte-identical"
        );
    }

    #[test]
    fn seeds_are_distinct_across_rounds() {
        let a = seed_for(AppKind::Vr, 100.0, 0);
        let b = seed_for(AppKind::Vr, 100.0, 1);
        let c = seed_for(AppKind::Gaming, 100.0, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
