//! Table 2 — average charging gap per application and scheme (c = 0.5).
//!
//! Columns: average bitrate (Mbps), then Δ = |x − x̂| in MB/hr and
//! ε = Δ/x̂ for legacy 4G/5G, TLC-optimal, and TLC-random.

use super::fig12::{Scheme, SCHEMES};
use super::sweep::{congestion_sweep, SweepSample};
use super::RunScale;
use crate::metrics::bytes_to_mb_per_hr;
use crate::scenario::ALL_APPS;
use serde::Serialize;

/// One scheme's averaged cell of the table.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct SchemeCell {
    /// Mean absolute gap Δ, MB/hr.
    pub delta_mb_per_hr: f64,
    /// Mean relative gap ratio ε.
    pub epsilon: f64,
}

/// One application row of the table.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Table2Row {
    /// Application name.
    pub app: &'static str,
    /// Mean observed bitrate, Mbps.
    pub bitrate_mbps: f64,
    /// Honest legacy 4G/5G.
    pub legacy: SchemeCell,
    /// TLC-optimal.
    pub tlc_optimal: SchemeCell,
    /// TLC-random.
    pub tlc_random: SchemeCell,
}

/// Regenerates the table from a congestion sweep.
pub fn run(scale: RunScale) -> Vec<Table2Row> {
    from_samples(&congestion_sweep(scale))
}

/// Builds the table rows from precomputed samples.
pub fn from_samples(samples: &[SweepSample]) -> Vec<Table2Row> {
    ALL_APPS
        .iter()
        .map(|&app| {
            let mine: Vec<&SweepSample> = samples.iter().filter(|s| s.app == app).collect();
            let n = mine.len().max(1) as f64;
            let bitrate = mine
                .iter()
                .map(|s| s.records.truth.edge as f64 * 8.0 / 1e6 / s.cycle_secs)
                .sum::<f64>()
                / n;
            let cell = |scheme: Scheme| {
                let delta = mine
                    .iter()
                    .map(|s| bytes_to_mb_per_hr(s.comparison.gap(scheme.charge(s)), s.cycle_secs))
                    .sum::<f64>()
                    / n;
                let eps = mine
                    .iter()
                    .map(|s| s.comparison.gap_ratio(scheme.charge(s)))
                    .sum::<f64>()
                    / n;
                SchemeCell {
                    delta_mb_per_hr: delta,
                    epsilon: eps,
                }
            };
            Table2Row {
                app: app.name(),
                bitrate_mbps: bitrate,
                legacy: cell(Scheme::Legacy),
                tlc_optimal: cell(Scheme::TlcOptimal),
                tlc_random: cell(Scheme::TlcRandom),
            }
        })
        .collect()
}

/// Prints the table in the paper's layout.
pub fn print(rows: &[Table2Row]) {
    println!("Table 2 — average charging gap (c = 0.5)");
    println!(
        "{:<18} {:>8} | {:>10} {:>7} | {:>10} {:>7} | {:>10} {:>7}",
        "app", "Mbps", "legacy Δ", "ε", "opt Δ", "ε", "rand Δ", "ε"
    );
    for r in rows {
        println!(
            "{:<18} {:>8.2} | {:>10.2} {:>6.1}% | {:>10.2} {:>6.1}% | {:>10.2} {:>6.1}%",
            r.app,
            r.bitrate_mbps,
            r.legacy.delta_mb_per_hr,
            r.legacy.epsilon * 100.0,
            r.tlc_optimal.delta_mb_per_hr,
            r.tlc_optimal.epsilon * 100.0,
            r.tlc_random.delta_mb_per_hr,
            r.tlc_random.epsilon * 100.0,
        );
    }
    let _ = SCHEMES; // table columns are exactly the schemes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::sweep::sweep_over;
    use crate::scenario::AppKind;

    #[test]
    fn bitrates_match_paper_order_of_magnitude() {
        let samples = sweep_over(
            RunScale::Quick,
            &[AppKind::WebcamRtsp, AppKind::Vr, AppKind::Gaming],
            &[0.0],
        );
        let rows = from_samples(&samples);
        let rate = |name: &str| rows.iter().find(|r| r.app == name).unwrap().bitrate_mbps;
        // Paper: 0.77 / 9.0 / 0.02 Mbps.
        assert!((0.6..=1.1).contains(&rate("WebCam (RTSP)")));
        assert!((8.0..=10.5).contains(&rate("VRidge (GVSP)")));
        assert!((0.01..=0.04).contains(&rate("Gaming w/ QCI=7")));
    }

    #[test]
    fn tlc_optimal_epsilon_small() {
        let samples = sweep_over(RunScale::Quick, &[AppKind::Vr], &[0.0, 150.0]);
        let rows = from_samples(&samples);
        let vr = rows.iter().find(|r| r.app == "VRidge (GVSP)").unwrap();
        // Paper: ε ≤ 2.5% for TLC-optimal; allow slack for short cycles.
        assert!(
            vr.tlc_optimal.epsilon < 0.05,
            "ε {}",
            vr.tlc_optimal.epsilon
        );
        assert!(vr.legacy.epsilon > vr.tlc_optimal.epsilon);
    }
}
