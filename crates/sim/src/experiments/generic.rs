//! §8 / Appendix D — TLC in generic (non-edge) mobile data charging.
//!
//! When the server is an arbitrary Internet host rather than a co-located
//! edge server, downlink data can be lost *between the server and the
//! 4G/5G core*. The edge then reports `x̂'_e ≥ x̂_e` (server-sent instead
//! of core-received), and Appendix D proves the resulting over-charge is
//! bounded: `x̂' − x̂ = c · (x̂'_e − x̂_e)` — still better than legacy's
//! unbounded selfish charging.

use super::sweep::run_one;
use super::RunScale;
use crate::scenario::AppKind;
use serde::{Deserialize, Serialize};
use tlc_core::game::generic_downlink_overcharge_bound;
use tlc_core::plan::{charge_for, DataPlan, LossWeight, UsagePair};

/// One internet-loss configuration's outcome.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GenericRow {
    /// Internet-side loss rate between server and core.
    pub internet_loss: f64,
    /// Plan weight c.
    pub c: f64,
    /// The over-charge actually incurred, bytes.
    pub overcharge: u64,
    /// Appendix D's bound `c · (x̂'_e − x̂_e)`, bytes.
    pub bound: u64,
}

/// Regenerates the Appendix-D validation: a downlink VR cycle, with the
/// server moved to the Internet behind a lossy path.
pub fn run(scale: RunScale) -> Vec<GenericRow> {
    let plan = DataPlan::paper_default();
    let base = run_one(AppKind::Vr, 0.0, 0xD00D, scale.cycle(), &plan);
    // Core-received and device-received truth from the edge scenario.
    let core_received = base.records.truth.edge; // gateway ingress
    let device_received = base.records.truth.operator;

    let mut rows = Vec::new();
    for &p in &[0.0, 0.02, 0.05, 0.10] {
        for &c in &[0.0, 0.5, 1.0] {
            let w = LossWeight::from_f64(c);
            // The Internet server sent more than the core received:
            // x̂'_e = core_received / (1 − p).
            let server_sent = (core_received as f64 / (1.0 - p)).round() as u64;
            // Intended charge uses core-received (x̂_e at the core).
            let intended = charge_for(
                UsagePair {
                    edge: core_received,
                    operator: device_received,
                },
                w,
            );
            // The negotiation prices the edge's inflated report.
            let negotiated = charge_for(
                UsagePair {
                    edge: server_sent,
                    operator: device_received,
                },
                w,
            );
            let overcharge = negotiated.saturating_sub(intended);
            let bound = generic_downlink_overcharge_bound(server_sent, core_received, w);
            rows.push(GenericRow {
                internet_loss: p,
                c,
                overcharge,
                bound,
            });
        }
    }
    rows
}

/// Prints the validation table.
pub fn print(rows: &[GenericRow]) {
    println!("Appendix D — generic-charging over-charge vs bound");
    println!(
        "{:>9} {:>5} {:>14} {:>14}",
        "inet loss", "c", "overcharge B", "bound B"
    );
    for r in rows {
        println!(
            "{:>8.0}% {:>5.2} {:>14} {:>14}",
            r.internet_loss * 100.0,
            r.c,
            r.overcharge,
            r.bound
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overcharge_never_exceeds_bound() {
        for r in run(RunScale::Quick) {
            assert!(
                r.overcharge <= r.bound + 1, // +1 for rounding of x̂'_e
                "loss {} c {}: overcharge {} > bound {}",
                r.internet_loss,
                r.c,
                r.overcharge,
                r.bound
            );
        }
    }

    #[test]
    fn no_internet_loss_means_no_overcharge() {
        for r in run(RunScale::Quick)
            .iter()
            .filter(|r| r.internet_loss == 0.0)
        {
            assert_eq!(r.overcharge, 0);
            assert_eq!(r.bound, 0);
        }
    }

    #[test]
    fn c_zero_is_immune() {
        // Receiver-only charging ignores sender-side inflation entirely.
        for r in run(RunScale::Quick).iter().filter(|r| r.c == 0.0) {
            assert_eq!(r.overcharge, 0);
        }
    }
}
