//! Extension: the million-session digital twin at experiment scale
//! (DESIGN §13).
//!
//! Runs the sharded twin across population tiers and reports the
//! numbers the paper's operator would care about at fleet scale: the
//! aggregate legacy/TLC gap ratios (which must hold steady as the
//! population grows — gap accuracy vs scale) and the simulator's own
//! throughput (events and session-cycles per wall-clock second).

use super::RunScale;
use crate::twin::{run_twin, NullSink, TwinConfig};
use crate::wheel::WheelBackend;
use serde::Serialize;
use tlc_net::time::SimDuration;

/// One population tier's outcome.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct TwinRow {
    /// Target concurrent population.
    pub sessions: u64,
    /// Sessions ever admitted (initial + churn).
    pub sessions_created: u64,
    /// Wheel events fired.
    pub events: u64,
    /// Charging cycles settled.
    pub cycles: u64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Settled session-cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Aggregate legacy gap ratio ε.
    pub legacy_ratio: f64,
    /// Aggregate TLC gap ratio ε.
    pub tlc_ratio: f64,
}

/// Twin configuration for a population tier.
pub fn tier_config(sessions: usize, seed: u64) -> TwinConfig {
    let mut cfg = TwinConfig::smoke(seed);
    cfg.initial_sessions = sessions;
    // Shard roughly 64k sessions per shard, at least 4.
    cfg.shards = (sessions / 65_536).max(4);
    cfg.threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    cfg.duration = SimDuration::from_secs(10);
    cfg.cycle = SimDuration::from_secs(5);
    cfg.tick = SimDuration::from_secs(1);
    // Churn proportional to population: ~1% of the population arriving
    // (and, with 2-minute lifetimes, leaving) per second, per shard.
    cfg.churn.arrivals_per_sec = sessions as f64 * 0.01 / cfg.shards as f64;
    cfg.backend = WheelBackend::from_env();
    // Capacity shaped so the cell runs warm but not collapsed.
    cfg.cell_capacity_bytes_per_epoch = (sessions as u64) * 200_000;
    cfg
}

/// Runs one tier and times it.
pub fn run_tier(sessions: usize, seed: u64) -> TwinRow {
    let cfg = tier_config(sessions, seed);
    let start = std::time::Instant::now();
    let r = run_twin(&cfg, &mut NullSink);
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    TwinRow {
        sessions: sessions as u64,
        sessions_created: r.sessions_created,
        events: r.events_fired,
        cycles: r.cycles_settled,
        events_per_sec: r.events_fired as f64 / elapsed,
        cycles_per_sec: r.cycles_settled as f64 / elapsed,
        legacy_ratio: r.sweep.legacy_gap_ratio(),
        tlc_ratio: r.sweep.tlc_gap_ratio(),
    }
}

/// Sweeps population tiers.
pub fn run(scale: RunScale) -> Vec<TwinRow> {
    let tiers: &[usize] = match scale {
        RunScale::Quick => &[1_000, 10_000],
        RunScale::Full => &[10_000, 100_000, 1_000_000],
    };
    tiers.iter().map(|&n| run_tier(n, 0x7717)).collect()
}

/// Prints the tier sweep.
pub fn print(rows: &[TwinRow]) {
    println!("Extension — digital-twin population sweep (gap accuracy vs scale)");
    println!(
        "{:>10} {:>10} {:>12} {:>10} {:>12} {:>10} {:>9} {:>8}",
        "sessions", "created", "events", "cycles", "events/s", "cycles/s", "legacy ε", "TLC ε"
    );
    for r in rows {
        println!(
            "{:>10} {:>10} {:>12} {:>10} {:>12.0} {:>10.0} {:>8.2}% {:>7.3}%",
            r.sessions,
            r.sessions_created,
            r.events,
            r.cycles,
            r.events_per_sec,
            r.cycles_per_sec,
            r.legacy_ratio * 100.0,
            r.tlc_ratio * 100.0,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_ratios_hold_across_tiers() {
        let rows = run(RunScale::Quick);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.cycles > 0);
            assert!(
                r.legacy_ratio > r.tlc_ratio,
                "legacy ε {} must exceed TLC ε {}",
                r.legacy_ratio,
                r.tlc_ratio
            );
        }
        // Scale invariance: the aggregate gap ratio is a property of
        // the workload mix, not the population size.
        let drift = (rows[0].legacy_ratio - rows[1].legacy_ratio).abs();
        assert!(
            drift < 0.02,
            "legacy gap ratio drifted {drift} between tiers"
        );
    }
}
