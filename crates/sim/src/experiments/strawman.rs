//! §5.4's monitor strawmen, quantified end-to-end.
//!
//! The operator must learn the device's received downlink volume. The
//! paper compares three mechanisms; this experiment runs a selfish edge
//! (under-reporting by various factors) against each and measures the
//! operator's revenue loss per cycle:
//!
//! * **Strawman 1** (user-space API monitor): fully tamperable — the
//!   operator's record follows the edge's lie, and the negotiation's
//!   cross-check can no longer catch the under-claim (the operator's own
//!   "truth" is the tampered number).
//! * **Strawman 2** (rooted system monitor) and **TLC's RRC COUNTER
//!   CHECK**: tamper-resilient — the under-claim is caught by the
//!   cross-check and cancels out in the negotiation.

use super::sweep::rrc_period_for;
use super::RunScale;
use crate::measure::cycle_records;
use crate::scenario::{run_scenario, AppKind, ScenarioConfig};
use serde::Serialize;
use tlc_cell::monitor::{operator_downlink_report, MonitorKind, TamperPolicy};
use tlc_core::cancellation::{negotiate, DEFAULT_MAX_ROUNDS};
use tlc_core::plan::{intended_charge, DataPlan};
use tlc_core::strategy::OptimalStrategy;

/// One (monitor, tamper) cell.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct StrawmanRow {
    /// Monitor mechanism.
    pub monitor: &'static str,
    /// The selfish edge's under-report factor (1.0 = honest).
    pub edge_report_factor: f64,
    /// The negotiated charge, bytes.
    pub charge: u64,
    /// Plan-intended charge, bytes.
    pub intended: u64,
    /// Operator revenue lost to the tamper, fraction of intended.
    pub revenue_loss: f64,
}

fn monitor_name(kind: MonitorKind) -> &'static str {
    match kind {
        MonitorKind::UserSpaceApi => "strawman 1: user-space API",
        MonitorKind::RootedSystemMonitor => "strawman 2: rooted monitor",
        MonitorKind::RrcCounterCheck => "TLC: RRC COUNTER CHECK",
    }
}

/// Runs the comparison on one clean downlink VR cycle.
pub fn run(scale: RunScale) -> Vec<StrawmanRow> {
    let plan = DataPlan::paper_default();
    let mut cfg = ScenarioConfig::new(AppKind::Vr, 0x57AA, scale.cycle());
    cfg.datapath.rrc_periodic_check = rrc_period_for(scale.cycle());
    let r = run_scenario(&cfg);
    let base = cycle_records(&r);
    let modem_truth = r.app.modem_received.bytes();
    let intended = intended_charge(base.truth, plan.loss_weight);

    let mut rows = Vec::new();
    for kind in [
        MonitorKind::UserSpaceApi,
        MonitorKind::RootedSystemMonitor,
        MonitorKind::RrcCounterCheck,
    ] {
        for factor in [1.0, 0.5, 0.1] {
            // The selfish edge scales whatever the monitor lets it touch.
            let report = operator_downlink_report(kind, modem_truth, TamperPolicy::Scale(factor));
            // The operator's knowledge now rests on that report; for the
            // RRC mechanism substitute the scenario's lagging RRC view
            // (the realistic record), otherwise the raw report.
            let operator_truth = match kind {
                // The tamper attempt never reaches the modem: the record
                // stays the scenario's genuine (lagging) RRC view.
                MonitorKind::RrcCounterCheck => base.operator.own_truth,
                // The other monitors report whatever they saw — which for
                // strawman 1 is the edge's lie.
                _ => report.reported_bytes,
            };
            let operator = tlc_core::strategy::Knowledge {
                own_truth: operator_truth,
                ..base.operator
            };
            // The selfish edge also under-claims in the negotiation,
            // claiming exactly what the (possibly fooled) monitor shows.
            let edge = tlc_core::strategy::Knowledge {
                inferred_peer_truth: report.reported_bytes.min(base.edge.inferred_peer_truth),
                ..base.edge
            };
            let out = negotiate(
                &plan,
                &mut OptimalStrategy,
                &edge,
                &mut OptimalStrategy,
                &operator,
                DEFAULT_MAX_ROUNDS,
            )
            .expect("negotiation converges");
            rows.push(StrawmanRow {
                monitor: monitor_name(kind),
                edge_report_factor: factor,
                charge: out.charge,
                intended,
                revenue_loss: (intended.saturating_sub(out.charge)) as f64 / intended as f64,
            });
        }
    }
    rows
}

/// Prints the comparison.
pub fn print(rows: &[StrawmanRow]) {
    println!("§5.4 strawmen — selfish-edge under-reporting vs monitor mechanism");
    println!(
        "{:<28} {:>8} {:>12} {:>12} {:>10}",
        "monitor", "factor", "charge B", "intended B", "rev. loss"
    );
    for r in rows {
        println!(
            "{:<28} {:>8.1} {:>12} {:>12} {:>9.1}%",
            r.monitor,
            r.edge_report_factor,
            r.charge,
            r.intended,
            r.revenue_loss * 100.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_strawman1_loses_revenue() {
        let rows = run(RunScale::Quick);
        for r in &rows {
            if r.edge_report_factor == 1.0 {
                // Honest edge: every monitor prices near intended.
                assert!(
                    r.revenue_loss.abs() < 0.02,
                    "{}: {}",
                    r.monitor,
                    r.revenue_loss
                );
                continue;
            }
            match (r.monitor, r.edge_report_factor) {
                // Tampered user-space monitor: real revenue loss.
                ("strawman 1: user-space API", _) => {
                    assert!(
                        r.revenue_loss > 0.2,
                        "strawman1 at {} lost only {}",
                        r.edge_report_factor,
                        r.revenue_loss
                    )
                }
                // Tamper-resilient monitors: loss stays negligible.
                _ => assert!(
                    r.revenue_loss < 0.02,
                    "{} at {} lost {}",
                    r.monitor,
                    r.edge_report_factor,
                    r.revenue_loss
                ),
            }
        }
    }

    #[test]
    fn deeper_tampering_loses_more_on_strawman1() {
        let rows = run(RunScale::Quick);
        let loss = |f: f64| {
            rows.iter()
                .find(|r| r.monitor.starts_with("strawman 1") && r.edge_report_factor == f)
                .unwrap()
                .revenue_loss
        };
        assert!(loss(0.1) > loss(0.5));
    }
}
