//! Fig. 13 — gap ratio (%) vs background traffic, per application and
//! scheme.
//!
//! The legacy gap ratio grows with congestion; TLC-optimal stays flat
//! (its residual is measurement error, independent of loss). The gaming
//! subfigure shows QCI=7 shielding even the legacy scheme.

use super::fig12::SCHEMES;
use super::sweep::{congestion_sweep, SweepSample};
use super::RunScale;
use crate::scenario::ALL_APPS;
use serde::Serialize;

/// One point: mean gap ratio for (app, scheme, background level).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Fig13Row {
    /// Application name.
    pub app: &'static str,
    /// Scheme label.
    pub scheme: &'static str,
    /// Background load, Mbps.
    pub background_mbps: f64,
    /// Mean ε = Δ/x̂ across rounds.
    pub gap_ratio: f64,
}

/// Regenerates the figure from a congestion sweep.
pub fn run(scale: RunScale) -> Vec<Fig13Row> {
    from_samples(&congestion_sweep(scale))
}

/// Builds the rows from precomputed samples.
pub fn from_samples(samples: &[SweepSample]) -> Vec<Fig13Row> {
    let mut rows = Vec::new();
    for app in ALL_APPS {
        let mut bgs: Vec<f64> = samples
            .iter()
            .filter(|s| s.app == app)
            .map(|s| s.bg_mbps)
            .collect();
        bgs.sort_by(f64::total_cmp);
        bgs.dedup();
        for bg in bgs {
            for scheme in SCHEMES {
                let mine: Vec<&SweepSample> = samples
                    .iter()
                    .filter(|s| s.app == app && s.bg_mbps == bg)
                    .collect();
                if mine.is_empty() {
                    continue;
                }
                let eps = mine
                    .iter()
                    .map(|s| s.comparison.gap_ratio(scheme.charge(s)))
                    .sum::<f64>()
                    / mine.len() as f64;
                rows.push(Fig13Row {
                    app: app.name(),
                    scheme: scheme.name(),
                    background_mbps: bg,
                    gap_ratio: eps,
                });
            }
        }
    }
    rows
}

/// Prints the figure's series.
pub fn print(rows: &[Fig13Row]) {
    println!("Fig. 13 — gap ratio (%) under congestion");
    println!(
        "{:<18} {:<14} {:>8} {:>9}",
        "app", "scheme", "bg Mbps", "ratio %"
    );
    for r in rows {
        println!(
            "{:<18} {:<14} {:>8.0} {:>8.2}%",
            r.app,
            r.scheme,
            r.background_mbps,
            r.gap_ratio * 100.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::sweep::sweep_over;
    use crate::scenario::AppKind;

    #[test]
    fn legacy_ratio_grows_with_congestion_tlc_stays_low() {
        let samples = sweep_over(RunScale::Quick, &[AppKind::Vr], &[0.0, 150.0]);
        let rows = from_samples(&samples);
        let pick = |scheme: &str, bg: f64| {
            rows.iter()
                .find(|r| r.scheme == scheme && r.background_mbps == bg)
                .unwrap()
                .gap_ratio
        };
        assert!(pick("Legacy 4G/5G", 150.0) > pick("Legacy 4G/5G", 0.0) * 2.0);
        assert!(pick("TLC-optimal", 150.0) < pick("Legacy 4G/5G", 150.0));
        // TLC-optimal stays below a few percent even congested.
        assert!(pick("TLC-optimal", 150.0) < 0.05);
    }

    #[test]
    fn gaming_is_shielded_by_qci() {
        let samples = sweep_over(RunScale::Quick, &[AppKind::Gaming], &[160.0]);
        let rows = from_samples(&samples);
        let legacy = rows
            .iter()
            .find(|r| r.scheme == "Legacy 4G/5G")
            .unwrap()
            .gap_ratio;
        // Paper Fig. 13d: negligible even for legacy (≈3% at worst).
        assert!(legacy < 0.06, "gaming legacy ratio {legacy}");
    }
}
