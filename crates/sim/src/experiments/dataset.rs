//! Fig. 11c — the experimental dataset table.
//!
//! The paper reports, per application family, the number of charging data
//! records collected (the testbed logs usage at 1 Hz) and the total
//! charged data volume. This experiment derives the same table from a
//! sweep's simulated rounds.

use super::sweep::SweepSample;
use crate::metrics::bytes_to_mb;
use crate::scenario::AppKind;
use serde::Serialize;

/// One application family's dataset row.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct DatasetRow {
    /// Application family (the paper groups both webcams together).
    pub family: &'static str,
    /// Number of 1 Hz charging data records across all rounds.
    pub cdr_count: u64,
    /// Total charged volume, MB.
    pub volume_mb: f64,
}

/// The paper's three application families.
fn family_of(app: AppKind) -> &'static str {
    match app {
        AppKind::WebcamRtsp | AppKind::WebcamUdp | AppKind::WebcamUdpDownlink => "WebCam stream",
        AppKind::Gaming => "Online gaming",
        AppKind::Vr => "VRidge",
    }
}

/// Builds the table from sweep samples.
pub fn from_samples(samples: &[SweepSample]) -> Vec<DatasetRow> {
    let mut rows: Vec<DatasetRow> = Vec::new();
    for s in samples {
        let family = family_of(s.app);
        let cdrs = s.cycle_secs as u64; // 1 Hz usage records
        let volume = s.comparison.intended;
        match rows.iter_mut().find(|r| r.family == family) {
            Some(r) => {
                r.cdr_count += cdrs;
                r.volume_mb += bytes_to_mb(volume);
            }
            None => rows.push(DatasetRow {
                family,
                cdr_count: cdrs,
                volume_mb: bytes_to_mb(volume),
            }),
        }
    }
    rows
}

/// Prints the table in the paper's layout.
pub fn print(rows: &[DatasetRow]) {
    println!("Fig. 11c — experimental dataset");
    println!("{:<16} {:>14} {:>14}", "family", "# CDRs", "volume (MB)");
    for r in rows {
        println!("{:<16} {:>14} {:>14.1}", r.family, r.cdr_count, r.volume_mb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::sweep::sweep_over;
    use crate::experiments::RunScale;

    #[test]
    fn families_aggregate_correctly() {
        let samples = sweep_over(
            RunScale::Quick,
            &[AppKind::WebcamRtsp, AppKind::WebcamUdp, AppKind::Vr],
            &[0.0],
        );
        let rows = from_samples(&samples);
        assert_eq!(rows.len(), 2); // two webcams merge; VR separate
        let webcam = rows.iter().find(|r| r.family == "WebCam stream").unwrap();
        let vr = rows.iter().find(|r| r.family == "VRidge").unwrap();
        assert!(webcam.cdr_count > 0 && vr.cdr_count > 0);
        // VR's per-round volume dwarfs the webcams' (9 vs ~2.5 Mbps), and
        // here VR has half the rounds: still larger volume.
        assert!(vr.volume_mb > webcam.volume_mb / 2.0);
    }

    #[test]
    fn cdr_count_is_one_hertz() {
        let samples = sweep_over(RunScale::Quick, &[AppKind::Gaming], &[0.0]);
        let rows = from_samples(&samples);
        let expected: u64 = samples.iter().map(|s| s.cycle_secs as u64).sum();
        assert_eq!(rows[0].cdr_count, expected);
    }
}
