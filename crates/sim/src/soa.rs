//! Struct-of-arrays charging counters for the digital twin
//! (DESIGN §13).
//!
//! Per-session charging state — what the edge sent, what the
//! operator's gateway metered, what the device/modem actually got,
//! loss tallies, the operator's monitor lag, and the cycle boundary —
//! lives in parallel `Vec<u64>` columns indexed by the session's
//! arena slot ([`crate::arena::SessionId::index`]). The hot
//! gap-accounting sweep ([`ChargeColumns::sweep`]) is then a
//! cache-linear pass over plain arrays: no pointer chasing, no
//! per-session struct padding, one branch per row.
//!
//! Freed rows are zeroed at teardown, so sweeps run unconditionally
//! over every slot — a dead row contributes nothing — and slot reuse
//! starts from a clean row by construction.

use tlc_core::plan::{charge_for, LossWeight, UsagePair};

/// One session's charging columns, read out as a row (settlement path).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChargeRow {
    /// Bytes the edge sent this cycle (x̂_e side of the truth pair).
    pub sent: u64,
    /// Bytes delivered through to the far vantage (x̂_o side).
    pub delivered: u64,
    /// Bytes the operator's gateway metered (what legacy bills).
    pub gateway: u64,
    /// Bytes lost to residual air loss.
    pub lost_air: u64,
    /// Bytes lost to cell congestion.
    pub lost_congestion: u64,
    /// Bytes flushed by handovers (link-layer mobility loss, §3.1).
    pub lost_handover: u64,
    /// Bytes the operator's monitor has not yet observed (RRC
    /// COUNTER CHECK lag): its measured view is `delivered - lag`.
    pub monitor_lag: u64,
    /// Cycle start, µs of twin time.
    pub cycle_start_us: u64,
}

/// The SoA charging-counter bank.
#[derive(Default)]
pub struct ChargeColumns {
    sent: Vec<u64>,
    delivered: Vec<u64>,
    gateway: Vec<u64>,
    lost_air: Vec<u64>,
    lost_congestion: Vec<u64>,
    lost_handover: Vec<u64>,
    monitor_lag: Vec<u64>,
    cycle_start_us: Vec<u64>,
}

/// Aggregate of one cache-linear gap sweep over the live columns.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GapSweep {
    /// Rows with any counted traffic.
    pub active_rows: u64,
    /// Σ sent.
    pub total_sent: u64,
    /// Σ delivered.
    pub total_delivered: u64,
    /// Σ gateway-metered.
    pub total_gateway: u64,
    /// Σ plan-intended charge x̂ (Eq. 1 over the truth pair).
    pub intended: u64,
    /// Σ |legacy charge − x̂|.
    pub legacy_gap: u64,
    /// Σ |TLC honest charge − x̂| (TLC priced on measured records,
    /// i.e. with the operator's monitor lag applied).
    pub tlc_gap: u64,
}

impl GapSweep {
    /// Aggregate legacy gap ratio ε = ΣΔ / Σx̂.
    pub fn legacy_gap_ratio(&self) -> f64 {
        if self.intended == 0 {
            0.0
        } else {
            self.legacy_gap as f64 / self.intended as f64
        }
    }

    /// Aggregate TLC gap ratio.
    pub fn tlc_gap_ratio(&self) -> f64 {
        if self.intended == 0 {
            0.0
        } else {
            self.tlc_gap as f64 / self.intended as f64
        }
    }

    /// Folds another sweep (shard merge, done in shard order).
    /// Saturating: a wrapped aggregate would *be* a charging gap.
    pub fn merge(&mut self, other: &GapSweep) {
        self.active_rows = self.active_rows.saturating_add(other.active_rows);
        self.total_sent = self.total_sent.saturating_add(other.total_sent);
        self.total_delivered = self.total_delivered.saturating_add(other.total_delivered);
        self.total_gateway = self.total_gateway.saturating_add(other.total_gateway);
        self.intended = self.intended.saturating_add(other.intended);
        self.legacy_gap = self.legacy_gap.saturating_add(other.legacy_gap);
        self.tlc_gap = self.tlc_gap.saturating_add(other.tlc_gap);
    }
}

impl ChargeColumns {
    /// Empty bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes every column for `n` rows.
    pub fn with_capacity(n: usize) -> Self {
        let mut c = Self::new();
        c.sent.reserve(n);
        c.delivered.reserve(n);
        c.gateway.reserve(n);
        c.lost_air.reserve(n);
        c.lost_congestion.reserve(n);
        c.lost_handover.reserve(n);
        c.monitor_lag.reserve(n);
        c.cycle_start_us.reserve(n);
        c
    }

    /// Number of rows (== arena slot count).
    pub fn rows(&self) -> usize {
        self.sent.len()
    }

    /// Grows the bank (zero-filled) so `row` is addressable.
    pub fn ensure_row(&mut self, row: usize) {
        if row >= self.sent.len() {
            let n = row + 1;
            self.sent.resize(n, 0);
            self.delivered.resize(n, 0);
            self.gateway.resize(n, 0);
            self.lost_air.resize(n, 0);
            self.lost_congestion.resize(n, 0);
            self.lost_handover.resize(n, 0);
            self.monitor_lag.resize(n, 0);
            self.cycle_start_us.resize(n, 0);
        }
    }

    /// Zeroes a row (teardown, or cycle rollover via
    /// [`ChargeColumns::start_cycle`]).
    pub fn clear_row(&mut self, row: usize) {
        let set = |v: &mut Vec<u64>| {
            if let Some(x) = v.get_mut(row) {
                *x = 0;
            }
        };
        set(&mut self.sent);
        set(&mut self.delivered);
        set(&mut self.gateway);
        set(&mut self.lost_air);
        set(&mut self.lost_congestion);
        set(&mut self.lost_handover);
        set(&mut self.monitor_lag);
        set(&mut self.cycle_start_us);
    }

    /// Clears the row's counters and stamps a fresh cycle start.
    pub fn start_cycle(&mut self, row: usize, now_us: u64) {
        self.clear_row(row);
        if let Some(x) = self.cycle_start_us.get_mut(row) {
            *x = now_us;
        }
    }

    /// Cycle start of a row, µs.
    pub fn cycle_start_us(&self, row: usize) -> u64 {
        self.cycle_start_us.get(row).copied().unwrap_or(0)
    }

    /// Accrues one accounting tick: the edge sent `sent` bytes, of
    /// which `air`/`congestion` bytes were lost before the charged
    /// far vantage. `gateway_before_loss` says whether the gateway
    /// meter sits upstream of the loss (downlink: it bills everything
    /// sent) or downstream (uplink: it bills what survived).
    pub fn accrue(
        &mut self,
        row: usize,
        sent: u64,
        air: u64,
        congestion: u64,
        gateway_before_loss: bool,
    ) {
        let lost = air.saturating_add(congestion).min(sent);
        let delivered = sent.saturating_sub(lost);
        let add = |v: &mut Vec<u64>, d: u64| {
            if let Some(x) = v.get_mut(row) {
                *x = x.saturating_add(d);
            }
        };
        add(&mut self.sent, sent);
        add(&mut self.delivered, delivered);
        add(
            &mut self.gateway,
            if gateway_before_loss { sent } else { delivered },
        );
        add(&mut self.lost_air, air.min(sent));
        add(
            &mut self.lost_congestion,
            congestion.min(sent.saturating_sub(air)),
        );
    }

    /// Charges a handover flush: `bytes` already counted as delivered
    /// are clawed back into mobility loss (they were buffered in the
    /// cell and dropped by the handover before reaching the device).
    pub fn handover_flush(&mut self, row: usize, bytes: u64) -> u64 {
        let Some(d) = self.delivered.get_mut(row) else {
            return 0;
        };
        let clawed = bytes.min(*d);
        *d = d.saturating_sub(clawed);
        if let Some(x) = self.lost_handover.get_mut(row) {
            *x = x.saturating_add(clawed);
        }
        clawed
    }

    /// Sets the operator's monitor lag for a row (bytes its measured
    /// view trails the delivered truth).
    pub fn set_monitor_lag(&mut self, row: usize, lag: u64) {
        let delivered = self.delivered.get(row).copied().unwrap_or(0);
        if let Some(x) = self.monitor_lag.get_mut(row) {
            *x = lag.min(delivered);
        }
    }

    /// Reads a row out (settlement path).
    pub fn row(&self, row: usize) -> ChargeRow {
        let g = |v: &[u64]| v.get(row).copied().unwrap_or(0);
        ChargeRow {
            sent: g(&self.sent),
            delivered: g(&self.delivered),
            gateway: g(&self.gateway),
            lost_air: g(&self.lost_air),
            lost_congestion: g(&self.lost_congestion),
            lost_handover: g(&self.lost_handover),
            monitor_lag: g(&self.monitor_lag),
            cycle_start_us: g(&self.cycle_start_us),
        }
    }

    /// The cache-linear gap-accounting sweep: one pass over the
    /// columns, pricing every active row under legacy and TLC-honest
    /// charging at loss weight `w`. Dead rows are all-zero and skip in
    /// one branch.
    pub fn sweep(&self, w: LossWeight) -> GapSweep {
        let mut out = GapSweep::default();
        let n = self.sent.len();
        for i in 0..n {
            let sent = self.sent[i];
            if sent == 0 {
                continue;
            }
            let delivered = self.delivered[i];
            let gateway = self.gateway[i];
            let lag = self.monitor_lag[i];
            let (intended, legacy_gap, tlc_gap) = price_row(sent, delivered, gateway, lag, w);
            out.merge(&GapSweep {
                active_rows: 1,
                total_sent: sent,
                total_delivered: delivered,
                total_gateway: gateway,
                intended,
                legacy_gap,
                tlc_gap,
            });
        }
        out
    }
}

/// Prices one row: returns `(intended, legacy_gap, tlc_gap)`.
///
/// * intended x̂ = x̂_o + c·(x̂_e − x̂_o) over the truth pair,
/// * legacy bills the gateway meter,
/// * TLC-honest bills Eq. 1 over the *measured* pair — the edge reads
///   exactly, the operator's view trails by `monitor_lag`.
pub fn price_row(
    sent: u64,
    delivered: u64,
    gateway: u64,
    monitor_lag: u64,
    w: LossWeight,
) -> (u64, u64, u64) {
    let intended = charge_for(
        UsagePair {
            edge: sent,
            operator: delivered,
        },
        w,
    );
    let legacy_gap = gateway.abs_diff(intended);
    let tlc = charge_for(
        UsagePair {
            edge: sent,
            operator: delivered.saturating_sub(monitor_lag),
        },
        w,
    );
    let tlc_gap = tlc.abs_diff(intended);
    (intended, legacy_gap, tlc_gap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w() -> LossWeight {
        LossWeight::half()
    }

    #[test]
    fn accrue_uplink_vs_downlink_gateway_placement() {
        let mut c = ChargeColumns::new();
        c.ensure_row(0);
        c.ensure_row(1);
        // Uplink: gateway meters after loss.
        c.accrue(0, 1000, 60, 40, false);
        // Downlink: gateway meters before loss.
        c.accrue(1, 1000, 60, 40, true);
        let ul = c.row(0);
        let dl = c.row(1);
        assert_eq!(ul.delivered, 900);
        assert_eq!(ul.gateway, 900, "uplink gateway bills survivors");
        assert_eq!(dl.delivered, 900);
        assert_eq!(dl.gateway, 1000, "downlink gateway bills everything sent");
        assert_eq!(ul.lost_air + ul.lost_congestion, 100);
    }

    #[test]
    fn sweep_prices_gap_between_vantages() {
        let mut c = ChargeColumns::new();
        c.ensure_row(0);
        c.accrue(0, 1000, 0, 200, true); // DL: sent 1000, delivered 800
        let s = c.sweep(w());
        // intended = 800 + 0.5·200 = 900; legacy bills 1000 → gap 100.
        assert_eq!(s.intended, 900);
        assert_eq!(s.legacy_gap, 100);
        assert_eq!(s.tlc_gap, 0, "honest TLC with no monitor lag is exact");
        assert!((s.legacy_gap_ratio() - 100.0 / 900.0).abs() < 1e-12);
    }

    #[test]
    fn monitor_lag_moves_tlc_but_less_than_legacy() {
        let mut c = ChargeColumns::new();
        c.ensure_row(0);
        c.accrue(0, 1000, 0, 200, true);
        c.set_monitor_lag(0, 80);
        let s = c.sweep(w());
        // Measured pair (1000, 720) → TLC 860 vs intended 900.
        assert_eq!(s.tlc_gap, 40);
        assert!(s.tlc_gap < s.legacy_gap);
    }

    #[test]
    fn handover_flush_claws_back_delivered() {
        let mut c = ChargeColumns::new();
        c.ensure_row(0);
        c.accrue(0, 1000, 0, 0, true);
        let clawed = c.handover_flush(0, 300);
        assert_eq!(clawed, 300);
        let r = c.row(0);
        assert_eq!(r.delivered, 700);
        assert_eq!(r.lost_handover, 300);
        assert_eq!(r.gateway, 1000, "gateway already billed the flushed bytes");
        // Flush can never exceed what was delivered.
        assert_eq!(c.handover_flush(0, 10_000), 700);
    }

    #[test]
    fn cleared_rows_vanish_from_sweep() {
        let mut c = ChargeColumns::new();
        c.ensure_row(3);
        c.accrue(1, 500, 0, 0, true);
        c.accrue(3, 700, 0, 100, true);
        assert_eq!(c.sweep(w()).active_rows, 2);
        c.clear_row(3);
        let s = c.sweep(w());
        assert_eq!(s.active_rows, 1);
        assert_eq!(s.total_sent, 500);
        // Reused row starts clean.
        c.start_cycle(3, 42);
        assert_eq!(c.row(3).sent, 0);
        assert_eq!(c.cycle_start_us(3), 42);
    }
}
