//! Scenario construction and the simulation driver.
//!
//! A scenario reproduces one experiment round of §7.1: an edge application
//! streaming over the emulated LTE cell for one charging cycle, optionally
//! against iperf background traffic (congestion) and under a chosen radio
//! condition, with NTP-residual clock skew between the edge and the
//! operator.

use tlc_cell::clock::SkewedClock;
use tlc_cell::datapath::{Datapath, DatapathConfig, DropStats, FlowCounters};
use tlc_net::packet::{Direction, FlowId, Packet, PacketIdAlloc, Qci};
use tlc_net::radio::{RadioTimeline, RssWalkParams};
use tlc_net::rng::SimRng;
use tlc_net::time::{SimDuration, SimTime};
use tlc_workloads::background::BackgroundTraffic;
use tlc_workloads::gaming::GamingStream;
use tlc_workloads::traffic::Workload;
use tlc_workloads::vr::VrStream;
use tlc_workloads::webcam::WebcamStream;

/// The four §7.1 applications.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AppKind {
    /// WebCam streaming over RTSP (uplink, 0.77 Mbps).
    WebcamRtsp,
    /// WebCam streaming over legacy UDP (uplink, 1.73 Mbps).
    WebcamUdp,
    /// VRidge GVSP VR offload (downlink, 9.0 Mbps).
    Vr,
    /// King of Glory with QCI=7 (downlink, 0.02 Mbps).
    Gaming,
    /// The Fig. 4 variant: the UDP WebCam stream sent *downlink*
    /// (server-side camera to device display).
    WebcamUdpDownlink,
}

/// All four applications, in the paper's table order.
pub const ALL_APPS: [AppKind; 4] = [
    AppKind::WebcamRtsp,
    AppKind::WebcamUdp,
    AppKind::Vr,
    AppKind::Gaming,
];

impl AppKind {
    /// The paper's label for this application.
    pub fn name(&self) -> &'static str {
        match self {
            AppKind::WebcamRtsp => "WebCam (RTSP)",
            AppKind::WebcamUdp => "WebCam (UDP)",
            AppKind::Vr => "VRidge (GVSP)",
            AppKind::Gaming => "Gaming w/ QCI=7",
            AppKind::WebcamUdpDownlink => "WebCam (UDP, DL)",
        }
    }

    /// Traffic direction (which also selects the charged direction).
    pub fn direction(&self) -> Direction {
        match self {
            AppKind::WebcamRtsp | AppKind::WebcamUdp => Direction::Uplink,
            AppKind::Vr | AppKind::Gaming | AppKind::WebcamUdpDownlink => Direction::Downlink,
        }
    }

    /// The paper's mean application bitrate (Table 2), Mbps.
    pub fn mean_rate_mbps(&self) -> f64 {
        self.churn_profile().rate_bps as f64 / 1e6
    }

    /// The twin-scale churn profile for this app: the same Table 2
    /// rate/direction the packet generators reproduce, expressed as
    /// the aggregate model the million-session twin accrues from.
    /// `WebcamUdpDownlink` is the Fig. 4 variant — the UDP webcam
    /// stream pointed downlink.
    pub fn churn_profile(&self) -> tlc_workloads::churn::SessionProfile {
        use tlc_workloads::churn::{ProfileKind, SessionProfile};
        match self {
            AppKind::WebcamRtsp => SessionProfile::paper(ProfileKind::WebcamRtsp),
            AppKind::WebcamUdp => SessionProfile::paper(ProfileKind::WebcamUdp),
            AppKind::Vr => SessionProfile::paper(ProfileKind::Vr),
            AppKind::Gaming => SessionProfile::paper(ProfileKind::Gaming),
            AppKind::WebcamUdpDownlink => SessionProfile {
                direction: Direction::Downlink,
                ..SessionProfile::paper(ProfileKind::WebcamUdp)
            },
        }
    }

    /// Instantiates the workload generator.
    pub fn make(&self, duration: SimDuration, rng: SimRng) -> Box<dyn Workload> {
        match self {
            AppKind::WebcamRtsp => Box::new(WebcamStream::rtsp(duration, rng)),
            AppKind::WebcamUdp => Box::new(WebcamStream::udp(duration, rng)),
            AppKind::Vr => Box::new(VrStream::vridge(duration, rng)),
            AppKind::Gaming => Box::new(GamingStream::king_of_glory(duration, rng)),
            AppKind::WebcamUdpDownlink => Box::new(WebcamStream::udp(duration, rng)),
        }
    }
}

/// Radio condition under test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RadioSpec {
    /// Strong, stable signal (RSS ≥ −95 dBm — the paper's "good radio").
    Good,
    /// Constant signal at a chosen RSS.
    ConstantRss(f64),
    /// Shadow-fading walk around a mean RSS (the paper's signal-strength
    /// sweep in [−95, −120] dBm).
    Walk {
        /// Mean RSS of the walk.
        mean_rss_dbm: f64,
    },
    /// Intermittent connectivity with target disconnectivity ratio η and
    /// ~1.93 s mean outages (Fig. 4 / Fig. 14).
    Intermittent {
        /// Target η = t_disconn / t_total.
        eta: f64,
    },
}

/// One experiment round's configuration.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// Master seed; all stochastic components derive from it.
    pub seed: u64,
    /// Charging-cycle length (the paper uses 1 hour; tests use less).
    pub duration: SimDuration,
    /// Application under test.
    pub app: AppKind,
    /// iperf UDP background load sharing the cell, Mbps (same direction
    /// as the app, to a separate phone).
    pub background_mbps: f64,
    /// Radio condition.
    pub radio: RadioSpec,
    /// NTP residual clock skew σ between edge and operator, milliseconds.
    pub ntp_skew_std_ms: f64,
    /// Handover rate (events/minute, Poisson): each handover flushes the
    /// cell's buffered packets for this device (§3.1's link-layer
    /// mobility loss). Zero disables mobility.
    pub handovers_per_minute: f64,
    /// Datapath parameters (cell capacity, buffers, RRC timers).
    pub datapath: DatapathConfig,
}

impl ScenarioConfig {
    /// A scenario with the paper's defaults, at a reduced duration
    /// suitable for tests and benches (pass 3600 s for full fidelity).
    pub fn new(app: AppKind, seed: u64, duration: SimDuration) -> Self {
        ScenarioConfig {
            seed,
            duration,
            app,
            background_mbps: 0.0,
            radio: RadioSpec::Good,
            ntp_skew_std_ms: 30.0,
            handovers_per_minute: 0.0,
            datapath: DatapathConfig::default(),
        }
    }

    /// Sets the background congestion level.
    pub fn with_background(mut self, mbps: f64) -> Self {
        self.background_mbps = mbps;
        self
    }

    /// Sets the radio condition.
    pub fn with_radio(mut self, radio: RadioSpec) -> Self {
        self.radio = radio;
        self
    }

    /// Sets the handover rate (device mobility).
    pub fn with_handovers_per_minute(mut self, rate: f64) -> Self {
        assert!(rate >= 0.0 && rate.is_finite());
        self.handovers_per_minute = rate;
        self
    }

    /// Enables DRR per-flow fair queueing on the radio links.
    pub fn with_fair_queueing(mut self) -> Self {
        self.datapath.fair_queueing = true;
        self
    }
}

/// The flow id of the application under test.
pub const APP_FLOW: FlowId = FlowId(1);
/// The flow id of the background phone's traffic.
pub const BG_FLOW: FlowId = FlowId(99);

/// Everything measured in one scenario round.
pub struct ScenarioResult {
    /// The application's counters at every vantage.
    pub app: FlowCounters,
    /// Background flow counters, if background traffic ran.
    pub background: Option<FlowCounters>,
    /// Drop accounting.
    pub drops: DropStats,
    /// Charged direction of the app.
    pub direction: Direction,
    /// Application under test.
    pub app_kind: AppKind,
    /// Cycle length.
    pub duration: SimDuration,
    /// The edge's clock (device + server side).
    pub edge_clock: SkewedClock,
    /// The operator's clock (core side).
    pub operator_clock: SkewedClock,
    /// Operator's RRC-based downlink record as of its cycle end.
    pub rrc_view_at_cycle_end: u64,
    /// Number of COUNTER CHECK message pairs exchanged.
    pub counter_check_msgs: u64,
    /// RRC connection setups over the cycle.
    pub rrc_connection_setups: u64,
    /// Realised disconnectivity ratio η of the radio channel.
    pub eta: f64,
    /// Mean outage duration in seconds.
    pub mean_outage_secs: f64,
}

impl ScenarioResult {
    /// Cycle end on the true clock.
    pub fn cycle_end(&self) -> SimTime {
        SimTime::ZERO + self.duration
    }
}

/// Builds the radio timeline for a spec.
pub fn build_radio(spec: RadioSpec, duration: SimDuration, rng: &mut SimRng) -> RadioTimeline {
    match spec {
        RadioSpec::Good => RadioTimeline::constant(duration, -80.0),
        RadioSpec::ConstantRss(rss) => RadioTimeline::constant(duration, rss),
        RadioSpec::Walk { mean_rss_dbm } => RadioTimeline::rss_walk(
            duration,
            RssWalkParams {
                mean_rss_dbm,
                ..RssWalkParams::default()
            },
            rng,
        ),
        RadioSpec::Intermittent { eta } => RadioTimeline::intermittent(
            duration,
            -85.0,
            eta,
            SimDuration::from_millis(1930), // the paper's mean outage
            rng,
        ),
    }
}

/// Runs one scenario round to completion.
pub fn run_scenario(cfg: &ScenarioConfig) -> ScenarioResult {
    let master = SimRng::new(cfg.seed);
    let mut radio_rng = master.split("radio");
    let radio = build_radio(cfg.radio, cfg.duration, &mut radio_rng);
    let eta = radio.disconnectivity_ratio();
    let mean_outage_secs = radio.mean_outage_secs();

    let mut dp = Datapath::new(cfg.datapath.clone(), radio, master.split("datapath"));
    dp.mark_foreign(BG_FLOW);
    if cfg.handovers_per_minute > 0.0 {
        // Poisson handover process over the cycle.
        let mut ho_rng = master.split("handover");
        let mean_gap_s = 60.0 / cfg.handovers_per_minute;
        let mut instants = Vec::new();
        let mut t = 0.0;
        loop {
            t += ho_rng.exponential(mean_gap_s);
            if t >= cfg.duration.as_secs_f64() {
                break;
            }
            instants.push(SimTime::ZERO + SimDuration::from_secs_f64(t));
        }
        dp.set_handovers(instants);
    }

    let mut app = cfg.app.make(cfg.duration, master.split("app"));
    // Direction comes from the scenario's app kind (a generator like the
    // webcam can be pointed either way, cf. Fig. 4's downlink webcam).
    let app_dir = cfg.app.direction();
    let app_qci = app.qci();
    let mut bg = BackgroundTraffic::new(cfg.background_mbps, app_dir, cfg.duration);

    let mut clock_rng = master.split("clock");
    let edge_clock = SkewedClock::ntp_residual(cfg.ntp_skew_std_ms, &mut clock_rng);
    let operator_clock = SkewedClock::ntp_residual(cfg.ntp_skew_std_ms, &mut clock_rng);

    let mut alloc = PacketIdAlloc::new();
    let mut next_app = app.next();
    let mut next_bg = bg.next();
    let mut now = SimTime::ZERO;
    // Queues may drain for a while after the last emission.
    let horizon = SimTime::ZERO + cfg.duration + SimDuration::from_secs(60);

    loop {
        // The earliest pending instant across emissions and the datapath.
        let mut next: Option<SimTime> = None;
        let mut consider = |t: Option<SimTime>| {
            if let Some(t) = t {
                next = Some(next.map_or(t, |cur: SimTime| cur.min(t)));
            }
        };
        consider(next_app.as_ref().map(|e| e.at));
        consider(next_bg.as_ref().map(|e| e.at));
        consider(dp.next_event_time(now));
        let Some(t) = next else { break };
        if t > horizon {
            break;
        }
        now = t;
        // Emissions first at a tick, then datapath progress.
        while let Some(e) = next_app.as_ref().filter(|e| e.at <= now).copied() {
            send(
                &mut dp, &mut alloc, APP_FLOW, app_dir, app_qci, e.at, e.size, e.frame,
            );
            next_app = app.next();
        }
        while let Some(e) = next_bg.as_ref().filter(|e| e.at <= now).copied() {
            send(
                &mut dp,
                &mut alloc,
                BG_FLOW,
                app_dir,
                Qci::DEFAULT,
                e.at,
                e.size,
                e.frame,
            );
            next_bg = bg.next();
        }
        dp.poll(now);
    }

    let cycle_end_true_op = operator_clock.true_time_of(SimTime::ZERO + cfg.duration);
    let rrc_view_at_cycle_end = dp.rrc().operator_view_at(cycle_end_true_op);

    ScenarioResult {
        app: dp.flow_counters(APP_FLOW).cloned().unwrap_or_default(),
        background: dp.flow_counters(BG_FLOW).cloned(),
        drops: dp.drops(),
        direction: app_dir,
        app_kind: cfg.app,
        duration: cfg.duration,
        edge_clock,
        operator_clock,
        rrc_view_at_cycle_end,
        counter_check_msgs: dp.rrc().counter_check_msgs(),
        rrc_connection_setups: dp.rrc().connection_setups(),
        eta,
        mean_outage_secs,
    }
}

#[allow(clippy::too_many_arguments)]
fn send(
    dp: &mut Datapath,
    alloc: &mut PacketIdAlloc,
    flow: FlowId,
    dir: Direction,
    qci: Qci,
    at: SimTime,
    size: u32,
    frame: u64,
) {
    let pkt = Packet::new(alloc.next_id(), flow, dir, size, qci, at).with_frame(frame);
    match dir {
        Direction::Uplink => dp.send_uplink(at, pkt),
        Direction::Downlink => dp.send_downlink(at, pkt),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short(app: AppKind, seed: u64) -> ScenarioConfig {
        ScenarioConfig::new(app, seed, SimDuration::from_secs(30))
    }

    #[test]
    fn clean_webcam_run_has_tiny_gap() {
        let r = run_scenario(&short(AppKind::WebcamRtsp, 1));
        let sent = r.app.device_app_sent.bytes();
        let gw = r.app.gateway_uplink.bytes();
        assert!(sent > 0);
        // Residual air loss only: around the paper's ~7% baseline.
        assert!(gw <= sent);
        let loss = (sent - gw) as f64 / sent as f64;
        assert!((0.02..=0.12).contains(&loss), "baseline loss {loss}");
    }

    #[test]
    fn vr_run_counts_at_all_vantages() {
        let r = run_scenario(&short(AppKind::Vr, 2));
        assert!(r.app.server_sent.bytes() > 0);
        assert_eq!(r.app.server_sent.bytes(), r.app.gateway_downlink.bytes());
        assert!(r.app.modem_received.bytes() > 0);
        assert!(r.app.modem_received.bytes() <= r.app.gateway_downlink.bytes());
        assert_eq!(r.direction, Direction::Downlink);
    }

    #[test]
    fn congestion_grows_the_gap() {
        let clean = run_scenario(&short(AppKind::Vr, 3));
        let congested = run_scenario(&short(AppKind::Vr, 3).with_background(150.0));
        let gap =
            |r: &ScenarioResult| r.app.gateway_downlink.bytes() - r.app.modem_received.bytes();
        assert!(
            gap(&congested) > gap(&clean) * 2,
            "clean {} vs congested {}",
            gap(&clean),
            gap(&congested)
        );
    }

    #[test]
    fn gaming_protected_by_qci_under_congestion() {
        let r = run_scenario(&short(AppKind::Gaming, 4).with_background(160.0));
        let sent = r.app.gateway_downlink.bytes();
        let recv = r.app.modem_received.bytes();
        assert!(sent > 0);
        // QCI 7 cuts ahead of the QCI 9 background: only the residual air
        // loss remains, no congestion loss on top.
        assert!(
            (sent - recv) as f64 / sent as f64 <= 0.12,
            "gaming lost {} of {}",
            sent - recv,
            sent
        );
        // The background itself suffers.
        let bg = r.background.expect("background ran");
        assert!(bg.modem_received.bytes() < bg.gateway_downlink.bytes());
    }

    #[test]
    fn intermittent_radio_creates_gap_without_congestion() {
        let clean = run_scenario(&short(AppKind::WebcamUdp, 5));
        let flaky = run_scenario(
            &short(AppKind::WebcamUdp, 5).with_radio(RadioSpec::Intermittent { eta: 0.12 }),
        );
        assert!(flaky.eta > 0.05, "eta {}", flaky.eta);
        let gap = |r: &ScenarioResult| r.app.device_app_sent.bytes() - r.app.gateway_uplink.bytes();
        assert!(
            gap(&flaky) > gap(&clean),
            "{} vs {}",
            gap(&flaky),
            gap(&clean)
        );
        assert!(flaky.mean_outage_secs > 0.5);
    }

    #[test]
    fn rrc_view_close_to_modem_truth() {
        // 30 s run with 30 s periodic checks: the release check after the
        // stream ends is outside the cycle, so shorten the periodic timer.
        let mut cfg = short(AppKind::Vr, 6);
        cfg.datapath.rrc_periodic_check = SimDuration::from_secs(5);
        let r = run_scenario(&cfg);
        let modem = r.app.modem_received.bytes();
        let rrc = r.rrc_view_at_cycle_end;
        assert!(rrc > 0, "RRC view empty");
        assert!(rrc <= modem);
        let err = (modem - rrc) as f64 / modem as f64;
        // Lag is at most one periodic interval of traffic: 5/30 ≈ 17%.
        assert!(err <= 0.25, "err {err}");
        assert!(r.counter_check_msgs >= 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_scenario(&short(AppKind::WebcamUdp, 7).with_background(100.0));
        let b = run_scenario(&short(AppKind::WebcamUdp, 7).with_background(100.0));
        assert_eq!(a.app.device_app_sent.bytes(), b.app.device_app_sent.bytes());
        assert_eq!(a.app.gateway_uplink.bytes(), b.app.gateway_uplink.bytes());
        assert_eq!(a.rrc_view_at_cycle_end, b.rrc_view_at_cycle_end);
    }

    #[test]
    fn churn_profiles_mirror_app_table() {
        for app in ALL_APPS {
            let p = app.churn_profile();
            assert_eq!(p.direction, app.direction(), "{app:?}");
            assert!(p.rate_bps > 0);
        }
        // The Fig. 4 downlink webcam keeps the UDP rate, flipped.
        let dl = AppKind::WebcamUdpDownlink.churn_profile();
        assert_eq!(dl.rate_bps, AppKind::WebcamUdp.churn_profile().rate_bps);
        assert_eq!(dl.direction, Direction::Downlink);
        assert!((AppKind::Vr.mean_rate_mbps() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_scenario(&short(AppKind::WebcamUdp, 8));
        let b = run_scenario(&short(AppKind::WebcamUdp, 9));
        assert_ne!(a.app.device_app_sent.bytes(), b.app.device_app_sent.bytes());
    }
}
