//! Hierarchical timer wheel — the event scheduler behind the
//! million-session digital twin (DESIGN §13).
//!
//! The legacy experiment driver walks a `BinaryHeap` of boxed events:
//! O(log n) per schedule/pop and a pointer chase per entry. At twin
//! scale (millions of outstanding timers, constant churn) that heap is
//! the bottleneck, so [`Scheduler`] replaces it with a fixed-hierarchy
//! timer wheel: 4 levels × 256 slots covering 2³² ticks, O(1)
//! schedule and O(1) cancel, entries stored in a slab with an
//! intrusive doubly-linked free/slot list — no per-event allocation
//! after warm-up.
//!
//! **Determinism / equivalence.** Events fire in `(tick, seq)` order,
//! where `seq` is the global schedule sequence number: a slot's
//! entries are sorted by `seq` when the slot expires (slots are tiny,
//! so the sort amortises to nothing). The legacy heap backend orders
//! by the same key, so both backends produce *byte-identical* event
//! streams for equal seeds — `TwinConfig::scheduler` (or
//! `TLC_TWIN_SCHED=heap|wheel`) flips between them, and the
//! `twin_equiv` suite pins the equivalence, exactly like
//! `IngressConfig::backend` did for the poll/epoll ingress loops.
//!
//! Tokens are generational: a [`Token`] returned by
//! [`Scheduler::schedule`] is invalidated by cancel/fire, and a stale
//! token (slot reused by a later event) can never cancel the new
//! occupant.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// Which event-queue implementation backs a [`Scheduler`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WheelBackend {
    /// The hierarchical timer wheel (default; O(1) schedule/cancel).
    Wheel,
    /// The legacy binary-heap scheduler, kept for conformance testing.
    Heap,
}

impl WheelBackend {
    /// Backend from the `TLC_TWIN_SCHED` environment variable
    /// (`wheel` / `heap`), defaulting to the wheel.
    pub fn from_env() -> Self {
        match std::env::var("TLC_TWIN_SCHED").as_deref() {
            Ok("heap") => WheelBackend::Heap,
            _ => WheelBackend::Wheel,
        }
    }

    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            WheelBackend::Wheel => "wheel",
            WheelBackend::Heap => "heap",
        }
    }
}

/// Handle to a scheduled event; generational, so stale handles are
/// harmless (cancel of an already-fired/cancelled event is a no-op).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    idx: u32,
    gen: u32,
}

impl Token {
    /// A token that never refers to a live event.
    pub const NONE: Token = Token {
        idx: u32::MAX,
        gen: u32::MAX,
    };
}

const LEVELS: usize = 4;
const SLOT_BITS: u32 = 8;
const SLOTS: usize = 1 << SLOT_BITS; // 256 per level
const SLOT_MASK: u64 = (SLOTS - 1) as u64;
/// Ticks covered by the four levels; anything farther parks in the
/// overflow list until the cursor gets close enough.
const HORIZON: u64 = 1 << (SLOT_BITS * LEVELS as u32);
const NIL: u32 = u32::MAX;

/// Where an entry currently lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Loc {
    /// On the free list.
    Free,
    /// Linked into `level`'s `slot` list.
    Slot(u8, u16),
    /// Pushed to the due queue (fired, not yet popped).
    Due,
    /// Parked beyond the wheel horizon.
    Overflow,
    /// Owned by the heap backend.
    Heap,
}

struct Entry<T> {
    tick: u64,
    seq: u64,
    gen: u32,
    next: u32,
    prev: u32,
    loc: Loc,
    payload: Option<T>,
}

/// The sharded-twin event scheduler: timer wheel by default, legacy
/// heap behind [`WheelBackend::Heap`]. Payloads are `Copy` so firing
/// never allocates.
pub struct Scheduler<T: Copy> {
    backend: WheelBackend,
    entries: Vec<Entry<T>>,
    free_head: u32,
    /// Global schedule counter: the deterministic tiebreak for events
    /// at the same tick.
    seq: u64,
    /// Current wheel time (last fired tick).
    cursor: u64,
    /// Intrusive list heads, `heads[level][slot]`.
    heads: Vec<[u32; SLOTS]>,
    /// Slot-occupancy bitmaps, 256 bits per level.
    bits: Vec<[u64; 4]>,
    /// Entries scheduled ≥ `HORIZON` ticks ahead, as `(idx, gen)`:
    /// cancelling one releases its slab slot immediately, and the slot
    /// can be reused by a *new* overflow event before the stale list
    /// element is swept — the generation tells the copies apart (a
    /// bare index would re-admit the same entry twice and corrupt the
    /// intrusive slot list).
    overflow: Vec<(u32, u32)>,
    /// Fired-but-unpopped entries, ascending `seq`.
    due: VecDeque<(u32, u32)>,
    heap: BinaryHeap<Reverse<(u64, u64, u32, u32)>>,
    live: usize,
}

impl<T: Copy> Scheduler<T> {
    /// A scheduler starting at tick 0.
    pub fn new(backend: WheelBackend) -> Self {
        Scheduler {
            backend,
            entries: Vec::new(),
            free_head: NIL,
            seq: 0,
            cursor: 0,
            heads: vec![[NIL; SLOTS]; LEVELS],
            bits: vec![[0u64; 4]; LEVELS],
            overflow: Vec::new(),
            due: VecDeque::new(),
            heap: BinaryHeap::new(),
            live: 0,
        }
    }

    /// Pre-sizes the slab for `n` outstanding events.
    pub fn with_capacity(backend: WheelBackend, n: usize) -> Self {
        let mut s = Self::new(backend);
        s.entries.reserve(n);
        if backend == WheelBackend::Heap {
            s.heap.reserve(n);
        }
        s
    }

    /// Outstanding (scheduled, unfired) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no events are outstanding.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Current scheduler time (the tick of the last fired event batch).
    pub fn now(&self) -> u64 {
        self.cursor
    }

    /// The backend in use.
    pub fn backend(&self) -> WheelBackend {
        self.backend
    }

    fn alloc(&mut self, tick: u64, payload: T) -> (u32, u32, u64) {
        let seq = self.seq;
        self.seq += 1;
        let idx = if self.free_head != NIL {
            let idx = self.free_head;
            if let Some(e) = self.entries.get_mut(idx as usize) {
                self.free_head = e.next;
                e.tick = tick;
                e.seq = seq;
                e.next = NIL;
                e.prev = NIL;
                e.payload = Some(payload);
            }
            idx
        } else {
            let idx = self.entries.len() as u32;
            self.entries.push(Entry {
                tick,
                seq,
                gen: 0,
                next: NIL,
                prev: NIL,
                loc: Loc::Free,
                payload: Some(payload),
            });
            idx
        };
        let gen = self.entries.get(idx as usize).map_or(0, |e| e.gen);
        (idx, gen, seq)
    }

    fn release(&mut self, idx: u32) {
        if let Some(e) = self.entries.get_mut(idx as usize) {
            e.loc = Loc::Free;
            e.payload = None;
            // Wrapping add keeps release panic-free; a token only
            // matches when both idx and gen agree, so even a wrapped
            // generation cannot resurrect a stale handle by accident.
            e.gen = e.gen.wrapping_add(1);
            e.prev = NIL;
            e.next = self.free_head;
            self.free_head = idx;
        }
    }

    /// Schedules `payload` to fire at absolute `tick` (clamped to the
    /// present: ticks at or before `now()` fire on the next pop).
    /// O(1) for both backends.
    pub fn schedule(&mut self, tick: u64, payload: T) -> Token {
        let tick = tick.max(self.cursor);
        let (idx, gen, seq) = self.alloc(tick, payload);
        self.live += 1;
        match self.backend {
            WheelBackend::Heap => {
                if let Some(e) = self.entries.get_mut(idx as usize) {
                    e.loc = Loc::Heap;
                }
                self.heap.push(Reverse((tick, seq, idx, gen)));
            }
            WheelBackend::Wheel => self.wheel_insert(idx),
        }
        Token { idx, gen }
    }

    /// Cancels a scheduled event; `true` if it was still pending.
    /// O(1) (heap cancels are lazy: the tombstone pops and is skipped).
    pub fn cancel(&mut self, token: Token) -> bool {
        let Some(e) = self.entries.get(token.idx as usize) else {
            return false;
        };
        if e.gen != token.gen || e.loc == Loc::Free {
            return false;
        }
        match e.loc {
            Loc::Slot(level, slot) => {
                self.unlink(token.idx, level as usize, slot as usize);
            }
            // Due/Overflow/Heap entries are skipped lazily by gen check.
            Loc::Due | Loc::Overflow | Loc::Heap => {}
            Loc::Free => return false,
        }
        self.release(token.idx);
        self.live -= 1;
        true
    }

    /// Pops the next event with `tick <= horizon`, advancing scheduler
    /// time to its tick. Returns `(tick, seq, payload)`.
    pub fn pop_next(&mut self, horizon: u64) -> Option<(u64, u64, T)> {
        match self.backend {
            WheelBackend::Heap => self.heap_pop(horizon),
            WheelBackend::Wheel => self.wheel_pop(horizon),
        }
    }

    /// The tick of the earliest outstanding event, if any (exact for
    /// both backends; the wheel resolves cascades as needed).
    pub fn peek_tick(&mut self) -> Option<u64> {
        match self.backend {
            WheelBackend::Heap => loop {
                let &Reverse((tick, _, idx, gen)) = self.heap.peek()?;
                if self.token_live(idx, gen, Loc::Heap) {
                    return Some(tick);
                }
                self.heap.pop();
            },
            WheelBackend::Wheel => {
                // Resolve lazily: fire nothing, but cascade until the
                // earliest entry reaches level 0 or the due queue.
                loop {
                    if let Some(&(idx, gen)) = self.due.front() {
                        if self.token_live(idx, gen, Loc::Due) {
                            return self.entries.get(idx as usize).map(|e| e.tick);
                        }
                        self.due.pop_front();
                        continue;
                    }
                    let bound = self.next_bound()?;
                    if self.exact_at(bound) {
                        return Some(bound);
                    }
                    self.advance_to(bound);
                }
            }
        }
    }

    fn token_live(&self, idx: u32, gen: u32, want: Loc) -> bool {
        self.entries
            .get(idx as usize)
            .is_some_and(|e| e.gen == gen && e.loc == want)
    }

    fn heap_pop(&mut self, horizon: u64) -> Option<(u64, u64, T)> {
        loop {
            let &Reverse((tick, seq, idx, gen)) = self.heap.peek()?;
            if !self.token_live(idx, gen, Loc::Heap) {
                self.heap.pop();
                continue;
            }
            if tick > horizon {
                return None;
            }
            self.heap.pop();
            self.cursor = self.cursor.max(tick);
            let payload = self
                .entries
                .get_mut(idx as usize)
                .and_then(|e| e.payload.take());
            self.release(idx);
            self.live -= 1;
            if let Some(p) = payload {
                return Some((tick, seq, p));
            }
        }
    }

    // ── Wheel internals ────────────────────────────────────────────────

    fn set_bit(&mut self, level: usize, slot: usize) {
        if let Some(words) = self.bits.get_mut(level) {
            words[slot >> 6] |= 1u64 << (slot & 63);
        }
    }

    fn clear_bit(&mut self, level: usize, slot: usize) {
        if let Some(words) = self.bits.get_mut(level) {
            words[slot >> 6] &= !(1u64 << (slot & 63));
        }
    }

    /// First occupied slot at `level` whose offset from `from` is in
    /// `[0, 256)`, in wrap order; returns the offset.
    fn next_slot_offset(&self, level: usize, from: usize) -> Option<usize> {
        let words = self.bits.get(level)?;
        for off in 0..4usize {
            // Examine 64-slot words starting at the word containing
            // `from`, masking below `from` in the first word.
            let wi = ((from >> 6) + off) & 3;
            let mut w = words[wi];
            if off == 0 {
                w &= !0u64 << (from & 63);
            }
            if w != 0 {
                let slot = (wi << 6) + w.trailing_zeros() as usize;
                let delta = (slot + SLOTS - from) & (SLOTS - 1);
                return Some(delta);
            }
        }
        // Wrapped below `from` in the starting word.
        let wi = from >> 6;
        let w = words[wi] & !(!0u64 << (from & 63));
        if w != 0 {
            let slot = (wi << 6) + w.trailing_zeros() as usize;
            return Some((slot + SLOTS - from) & (SLOTS - 1));
        }
        None
    }

    fn wheel_insert(&mut self, idx: u32) {
        let (tick, delta) = match self.entries.get(idx as usize) {
            Some(e) => (e.tick, e.tick.saturating_sub(self.cursor)),
            None => return,
        };
        if delta >= HORIZON {
            let mut gen = 0;
            if let Some(e) = self.entries.get_mut(idx as usize) {
                e.loc = Loc::Overflow;
                gen = e.gen;
            }
            self.overflow.push((idx, gen));
            return;
        }
        // Smallest level whose span covers the delta.
        let level = match delta {
            0..=0xFF => 0usize,
            0x100..=0xFFFF => 1,
            0x1_0000..=0xFF_FFFF => 2,
            _ => 3,
        };
        let slot = ((tick >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
        let head = self.heads.get(level).map_or(NIL, |h| h[slot]);
        if let Some(e) = self.entries.get_mut(idx as usize) {
            e.loc = Loc::Slot(level as u8, slot as u16);
            e.prev = NIL;
            e.next = head;
        }
        if head != NIL {
            if let Some(h) = self.entries.get_mut(head as usize) {
                h.prev = idx;
            }
        }
        if let Some(hs) = self.heads.get_mut(level) {
            hs[slot] = idx;
        }
        self.set_bit(level, slot);
    }

    fn unlink(&mut self, idx: u32, level: usize, slot: usize) {
        let (prev, next) = match self.entries.get(idx as usize) {
            Some(e) => (e.prev, e.next),
            None => return,
        };
        if prev != NIL {
            if let Some(p) = self.entries.get_mut(prev as usize) {
                p.next = next;
            }
        } else if let Some(hs) = self.heads.get_mut(level) {
            hs[slot] = next;
        }
        if next != NIL {
            if let Some(n) = self.entries.get_mut(next as usize) {
                n.prev = prev;
            }
        }
        if self.heads.get(level).map_or(NIL, |h| h[slot]) == NIL {
            self.clear_bit(level, slot);
        }
    }

    /// Detaches and returns every entry index in `level`/`slot`.
    fn drain_slot(&mut self, level: usize, slot: usize, out: &mut Vec<u32>) {
        let mut cur = self.heads.get(level).map_or(NIL, |h| h[slot]);
        if let Some(hs) = self.heads.get_mut(level) {
            hs[slot] = NIL;
        }
        self.clear_bit(level, slot);
        while cur != NIL {
            let next = self.entries.get(cur as usize).map_or(NIL, |e| e.next);
            out.push(cur);
            cur = next;
        }
    }

    /// Lower bound on the next event's tick, across levels + overflow.
    /// Exact for level 0; slot-base bound for higher levels.
    fn next_bound(&mut self) -> Option<u64> {
        let mut best: Option<u64> = None;
        let mut upd = |t: u64| {
            if best.is_none_or(|b| t < b) {
                best = Some(t);
            }
        };
        let pos0 = (self.cursor & SLOT_MASK) as usize;
        if let Some(off) = self.next_slot_offset(0, pos0) {
            // Level-0 slots hold exact ticks; offset 0 = the cursor's
            // own slot (possible right after a jump, before firing).
            upd(self.cursor + off as u64);
        }
        for level in 1..LEVELS {
            let shift = SLOT_BITS * level as u32;
            let span = 1u64 << shift;
            let pos = ((self.cursor >> shift) & SLOT_MASK) as usize;
            // Scan strictly-ahead slots: the cursor's own slot at a
            // higher level holds entries a full window wrap away, so
            // it is due *last*, not first. Scanning from `pos + 1`
            // makes the first occupied slot the genuinely nearest one,
            // with `off + 1 == 256` (only `pos` occupied) landing the
            // full-wrap bound as the natural limit of the formula.
            let from = (pos + 1) & (SLOTS - 1);
            if let Some(off) = self.next_slot_offset(level, from) {
                let aligned = self.cursor & !(span - 1);
                upd(aligned + span * (off as u64 + 1));
            }
        }
        for &(idx, gen) in &self.overflow {
            if let Some(e) = self.entries.get(idx as usize) {
                if e.gen == gen && e.loc == Loc::Overflow {
                    upd(e.tick);
                }
            }
        }
        best
    }

    /// Whether `tick` is an exact level-0 hit (vs a cascade bound).
    fn exact_at(&self, tick: u64) -> bool {
        let slot = (tick & SLOT_MASK) as usize;
        let occupied = self
            .bits
            .first()
            .is_some_and(|w| w[slot >> 6] & (1u64 << (slot & 63)) != 0);
        occupied
            && tick - self.cursor < 256
            && self.heads.first().is_some_and(|h| {
                let mut cur = h[slot];
                while cur != NIL {
                    match self.entries.get(cur as usize) {
                        Some(e) if e.tick == tick => return true,
                        Some(e) => cur = e.next,
                        None => break,
                    }
                }
                false
            })
    }

    /// Jumps the cursor to `tick`, cascading higher-level slots at the
    /// landing position and firing the level-0 slot into `due`.
    fn advance_to(&mut self, tick: u64) {
        self.cursor = tick;

        // Re-admit overflow entries that now fit the wheel horizon.
        if !self.overflow.is_empty() {
            let mut near: Vec<u32> = Vec::new();
            let cursor = self.cursor;
            let entries = &self.entries;
            self.overflow
                .retain(|&(idx, gen)| match entries.get(idx as usize) {
                    Some(e) if e.gen == gen && e.loc == Loc::Overflow => {
                        if e.tick.saturating_sub(cursor) < HORIZON {
                            near.push(idx);
                            false
                        } else {
                            true
                        }
                    }
                    _ => false, // cancelled or stale copy of a reused slot
                });
            for idx in near {
                self.wheel_insert(idx);
            }
        }

        // Cascade the landing slot of each higher level, top-down, so
        // entries settle into their final level-0 slots.
        let mut moved: Vec<u32> = Vec::new();
        for level in (1..LEVELS).rev() {
            let pos = ((self.cursor >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
            let occupied = self
                .bits
                .get(level)
                .is_some_and(|w| w[pos >> 6] & (1u64 << (pos & 63)) != 0);
            if occupied {
                self.drain_slot(level, pos, &mut moved);
            }
        }
        let mut fired: Vec<(u64, u32, u32)> = Vec::new();
        for idx in moved.drain(..) {
            let (tick_e, gen) = match self.entries.get(idx as usize) {
                Some(e) => (e.tick, e.gen),
                None => continue,
            };
            if tick_e <= self.cursor {
                if let Some(e) = self.entries.get_mut(idx as usize) {
                    e.loc = Loc::Due;
                }
                fired.push((
                    self.entries.get(idx as usize).map_or(0, |e| e.seq),
                    idx,
                    gen,
                ));
            } else {
                self.wheel_insert(idx);
            }
        }

        // Fire the level-0 slot at the cursor (all entries in it share
        // the cursor's tick — see the module docs).
        let pos0 = (self.cursor & SLOT_MASK) as usize;
        let occupied0 = self
            .bits
            .first()
            .is_some_and(|w| w[pos0 >> 6] & (1u64 << (pos0 & 63)) != 0);
        if occupied0 {
            let mut slot_entries: Vec<u32> = Vec::new();
            self.drain_slot(0, pos0, &mut slot_entries);
            for idx in slot_entries {
                let (tick_e, seq, gen) = match self.entries.get(idx as usize) {
                    Some(e) => (e.tick, e.seq, e.gen),
                    None => continue,
                };
                if tick_e == self.cursor {
                    if let Some(e) = self.entries.get_mut(idx as usize) {
                        e.loc = Loc::Due;
                    }
                    fired.push((seq, idx, gen));
                } else {
                    // A same-slot entry one window ahead (inserted
                    // before the cursor wrapped): put it back.
                    self.wheel_insert(idx);
                }
            }
        }

        // Deterministic same-tick ordering: ascending schedule seq.
        fired.sort_unstable_by_key(|&(seq, _, _)| seq);
        for (_, idx, gen) in fired {
            self.due.push_back((idx, gen));
        }
    }

    fn wheel_pop(&mut self, horizon: u64) -> Option<(u64, u64, T)> {
        loop {
            while let Some(&(idx, gen)) = self.due.front() {
                if !self.token_live(idx, gen, Loc::Due) {
                    self.due.pop_front();
                    continue;
                }
                let tick = self.entries.get(idx as usize).map_or(0, |e| e.tick);
                if tick > horizon {
                    // Shouldn't happen (due entries are at the cursor),
                    // but keep the contract anyway.
                    return None;
                }
                self.due.pop_front();
                let (seq, payload) = match self.entries.get_mut(idx as usize) {
                    Some(e) => (e.seq, e.payload.take()),
                    None => (0, None),
                };
                self.release(idx);
                self.live -= 1;
                if let Some(p) = payload {
                    return Some((tick, seq, p));
                }
                continue;
            }
            let bound = self.next_bound()?;
            if bound > horizon {
                return None;
            }
            self.advance_to(bound);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny deterministic generator for the model test (no SimRng dep
    /// cycle worries, and test-local).
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 16
        }
    }

    fn drain(s: &mut Scheduler<u64>, horizon: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some((tick, _seq, p)) = s.pop_next(horizon) {
            out.push((tick, p));
        }
        out
    }

    #[test]
    fn fires_in_tick_then_seq_order() {
        for backend in [WheelBackend::Wheel, WheelBackend::Heap] {
            let mut s = Scheduler::new(backend);
            s.schedule(10, 1u64);
            s.schedule(5, 2);
            s.schedule(10, 3);
            s.schedule(5, 4);
            let got = drain(&mut s, u64::MAX);
            assert_eq!(got, vec![(5, 2), (5, 4), (10, 1), (10, 3)], "{backend:?}");
            assert!(s.is_empty());
        }
    }

    #[test]
    fn cancel_prevents_fire_and_stale_token_is_noop() {
        for backend in [WheelBackend::Wheel, WheelBackend::Heap] {
            let mut s = Scheduler::new(backend);
            let a = s.schedule(7, 1u64);
            let b = s.schedule(8, 2);
            assert!(s.cancel(a));
            assert!(!s.cancel(a), "double cancel must be a no-op");
            // Slot reuse: the new event takes a's slab slot with a new
            // generation; the stale token must not cancel it.
            let c = s.schedule(9, 3);
            assert!(!s.cancel(a));
            let got = drain(&mut s, u64::MAX);
            assert_eq!(got, vec![(8, 2), (9, 3)], "{backend:?}");
            let _ = (b, c);
        }
    }

    #[test]
    fn horizon_bounds_popping() {
        let mut s = Scheduler::new(WheelBackend::Wheel);
        s.schedule(100, 1u64);
        s.schedule(300, 2);
        assert_eq!(s.pop_next(99), None);
        assert_eq!(s.pop_next(100), Some((100, 0, 1)));
        assert_eq!(s.pop_next(250), None);
        assert_eq!(s.pop_next(300), Some((300, 1, 2)));
    }

    #[test]
    fn far_events_cascade_correctly() {
        let mut s = Scheduler::new(WheelBackend::Wheel);
        // One event per level, plus one beyond the wheel horizon.
        let ticks = [3u64, 700, 70_000, 20_000_000, HORIZON + 17];
        for (i, &t) in ticks.iter().enumerate() {
            s.schedule(t, i as u64);
        }
        let got = drain(&mut s, u64::MAX);
        let expect: Vec<(u64, u64)> = ticks
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as u64))
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn schedule_in_past_fires_now() {
        let mut s = Scheduler::new(WheelBackend::Wheel);
        s.schedule(50, 1u64);
        assert_eq!(s.pop_next(u64::MAX), Some((50, 0, 1)));
        // Cursor is now 50; earlier tick clamps to the cursor.
        s.schedule(10, 2);
        assert_eq!(s.pop_next(u64::MAX), Some((50, 1, 2)));
    }

    #[test]
    fn peek_matches_pop() {
        for backend in [WheelBackend::Wheel, WheelBackend::Heap] {
            let mut s = Scheduler::new(backend);
            s.schedule(90_000, 1u64);
            s.schedule(40, 2);
            assert_eq!(s.peek_tick(), Some(40), "{backend:?}");
            assert_eq!(s.pop_next(u64::MAX), Some((40, 1, 2)));
            assert_eq!(s.peek_tick(), Some(90_000));
        }
    }

    #[test]
    fn wheel_matches_heap_model_under_random_ops() {
        // 4 seeds × 3000 mixed schedule/cancel/pop operations: the two
        // backends must produce identical (tick, payload) streams.
        for seed in 1..=4u64 {
            let mut rng_a = Lcg(seed);
            let mut rng_b = Lcg(seed);
            let mut wheel = Scheduler::new(WheelBackend::Wheel);
            let mut heap = Scheduler::new(WheelBackend::Heap);
            let run = |s: &mut Scheduler<u64>, rng: &mut Lcg| -> Vec<(u64, u64)> {
                let mut fired = Vec::new();
                let mut tokens: Vec<Token> = Vec::new();
                let mut now = 0u64;
                for op in 0..3000u64 {
                    match rng.next() % 10 {
                        0..=5 => {
                            // Mixed horizons: near, mid, far, overflow.
                            let delta = match rng.next() % 8 {
                                0 => rng.next() % 16,
                                1..=4 => rng.next() % 300,
                                5 => rng.next() % 70_000,
                                6 => rng.next() % 20_000_000,
                                _ => HORIZON + rng.next() % 1000,
                            };
                            tokens.push(s.schedule(now + delta, op));
                        }
                        6..=7 => {
                            if !tokens.is_empty() {
                                let i = (rng.next() as usize) % tokens.len();
                                s.cancel(tokens[i]);
                            }
                        }
                        _ => {
                            now += rng.next() % 500;
                            while let Some((t, _, p)) = s.pop_next(now) {
                                fired.push((t, p));
                            }
                        }
                    }
                }
                while let Some((t, _, p)) = s.pop_next(u64::MAX) {
                    fired.push((t, p));
                }
                fired
            };
            let a = run(&mut wheel, &mut rng_a);
            let b = run(&mut heap, &mut rng_b);
            assert_eq!(a, b, "wheel/heap diverged at seed {seed}");
            assert!(wheel.is_empty() && heap.is_empty());
        }
    }

    #[test]
    fn slab_reuses_slots_without_growth() {
        let mut s = Scheduler::new(WheelBackend::Wheel);
        for round in 0..100u64 {
            for k in 0..64u64 {
                s.schedule(round * 10 + k % 7, k);
            }
            while s.pop_next((round + 1) * 10).is_some() {}
        }
        assert!(
            s.entries.len() <= 128,
            "slab grew to {} despite churn",
            s.entries.len()
        );
    }
}
