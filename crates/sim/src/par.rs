//! Deterministic parallel map over experiment sweep points.
//!
//! Experiment sweeps are embarrassingly parallel: every (app, load,
//! seed) point simulates independently and all randomness flows from the
//! point's own seed. [`par_map`] fans a slice across a scoped thread
//! pool and returns results **in input order**, so any aggregation the
//! caller does afterwards (f64 sums, CDF pushes) happens in exactly the
//! sequence the sequential runner would use — the parallel and
//! sequential runners therefore produce byte-identical experiment
//! output for fixed seeds.
//!
//! Thread count comes from `TLC_SWEEP_THREADS` when set (use `1` to
//! force sequential execution, e.g. when comparing against the
//! sequential twin), otherwise from the host's available parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker threads to use for sweeps: the `TLC_SWEEP_THREADS` override,
/// or the host's available parallelism.
pub fn sweep_threads() -> usize {
    if let Ok(v) = std::env::var("TLC_SWEEP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on [`sweep_threads`] scoped threads, returning
/// results in input order.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    par_map_threads(sweep_threads(), items, f)
}

/// [`par_map`] with an explicit thread count. `threads <= 1` runs the
/// plain sequential loop (no pool, no overhead).
pub fn par_map_threads<T: Sync, R: Send>(
    threads: usize,
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    // Work-stealing by atomic index: threads grab the next unclaimed
    // item, so one slow point does not stall the others. Each worker
    // records (index, result) pairs; a final sort restores input order.
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            indexed.extend(h.join().expect("sweep worker panicked"));
        }
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Deterministic in-place parallel map over mutable shard states: the
/// digital twin's epoch barrier. Each item is visited exactly once by
/// exactly one thread (contiguous chunks), results return in input
/// order, and because every `f(i, item)` depends only on the item's
/// own state, the output is byte-identical at any thread count —
/// `threads = 1` runs the plain sequential loop the equivalence tests
/// compare against.
pub fn par_map_mut<T: Send, R: Send>(
    threads: usize,
    items: &mut [T],
    f: impl Fn(usize, &mut T) -> R + Sync,
) -> Vec<R> {
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<R> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .enumerate()
            .map(|(ci, ch)| {
                s.spawn(move || {
                    ch.iter_mut()
                        .enumerate()
                        .map(|(k, t)| f(ci * chunk + k, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("twin shard worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_at_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = par_map_threads(threads, &items, |x| x * x);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_threads(4, &empty, |x| *x).is_empty());
        assert_eq!(par_map_threads(4, &[7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_mut_mutates_in_place_and_orders_results() {
        let expect_state: Vec<u64> = (0..23u64).map(|x| x + 100).collect();
        let expect_out: Vec<(usize, u64)> = (0..23usize).map(|i| (i, i as u64)).collect();
        for threads in [1, 2, 4, 16] {
            let mut items: Vec<u64> = (0..23).collect();
            let out = par_map_mut(threads, &mut items, |i, x| {
                let before = *x;
                *x += 100;
                (i, before)
            });
            assert_eq!(items, expect_state, "threads = {threads}");
            assert_eq!(out, expect_out, "threads = {threads}");
        }
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Longer work at low indexes tempts a racing pool to reorder.
        let items: Vec<u64> = (0..16).collect();
        let got = par_map_threads(4, &items, |&x| {
            let mut acc = 0u64;
            for i in 0..(16 - x) * 10_000 {
                acc = acc.wrapping_add(i ^ x);
            }
            (x, acc & 1)
        });
        let idx: Vec<u64> = got.iter().map(|(x, _)| *x).collect();
        assert_eq!(idx, items);
    }
}
