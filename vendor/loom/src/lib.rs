//! Minimal stand-in for `loom` (offline environment).
//!
//! Real loom exhaustively explores thread interleavings by replacing
//! the `std::sync` primitives with modeled versions and backtracking
//! over every schedule. That engine cannot be vendored as a stub, so —
//! per the repo's policy of vendoring exactly the API surface the
//! workspace uses — this crate keeps loom's *API shape* and substitutes
//! **iterated stress scheduling**: [`model`] runs the closure many
//! times (`LOOM_ITERS`, default 64), and the [`thread::spawn`] wrapper
//! perturbs each iteration's schedule with a deterministic,
//! iteration-seeded pattern of `yield_now` calls so distinct
//! interleavings of the spawned threads are actually exercised.
//!
//! That is strictly weaker than loom's exhaustive exploration — it can
//! miss rare schedules — but it honours the same contract model code
//! writes against: assertions must hold on *every* explored schedule,
//! and a failure aborts the run with the iteration number. Models
//! written here port unchanged to real loom when a registry is
//! available.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Iteration count taken from `LOOM_ITERS` (default 64).
fn iterations() -> u64 {
    std::env::var("LOOM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Per-process schedule perturbation seed; distinct per [`model`]
/// iteration so spawned threads yield in different patterns.
static SCHEDULE_SEED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread splitmix64 state driving that thread's yield pattern.
    static YIELD_STATE: Cell<u64> = const { Cell::new(0) };
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Explores the closure under perturbed schedules; panics (propagating
/// the model's own assertion) on the first failing iteration.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let iters = iterations();
    for iter in 0..iters {
        SCHEDULE_SEED.store(iter.wrapping_mul(0x2545f4914f6cdd1d) | 1, Ordering::SeqCst);
        f();
    }
}

/// Threads whose startup schedule is perturbed per model iteration.
pub mod thread {
    pub use std::thread::{current, yield_now, JoinHandle};

    use super::{splitmix64, Ordering, SCHEDULE_SEED, YIELD_STATE};

    /// Spawns a thread that first yields an iteration-dependent number
    /// of times, shifting its start relative to its siblings, and then
    /// occasionally yields again via [`explore`] points.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let seed = SCHEDULE_SEED.load(Ordering::SeqCst);
        std::thread::spawn(move || {
            YIELD_STATE.with(|s| s.set(seed ^ (std::process::id() as u64)));
            let mut state = seed;
            for _ in 0..(splitmix64(&mut state) % 8) {
                yield_now();
            }
            f()
        })
    }

    /// An explicit interleaving point: yields on a pseudorandom subset
    /// of iterations. Models may sprinkle this between steps; the
    /// workspace's models rely on the spawn-time perturbation plus the
    /// natural preemption of the stress loop.
    pub fn explore() {
        YIELD_STATE.with(|s| {
            let mut state = s.get();
            let v = splitmix64(&mut state);
            s.set(state);
            if v.is_multiple_of(4) {
                yield_now();
            }
        });
    }
}

/// `loom::sync` mirrors `std::sync` (the stub models run against the
/// real primitives; see the crate docs for the fidelity trade-off).
pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};

    /// Atomics, same layout as `std::sync::atomic`.
    pub mod atomic {
        pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
    }
}

/// Spin-loop hint, mirroring `loom::hint`.
pub mod hint {
    pub use std::hint::spin_loop;
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;

    #[test]
    fn model_runs_configured_iterations() {
        std::env::set_var("LOOM_ITERS", "7");
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        super::model(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        std::env::remove_var("LOOM_ITERS");
        assert_eq!(count.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn spawned_threads_join_with_results() {
        super::model(|| {
            let h = super::thread::spawn(|| 21 * 2);
            assert_eq!(h.join().unwrap(), 42);
        });
    }
}
