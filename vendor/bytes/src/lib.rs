//! Minimal, functional reimplementation of the `bytes` crate surface used
//! by this workspace (big-endian put/get, cursor-style consumption).
//!
//! Vendored because the build environment has no network access to
//! crates.io; see the workspace `[patch.crates-io]` table.

/// Read cursor over a contiguous byte buffer. All multi-byte integer
/// accessors are big-endian, matching the real `bytes` crate defaults.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

/// Write sink for growing a byte buffer. Big-endian, as in real `bytes`.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// Immutable byte buffer consumed from the front by `Buf` methods.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Length of the *unconsumed* suffix, mirroring `bytes::Bytes::len`
    /// semantics where `advance` shrinks the view.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end");
        self.pos += cnt;
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

/// Growable byte buffer written through `BufMut`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_integers() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u16(0xBEEF);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0123_4567_89AB_CDEF);
        b.put_slice(&[1, 2, 3]);
        let mut r = Bytes::copy_from_slice(&b.to_vec());
        assert_eq!(r.remaining(), 18);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0xBEEF);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0123_4567_89AB_CDEF);
        let tail = r.copy_to_bytes(3);
        assert_eq!(tail.to_vec(), vec![1, 2, 3]);
        assert!(!r.has_remaining());
    }
}
