//! Minimal stand-in for `syn` (offline environment).
//!
//! The real `syn` parses Rust source into a full AST and discards
//! comments. `tlc-lint` needs the opposite trade-off: exact source
//! spans, *preserved* comments (the `// SAFETY:` audit is about
//! comments), and total coverage of every file in the workspace. So —
//! following the repo's vendored-stub policy of "exactly the API
//! surface the workspace uses" — this crate implements a complete
//! Rust *lexer* and exposes it through a `syn`-shaped entry point:
//! [`parse_file`] returns a [`File`] whose token stream the lint rules
//! walk with their own lightweight item tracking.
//!
//! The lexer is total over valid Rust 2021 source: line/block comments
//! (doc and plain, nested blocks), string/char/byte/raw/C literals,
//! numeric literals with suffixes, lifetimes vs. char literals, raw
//! identifiers, and single-character punctuation (rules match
//! multi-character operators as token sequences, e.g. `Instant::now`
//! is `Ident(":")(":")Ident`). Unterminated literals or comments are
//! reported as [`Error`]s with the offending line.

/// One lexed token with its source position (1-based line, column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification used by lint rules.
    pub kind: TokenKind,
    /// Exact source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// 1-based column (in bytes) the token starts at.
    pub col: u32,
}

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unsafe`, `Instant`, `r#type`, …).
    Ident,
    /// A single punctuation character (`.`, `:`, `{`, `#`, …).
    Punct,
    /// String/char/byte/numeric literal (text includes quotes/prefix).
    Literal,
    /// Lifetime such as `'a` or `'static` (text includes the quote).
    Lifetime,
    /// Comment; `doc` distinguishes `///`, `//!`, `/** */`, `/*! */`.
    Comment {
        /// Block (`/* */`) rather than line (`//`) comment.
        block: bool,
        /// Doc comment (`///`, `//!`, `/** */`, `/*! */`).
        doc: bool,
    },
}

impl Token {
    /// True for tokens that carry code semantics (everything except
    /// comments).
    pub fn is_significant(&self) -> bool {
        !matches!(self.kind, TokenKind::Comment { .. })
    }

    /// True when the token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True when the token is the single punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.starts_with(c)
    }
}

/// A lexed source file.
#[derive(Debug, Clone)]
pub struct File {
    /// Every token in source order, comments included.
    pub tokens: Vec<Token>,
}

impl File {
    /// Indices of the non-comment tokens, in order. Rules that match
    /// token sequences walk this so interleaved comments cannot split
    /// a pattern like `Instant :: now`.
    pub fn significant(&self) -> Vec<usize> {
        (0..self.tokens.len())
            .filter(|&i| self.tokens[i].is_significant())
            .collect()
    }
}

/// A lexing error (unterminated literal or comment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// 1-based line where the problem was detected.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for Error {}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn err(&self, line: u32, message: &str) -> Error {
        Error {
            line,
            message: message.to_string(),
        }
    }

    fn text_since(&self, start: usize) -> String {
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    /// Consumes a `"`-terminated body honouring `\` escapes.
    fn quoted_body(&mut self, quote: u8, start_line: u32) -> Result<(), Error> {
        while let Some(b) = self.bump() {
            match b {
                b'\\' => {
                    self.bump();
                }
                _ if b == quote => return Ok(()),
                _ => {}
            }
        }
        Err(self.err(start_line, "unterminated string literal"))
    }

    /// Consumes `###"…"###` given the number of leading hashes already
    /// seen (cursor sits just past the opening quote).
    fn raw_body(&mut self, hashes: usize, start_line: u32) -> Result<(), Error> {
        'outer: while let Some(b) = self.bump() {
            if b == b'"' {
                for i in 0..hashes {
                    if self.peek_at(i) != Some(b'#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                return Ok(());
            }
        }
        Err(self.err(start_line, "unterminated raw string literal"))
    }

    fn ident_body(&mut self) {
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80 {
                self.bump();
            } else {
                break;
            }
        }
    }

    /// Numeric literal: ints, floats, exponents, underscores, radix
    /// prefixes, and type suffixes. Stops before `..` so ranges like
    /// `0..n` lex as three tokens.
    fn number_body(&mut self) {
        // Radix prefix digits, suffix letters, underscores.
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
                continue;
            }
            if b == b'.' {
                // `1..x` is a range, `1.f64()` is a method call on an
                // integer literal; only consume the dot when a digit
                // follows (a plain trailing `1.` also lexes here).
                match self.peek_at(1) {
                    Some(n) if n.is_ascii_digit() => {
                        self.bump();
                        continue;
                    }
                    Some(b'.') => break,
                    Some(n) if n.is_ascii_alphabetic() || n == b'_' => break,
                    _ => {
                        self.bump();
                        break;
                    }
                }
            }
            if (b == b'+' || b == b'-') && self.pos > 0 {
                // Exponent sign, only directly after `e`/`E`.
                let prev = self.src[self.pos - 1];
                if prev == b'e' || prev == b'E' {
                    self.bump();
                    continue;
                }
            }
            break;
        }
    }

    fn next_token(&mut self) -> Result<Option<Token>, Error> {
        // Skip whitespace.
        while let Some(b) = self.peek() {
            if b.is_ascii_whitespace() {
                self.bump();
            } else {
                break;
            }
        }
        let (line, col, start) = (self.line, self.col, self.pos);
        let Some(b) = self.peek() else {
            return Ok(None);
        };

        // Comments.
        if b == b'/' {
            match self.peek_at(1) {
                Some(b'/') => {
                    let doc = matches!(self.peek_at(2), Some(b'/') | Some(b'!'))
                        // `////…` dividers are plain comments.
                        && self.peek_at(3) != Some(b'/');
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                    return Ok(Some(Token {
                        kind: TokenKind::Comment { block: false, doc },
                        text: self.text_since(start),
                        line,
                        col,
                    }));
                }
                Some(b'*') => {
                    let doc = matches!(self.peek_at(2), Some(b'*') | Some(b'!'))
                        && self.peek_at(3) != Some(b'/');
                    self.bump();
                    self.bump();
                    let mut depth = 1usize;
                    while depth > 0 {
                        match (self.peek(), self.peek_at(1)) {
                            (Some(b'/'), Some(b'*')) => {
                                depth += 1;
                                self.bump();
                                self.bump();
                            }
                            (Some(b'*'), Some(b'/')) => {
                                depth -= 1;
                                self.bump();
                                self.bump();
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(self.err(line, "unterminated block comment"));
                            }
                        }
                    }
                    return Ok(Some(Token {
                        kind: TokenKind::Comment { block: true, doc },
                        text: self.text_since(start),
                        line,
                        col,
                    }));
                }
                _ => {}
            }
        }

        // Lifetimes and char literals.
        if b == b'\'' {
            // `'\…'` or `'x'` (any single char then `'`) is a char
            // literal; `'ident` not followed by `'` is a lifetime.
            if self.peek_at(1) == Some(b'\\') {
                self.bump();
                self.quoted_body(b'\'', line)?;
                return Ok(Some(Token {
                    kind: TokenKind::Literal,
                    text: self.text_since(start),
                    line,
                    col,
                }));
            }
            let second_is_ident = self
                .peek_at(1)
                .map(|c| c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80)
                .unwrap_or(false);
            if second_is_ident && self.peek_at(2) != Some(b'\'') {
                self.bump(); // '
                self.ident_body();
                return Ok(Some(Token {
                    kind: TokenKind::Lifetime,
                    text: self.text_since(start),
                    line,
                    col,
                }));
            }
            self.bump();
            self.quoted_body(b'\'', line)?;
            return Ok(Some(Token {
                kind: TokenKind::Literal,
                text: self.text_since(start),
                line,
                col,
            }));
        }

        // String-ish literals with prefixes: r"", r#""#, b"", br"",
        // b'', c"", cr"", and raw identifiers r#ident.
        if b == b'r' || b == b'b' || b == b'c' {
            let mut off = 1;
            let mut saw_r = b == b'r';
            if (b == b'b' || b == b'c') && self.peek_at(off) == Some(b'r') {
                saw_r = true;
                off += 1;
            }
            let mut hashes = 0usize;
            while saw_r && self.peek_at(off + hashes) == Some(b'#') {
                hashes += 1;
            }
            let quote_at = off + hashes;
            match self.peek_at(quote_at) {
                Some(b'"') if saw_r => {
                    for _ in 0..=quote_at {
                        self.bump();
                    }
                    self.raw_body(hashes, line)?;
                    return Ok(Some(Token {
                        kind: TokenKind::Literal,
                        text: self.text_since(start),
                        line,
                        col,
                    }));
                }
                _ if b == b'r' && hashes == 1 => {
                    // Raw identifier `r#ident` (but `r#"` handled above).
                    let id_start = self
                        .peek_at(2)
                        .map(|c| c.is_ascii_alphabetic() || c == b'_' || c >= 0x80)
                        .unwrap_or(false);
                    if id_start {
                        self.bump();
                        self.bump();
                        self.ident_body();
                        return Ok(Some(Token {
                            kind: TokenKind::Ident,
                            text: self.text_since(start),
                            line,
                            col,
                        }));
                    }
                }
                _ => {}
            }
            if self.peek_at(1) == Some(b'"') && !saw_r {
                // b"…" or c"…"
                self.bump();
                self.bump();
                self.quoted_body(b'"', line)?;
                return Ok(Some(Token {
                    kind: TokenKind::Literal,
                    text: self.text_since(start),
                    line,
                    col,
                }));
            }
            if b == b'b' && self.peek_at(1) == Some(b'\'') {
                self.bump();
                self.bump();
                self.quoted_body(b'\'', line)?;
                return Ok(Some(Token {
                    kind: TokenKind::Literal,
                    text: self.text_since(start),
                    line,
                    col,
                }));
            }
            // Fall through: plain identifier starting with r/b/c.
        }

        if b == b'"' {
            self.bump();
            self.quoted_body(b'"', line)?;
            return Ok(Some(Token {
                kind: TokenKind::Literal,
                text: self.text_since(start),
                line,
                col,
            }));
        }

        if b.is_ascii_digit() {
            self.number_body();
            return Ok(Some(Token {
                kind: TokenKind::Literal,
                text: self.text_since(start),
                line,
                col,
            }));
        }

        if b.is_ascii_alphabetic() || b == b'_' || b >= 0x80 {
            self.ident_body();
            return Ok(Some(Token {
                kind: TokenKind::Ident,
                text: self.text_since(start),
                line,
                col,
            }));
        }

        // Everything else: one punctuation character per token.
        self.bump();
        Ok(Some(Token {
            kind: TokenKind::Punct,
            text: self.text_since(start),
            line,
            col,
        }))
    }
}

/// Lexes a whole source file into its token stream.
pub fn parse_file(src: &str) -> Result<File, Error> {
    let mut lexer = Lexer::new(src);
    let mut tokens = Vec::new();
    // A shebang line is legal at the very top of a crate root.
    if src.starts_with("#!") && !src.starts_with("#![") {
        while let Some(b) = lexer.peek() {
            if b == b'\n' {
                break;
            }
            lexer.bump();
        }
    }
    while let Some(tok) = lexer.next_token()? {
        tokens.push(tok);
    }
    Ok(File { tokens })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        parse_file(src)
            .unwrap()
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn lexes_idents_puncts_and_spans() {
        let f = parse_file("fn main() {\n    x.unwrap();\n}\n").unwrap();
        let unwrap = f.tokens.iter().find(|t| t.text == "unwrap").unwrap();
        assert_eq!((unwrap.line, unwrap.kind), (2, TokenKind::Ident));
    }

    #[test]
    fn comments_are_preserved_and_classified() {
        let toks = kinds("// SAFETY: fine\n/// doc\n//! inner\n/* b */ /** d */ x");
        let comments: Vec<bool> = toks
            .iter()
            .filter_map(|(k, _)| match k {
                TokenKind::Comment { doc, .. } => Some(*doc),
                _ => None,
            })
            .collect();
        assert_eq!(comments, vec![false, true, true, false, true]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("<'a, 'static> 'x' '\\n' b'q'");
        let lifetimes = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .count();
        let chars = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Literal)
            .count();
        assert_eq!((lifetimes, chars), (2, 3));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let toks = kinds(r###"r#"has "quotes" inside"# r#type br"bytes""###);
        assert_eq!(toks[0].0, TokenKind::Literal);
        assert_eq!(toks[1], (TokenKind::Ident, "r#type".to_string()));
        assert_eq!(toks[2].0, TokenKind::Literal);
    }

    #[test]
    fn strings_hide_code_looking_content() {
        let toks = kinds(r#"let s = "unsafe { unwrap() } // SAFETY";"#);
        assert!(toks.iter().all(|(_, t)| t != "unsafe"));
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| matches!(k, TokenKind::Comment { .. }))
                .count(),
            0
        );
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let toks = kinds("0..10 1.5e-3 0xffu64 2.pow(3)");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert!(texts.contains(&"0"));
        assert!(texts.contains(&"10"));
        assert!(texts.contains(&"1.5e-3"));
        assert!(texts.contains(&"0xffu64"));
        assert!(texts.contains(&"pow"));
    }

    #[test]
    fn nested_block_comments_terminate() {
        let toks = kinds("/* outer /* inner */ still */ x");
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(parse_file("let s = \"oops").is_err());
    }
}
