//! JSON text layer over the vendored serde stub's `Value` tree.
//! Implements exactly the `to_string` / `from_str` / `Error` surface the
//! workspace uses, with real round-trip fidelity for the derived types.

use serde::{DeError, Deserialize, Serialize, Value};

/// JSON serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ── writer ──────────────────────────────────────────────────────────────

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest round-trip float form and is
                // valid JSON for finite values (e.g. `1.0`, `2.5e-9`).
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ── parser ──────────────────────────────────────────────────────────────

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.parse_hex4()?;
                            // Combine a UTF-16 surrogate pair when present.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos + 1..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape {:?}",
                                other.map(|b| b as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a valid &str).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error::new("bad utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        // Called with pos on the `u`; consumes u plus three of the four hex
        // digits, leaving the last for the caller's `pos += 1`.
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| Error::new("bad \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos = end - 1;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<u64>() {
                    if let Ok(i) = i64::try_from(n) {
                        return Ok(Value::I64(-i));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected , or ] at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected , or }} at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value_tree() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("web \"quoted\"\n".into())),
            ("n".into(), Value::U64(42)),
            ("neg".into(), Value::I64(-7)),
            ("f".into(), Value::F64(2.5)),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            ("seq".into(), Value::Seq(vec![Value::U64(1), Value::U64(2)])),
        ]);
        let mut s = String::new();
        write_value(&v, &mut s);
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        let back = p.parse_value().unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let mut p = Parser {
            bytes: br#" { "a" : [ 1 , 2.5 , "xAy" ] } "#,
            pos: 0,
        };
        p.skip_ws();
        let v = p.parse_value().unwrap();
        assert_eq!(
            v,
            Value::Map(vec![(
                "a".into(),
                Value::Seq(vec![
                    Value::U64(1),
                    Value::F64(2.5),
                    Value::Str("xAy".into())
                ])
            )])
        );
    }
}
