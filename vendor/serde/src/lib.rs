//! Minimal, functional serde replacement used by this workspace when the
//! real crates.io `serde` is unreachable (offline build environment).
//!
//! Instead of serde's visitor architecture, serialization goes through a
//! self-describing [`Value`] tree: `Serialize` lowers a type into a
//! `Value`, `Deserialize` rebuilds the type from one. `serde_json` (also
//! vendored) renders `Value` to/from JSON text. The derive macros in the
//! vendored `serde_derive` generate impls of these simplified traits; the
//! derived *representations* match real serde's defaults (structs as maps,
//! unit enum variants as strings, data variants as single-key maps,
//! newtype structs as their inner value) so JSON emitted by this stub is
//! interchangeable with the real thing for the types this repo defines.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialized form.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(String, Value)>),
}

/// Shared null used when a map key is absent (lets `Option` fields
/// deserialize to `None`).
pub static NULL_VALUE: Value = Value::Null;

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialize error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Look up a struct field in a `Value::Map`. Missing keys yield `Null`
/// (so `Option` fields default to `None`); non-map values are an error.
pub fn field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, DeError> {
    match v {
        Value::Map(entries) => Ok(entries
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or(&NULL_VALUE)),
        other => Err(DeError::custom(format!(
            "expected map with field `{name}`, found {other:?}"
        ))),
    }
}

// ── primitive impls ─────────────────────────────────────────────────────

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(DeError::custom(format!(
                        concat!("expected ", stringify!($t), ", found {:?}"), other))),
                };
                <$t>::try_from(raw).map_err(|_| DeError::custom(format!(
                    concat!(stringify!($t), " out of range: {}"), raw)))
            }
        }
    )*};
}

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n).map_err(|_| {
                        DeError::custom(format!("integer out of range: {n}"))
                    })?,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(DeError::custom(format!(
                        concat!("expected ", stringify!($t), ", found {:?}"), other))),
                };
                <$t>::try_from(raw).map_err(|_| DeError::custom(format!(
                    concat!(stringify!($t), " out of range: {}"), raw)))
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError::custom(format!("expected f64, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!(
                "expected sequence, found {other:?}"
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected array of {N}, found {len}")))
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        Ok(($(
                            $name::from_value(it.next().ok_or_else(|| {
                                DeError::custom("tuple too short")
                            })?)?,
                        )+))
                    }
                    other => Err(DeError::custom(format!(
                        "expected tuple sequence, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

ser_de_tuple! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
