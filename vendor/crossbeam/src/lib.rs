//! Minimal stand-in for `crossbeam` (offline environment): an unbounded
//! MPMC channel built on `Mutex<VecDeque>` + `Condvar`. Semantics match
//! what the workspace relies on: cloneable senders and receivers,
//! blocking `recv` that errors once the queue is drained and every
//! sender is dropped.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake every blocked receiver so it can
                // observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.pop_front().ok_or(RecvError)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_in_fan_out_with_disconnect() {
            let (tx, rx) = unbounded::<u64>();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: u64 = std::thread::scope(|s| {
                (0..4)
                    .map(|_| {
                        let rx = rx.clone();
                        s.spawn(move || {
                            let mut sum = 0;
                            while let Ok(v) = rx.recv() {
                                sum += v;
                            }
                            sum
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .sum()
            });
            assert_eq!(total, 99 * 100 / 2);
        }
    }
}
