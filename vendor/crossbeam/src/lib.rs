//! Minimal stand-in for `crossbeam` (offline environment): MPMC channels
//! built on `Mutex<VecDeque>` + `Condvar`. Semantics match what the
//! workspace relies on: cloneable senders and receivers, blocking `recv`
//! that errors once the queue is drained and every sender is dropped,
//! `bounded` channels whose `send` blocks while the queue is full, and
//! `recv_timeout` for deadline-driven consumers.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        /// Signalled when an item is pushed or the last sender departs.
        ready: Condvar,
        /// Signalled when an item is popped or the last receiver departs
        /// (only waited on by bounded senders).
        space: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        /// `usize::MAX` marks an unbounded channel.
        capacity: usize,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Outcome of [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with the queue still empty.
        Timeout,
        /// Every sender dropped and the queue is drained.
        Disconnected,
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    fn with_capacity<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            space: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            capacity,
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(usize::MAX)
    }

    /// A channel holding at most `cap` queued items; `send` blocks while
    /// full (and errors instead of blocking forever once every receiver
    /// is gone). `cap` must be >= 1.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap >= 1, "bounded channel capacity must be >= 1");
        with_capacity(cap)
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            while q.len() >= self.shared.capacity {
                if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                q = self.shared.space.wait(q).unwrap_or_else(|e| e.into_inner());
            }
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake every blocked receiver so it can
                // observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.shared.space.notify_one();
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocking `recv` with a deadline: waits up to `timeout` for an
        /// item before reporting [`RecvTimeoutError::Timeout`].
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.shared.space.notify_one();
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            let v = q.pop_front().ok_or(RecvError)?;
            drop(q);
            self.shared.space.notify_one();
            Ok(v)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last receiver gone: wake bounded senders blocked on a
                // full queue so they can observe disconnection.
                self.shared.space.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_in_fan_out_with_disconnect() {
            let (tx, rx) = unbounded::<u64>();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: u64 = std::thread::scope(|s| {
                (0..4)
                    .map(|_| {
                        let rx = rx.clone();
                        s.spawn(move || {
                            let mut sum = 0;
                            while let Ok(v) = rx.recv() {
                                sum += v;
                            }
                            sum
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .sum()
            });
            assert_eq!(total, 99 * 100 / 2);
        }

        #[test]
        fn bounded_send_blocks_until_space() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            std::thread::scope(|s| {
                let h = s.spawn(move || {
                    // Queue is full: this blocks until the main thread pops.
                    tx.send(3).unwrap();
                });
                std::thread::sleep(Duration::from_millis(20));
                assert_eq!(rx.recv().unwrap(), 1);
                h.join().unwrap();
            });
            assert_eq!(rx.recv().unwrap(), 2);
            assert_eq!(rx.recv().unwrap(), 3);
        }

        #[test]
        fn bounded_send_errors_when_receiver_gone() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            drop(rx);
            assert_eq!(tx.send(2), Err(SendError(2)));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
