//! Placeholder for the declared-but-unused `rand` dependency. The
//! workspace's deterministic randomness comes from `tlc_net::rng::SimRng`
//! (xoshiro256++); nothing in the tree imports `rand` items. This empty
//! crate satisfies the manifest offline.
