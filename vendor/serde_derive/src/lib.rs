//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the vendored serde
//! stub. No `syn`/`quote` (unavailable offline): the item is parsed
//! directly from the `proc_macro::TokenStream` and the impl is emitted as
//! a string. Supports exactly what this workspace uses — non-generic
//! structs (named / tuple / unit) and enums (unit, tuple, and struct
//! variants). Generic items and `#[serde(...)]` attributes are rejected
//! loudly rather than silently miscompiled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Item {
    name: String,
    kind: Kind,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl parses")
}

// ── parsing ─────────────────────────────────────────────────────────────

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility until the `struct` / `enum`
    // keyword.
    let is_struct = loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break true,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break false,
            Some(_) => i += 1,
            None => panic!("serde_derive: expected struct or enum"),
        }
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic item `{name}` is not supported");
        }
    }
    let kind = if is_struct {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            _ => Kind::Struct(Fields::Unit),
        }
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body for `{name}`, found {other:?}"),
        }
    };
    Item { name, kind }
}

/// Skip `#[...]` attributes and `pub` / `pub(...)` visibility starting at
/// `*i`; returns with `*i` on the first token of the item proper.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => return,
        }
    }
}

/// Skip tokens of a type expression until a `,` at angle-bracket depth 0
/// (or end of stream). `*i` lands just past the comma.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other}"),
        };
        i += 1;
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after `{name}`, found {other}"),
        }
        skip_type(&toks, &mut i);
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_type(&toks, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other}"),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push((name, fields));
    }
    variants
}

// ── codegen ─────────────────────────────────────────────────────────────

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Kind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Kind::Struct(Fields::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", items.join(", "))
        }
        Kind::Enum(variants) => {
            let mut arms = Vec::new();
            for (v, fields) in variants {
                let arm = match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{v}({binds}) => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{v}\"), {inner})]),",
                            binds = binds.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let items: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Map(::std::vec![{}]))]),",
                            items.join(", ")
                        )
                    }
                };
                arms.push(arm);
            }
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Unit) => {
            format!("{{ let _ = __v; ::std::result::Result::Ok({name}) }}")
        }
        Kind::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(__items.get({i}).ok_or_else(|| \
                         ::serde::DeError::custom(\"tuple struct too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::Seq(__items) => \
                 ::std::result::Result::Ok({name}({})),\n\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"expected sequence for {name}, found {{:?}}\", __other))),\n\
                 }}",
                items.join(", ")
            )
        }
        Kind::Struct(Fields::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(::serde::field(__v, \"{f}\")?)?")
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                items.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Tuple(1) => Some(format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(__inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_value(__items.get({i})\
                                     .ok_or_else(|| ::serde::DeError::custom(\
                                     \"variant tuple too short\"))?)?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => match __inner {{\n\
                             ::serde::Value::Seq(__items) => \
                             ::std::result::Result::Ok({name}::{v}({})),\n\
                             __other => ::std::result::Result::Err(\
                             ::serde::DeError::custom(::std::format!(\
                             \"expected sequence for variant {v}, found {{:?}}\", __other))),\n\
                             }},",
                            items.join(", ")
                        ))
                    }
                    Fields::Named(fs) => {
                        let items: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                     ::serde::field(__inner, \"{f}\")?)?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v} {{ {} }}),",
                            items.join(", ")
                        ))
                    }
                })
                .collect();
            let map_arm = if data_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                     let (__k, __inner) = &__m[0];\n\
                     match __k.as_str() {{\n\
                     {datas}\n\
                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                     ::std::format!(\"unknown {name} variant `{{}}`\", __other))),\n\
                     }}\n\
                     }},\n",
                    datas = data_arms.join("\n"),
                )
            };
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {units}\n\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown {name} variant `{{}}`\", __other))),\n\
                 }},\n\
                 {map_arm}\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"expected {name} variant, found {{:?}}\", __other))),\n\
                 }}",
                units = unit_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}
