//! Thin facade over `std::sync` exposing the `parking_lot` API shape the
//! workspace uses (`lock()` returning the guard directly, no poisoning).

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Like `parking_lot`, never poisons: a panic while holding the lock
    /// simply releases it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
