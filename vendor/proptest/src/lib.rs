//! Minimal property-testing framework exposing the subset of the real
//! `proptest` API this workspace uses: `proptest!` test blocks with
//! `arg in strategy` bindings, `ProptestConfig::with_cases`, integer /
//! float range strategies, `any::<T>()`, `Just`, tuple strategies,
//! `collection::vec`, `prop_flat_map`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from real proptest: no shrinking (failures report the raw
//! sampled inputs via `assert!` panics) and a deterministic per-test RNG
//! seeded from the test name, so failures reproduce exactly.

pub mod strategy {
    /// Deterministic splitmix64 RNG used to drive sampling.
    pub struct TestRng(u64);

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the test name gives a stable per-test seed.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in [0, 1).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in [lo, hi] (inclusive).
        pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
            let span = hi - lo;
            if span == u64::MAX {
                self.next_u64()
            } else {
                lo + self.next_u64() % (span + 1)
            }
        }
    }

    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy yielding a single constant value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let lo = self.start as i128;
                    let hi = self.end as i128 - 1;
                    (lo + (rng.range_u64(0, (hi - lo) as u64) as i128)) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128;
                    let span = (hi - lo) as u128;
                    if span == u64::MAX as u128 + 1 {
                        return rng.next_u64() as $t;
                    }
                    (lo + (rng.range_u64(0, span as u64) as i128)) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.next_f64() * (self.end() - self.start())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    }
}

pub mod arbitrary {
    use super::strategy::{Strategy, TestRng};
    use std::marker::PhantomData;

    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};

    /// Inclusive element-count range for `vec`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.range_u64(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Subset of proptest's run configuration: only `cases` matters here.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(@cfg ($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(
            @cfg ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($config:expr);) => {};
    (@cfg ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $config;
            let mut __rng = $crate::strategy::TestRng::from_name(stringify!($name));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns!(@cfg ($config); $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}
