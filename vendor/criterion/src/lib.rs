//! Minimal stand-in for the `criterion` benchmark harness (offline
//! environment — the real crate is unreachable). Implements the surface
//! the workspace's benches use: `Criterion`, `benchmark_group`,
//! `bench_function`, `sample_size`, `Throughput`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Timing is a simple
//! mean over `sample_size` iterations after one warmup — good enough for
//! relative comparisons, with none of criterion's statistics.

use std::time::Instant;

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration, recorded by `iter`.
    mean_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warmup
        let t0 = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean_ns = t0.elapsed().as_nanos() as f64 / self.samples as f64;
    }
}

pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 10,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.default_samples,
            throughput: None,
            _parent: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.default_samples,
            mean_ns: 0.0,
        };
        f(&mut b);
        report(&name.into(), b.mean_ns, None);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            mean_ns: 0.0,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, name.into()),
            b.mean_ns,
            self.throughput,
        );
        self
    }

    pub fn finish(self) {}
}

fn report(name: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let time = if mean_ns >= 1e9 {
        format!("{:.3} s", mean_ns / 1e9)
    } else if mean_ns >= 1e6 {
        format!("{:.3} ms", mean_ns / 1e6)
    } else if mean_ns >= 1e3 {
        format!("{:.3} µs", mean_ns / 1e3)
    } else {
        format!("{mean_ns:.1} ns")
    };
    match throughput {
        Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
            let mbps = n as f64 / (mean_ns / 1e9) / 1e6;
            println!("bench {name:<50} {time:>12}  ({mbps:.1} MB/s)");
        }
        Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
            let eps = n as f64 / (mean_ns / 1e9);
            println!("bench {name:<50} {time:>12}  ({eps:.0} elem/s)");
        }
        _ => println!("bench {name:<50} {time:>12}"),
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
